//! In-process channel transport.
//!
//! Connects nodes living in one process through crossbeam channels. This is
//! the default transport for the threaded runtime's loopback examples and
//! integration tests: real threads, real wall-clock timers, no sockets.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::sim::Packet;
use crate::site::NodeId;
use crate::transport::{TransportError, WireTransport};

#[derive(Default)]
struct Registry {
    inboxes: HashMap<NodeId, Sender<Packet>>,
}

/// A process-local network: every [`ChannelTransport`] endpoint created from
/// the same `ChannelNetwork` can reach every other.
///
/// ```
/// use newtop_net::channel::ChannelNetwork;
/// use newtop_net::site::NodeId;
/// use newtop_net::transport::WireTransport;
/// use bytes::Bytes;
///
/// let net = ChannelNetwork::new();
/// let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
/// let (_b, b_rx) = net.endpoint(NodeId::from_index(1));
/// a.send(NodeId::from_index(1), Bytes::from_static(b"hello")).unwrap();
/// let pkt = b_rx.recv().unwrap();
/// assert_eq!(&pkt.payload[..], b"hello");
/// assert_eq!(pkt.src, NodeId::from_index(0));
/// ```
#[derive(Clone, Default)]
pub struct ChannelNetwork {
    registry: Arc<RwLock<Registry>>,
}

impl ChannelNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        ChannelNetwork::default()
    }

    /// Registers a node and returns its sending handle and inbox.
    ///
    /// Registering the same node id twice replaces the previous inbox.
    #[must_use]
    pub fn endpoint(&self, node: NodeId) -> (ChannelTransport, Receiver<Packet>) {
        let (tx, rx) = unbounded();
        self.registry.write().inboxes.insert(node, tx);
        (
            ChannelTransport {
                local: node,
                registry: Arc::clone(&self.registry),
            },
            rx,
        )
    }

    /// Removes a node; subsequent sends to it fail with `UnknownPeer`.
    pub fn remove(&self, node: NodeId) {
        self.registry.write().inboxes.remove(&node);
    }
}

impl std::fmt::Debug for ChannelNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.registry.read().inboxes.len();
        write!(f, "ChannelNetwork({n} endpoints)")
    }
}

/// The sending half of a [`ChannelNetwork`] endpoint.
#[derive(Clone)]
pub struct ChannelTransport {
    local: NodeId,
    registry: Arc<RwLock<Registry>>,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelTransport(local={})", self.local)
    }
}

impl WireTransport for ChannelTransport {
    fn local(&self) -> NodeId {
        self.local
    }

    fn send(&self, dst: NodeId, payload: Bytes) -> Result<(), TransportError> {
        let registry = self.registry.read();
        let tx = registry
            .inboxes
            .get(&dst)
            .ok_or(TransportError::UnknownPeer(dst))?;
        tx.send(Packet {
            src: self.local,
            dst,
            payload,
        })
        .map_err(|_| TransportError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_between_two_endpoints() {
        let net = ChannelNetwork::new();
        let (a, a_rx) = net.endpoint(NodeId::from_index(0));
        let (b, b_rx) = net.endpoint(NodeId::from_index(1));
        a.send(b.local(), Bytes::from_static(b"ping")).unwrap();
        let pkt = b_rx.recv().unwrap();
        assert_eq!(&pkt.payload[..], b"ping");
        b.send(pkt.src, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(&a_rx.recv().unwrap().payload[..], b"pong");
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let net = ChannelNetwork::new();
        let (a, _rx) = net.endpoint(NodeId::from_index(0));
        let err = a
            .send(NodeId::from_index(9), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, TransportError::UnknownPeer(_)));
    }

    #[test]
    fn removed_peer_becomes_unreachable() {
        let net = ChannelNetwork::new();
        let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
        let (_b, _b_rx) = net.endpoint(NodeId::from_index(1));
        net.remove(NodeId::from_index(1));
        assert!(a.send(NodeId::from_index(1), Bytes::new()).is_err());
    }

    #[test]
    fn per_peer_ordering_is_preserved() {
        let net = ChannelNetwork::new();
        let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
        let (_b, b_rx) = net.endpoint(NodeId::from_index(1));
        for i in 0..100u8 {
            a.send(NodeId::from_index(1), Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b_rx.recv().unwrap().payload[0], i);
        }
    }
}
