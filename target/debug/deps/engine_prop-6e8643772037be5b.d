/root/repo/target/debug/deps/engine_prop-6e8643772037be5b.d: crates/gcs/tests/engine_prop.rs Cargo.toml

/root/repo/target/debug/deps/libengine_prop-6e8643772037be5b.rmeta: crates/gcs/tests/engine_prop.rs Cargo.toml

crates/gcs/tests/engine_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
