/root/repo/target/debug/deps/conference-f715b784b9d24671.d: examples/src/bin/conference.rs

/root/repo/target/debug/deps/conference-f715b784b9d24671: examples/src/bin/conference.rs

examples/src/bin/conference.rs:
