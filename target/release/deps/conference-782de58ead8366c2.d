/root/repo/target/release/deps/conference-782de58ead8366c2.d: examples/src/bin/conference.rs

/root/repo/target/release/deps/conference-782de58ead8366c2: examples/src/bin/conference.rs

examples/src/bin/conference.rs:
