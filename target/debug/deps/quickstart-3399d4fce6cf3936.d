/root/repo/target/debug/deps/quickstart-3399d4fce6cf3936.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-3399d4fce6cf3936: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
