#!/usr/bin/env bash
# Performance snapshot for the encode-once fan-out PR: runs the
# bench_snapshot binary (LAN closed-group invocation latency + fan-out
# encode throughput) and writes the JSON next to the repo root as
# BENCH_PR2.json. Offline-friendly; NEWTOP_BENCH_SEED overrides the
# simulation seed.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="BENCH_PR2.json"

echo "==> cargo run --release -p newtop-bench --bin bench_snapshot"
cargo run --release --offline -p newtop-bench --bin bench_snapshot > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
