/root/repo/target/debug/deps/membership-c3338b43d963ea1e.d: tests/tests/membership.rs

/root/repo/target/debug/deps/membership-c3338b43d963ea1e: tests/tests/membership.rs

tests/tests/membership.rs:
