//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's micro-benchmarks use:
//! benchmark groups, `bench_function` with `iter`/`iter_batched`,
//! throughput annotation, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a simple warm-up plus timed batch; results print as
//! mean ns/iteration (and derived element throughput where annotated).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How setup outputs are batched in `iter_batched` (accepted for API
/// compatibility; the stand-in always runs one setup per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { throughput: None }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 * 1e9 / mean_ns;
                println!("  {name}: {mean_ns:.1} ns/iter ({per_sec:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 * 1e9 / mean_ns;
                println!("  {name}: {mean_ns:.1} ns/iter ({per_sec:.0} B/s)");
            }
            _ => println!("  {name}: {mean_ns:.1} ns/iter"),
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Measures one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 50;
const MEASURE_ITERS: u64 = 2_000;

impl Bencher {
    /// Times `routine` over a fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batched_iters = MEASURE_ITERS / 20;
        for _ in 0..WARMUP_ITERS.min(batched_iters) {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        for _ in 0..batched_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = batched_iters;
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
