//! Periodic snapshots of group / view / directory state.
//!
//! A snapshot is the materialised result of replaying the log so far:
//! per group, the configuration, the last installed view and the full
//! delivery history; plus the directory record table for directory
//! members. Installing a snapshot lets the store truncate the log —
//! recovery then replays the (framed) snapshot followed by only the log
//! suffix written since, which is what makes cold restarts cheap (see
//! EXPERIMENTS.md for the replay-cost readings).

use newtop::directory::GroupRecord;
use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_gcs::view::View;
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

use crate::log::DeliveredRec;

/// One group's durable state at the snapshot point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSnapshot {
    /// Group concerned.
    pub group: GroupId,
    /// Its configuration.
    pub config: GroupConfig,
    /// Membership known at creation (empty for a join).
    pub members_at_create: Vec<NodeId>,
    /// The last view installed locally, if any.
    pub last_view: Option<View>,
    /// Every delivery so far, in delivery order.
    pub history: Vec<DeliveredRec>,
}

impl CdrEncode for GroupSnapshot {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.group.encode(enc);
        self.config.encode(enc);
        self.members_at_create.encode(enc);
        self.last_view.encode(enc);
        self.history.encode(enc);
    }
}

impl CdrDecode for GroupSnapshot {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(GroupSnapshot {
            group: GroupId::decode(dec)?,
            config: GroupConfig::decode(dec)?,
            members_at_create: Vec::<NodeId>::decode(dec)?,
            last_view: Option::<View>::decode(dec)?,
            history: Vec::<DeliveredRec>::decode(dec)?,
        })
    }
}

/// A whole node's durable state at the snapshot point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Per-group state, sorted by group id.
    pub groups: Vec<GroupSnapshot>,
    /// The directory record table (directory members only).
    pub dir: Vec<GroupRecord>,
}

impl CdrEncode for NodeSnapshot {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.groups.encode(enc);
        self.dir.encode(enc);
    }
}

impl CdrDecode for NodeSnapshot {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(NodeSnapshot {
            groups: Vec::<GroupSnapshot>::decode(dec)?,
            dir: Vec::<GroupRecord>::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{append_frame, read_frame};
    use bytes::Bytes;
    use newtop_gcs::group::DeliveryOrder;
    use newtop_gcs::view::ViewId;

    fn sample() -> NodeSnapshot {
        let group = GroupId::new("ga");
        NodeSnapshot {
            groups: vec![GroupSnapshot {
                group: group.clone(),
                config: GroupConfig::peer(),
                members_at_create: vec![NodeId::from_index(0), NodeId::from_index(2)],
                last_view: Some(View::new(
                    group,
                    ViewId(4),
                    vec![NodeId::from_index(0), NodeId::from_index(2)],
                )),
                history: vec![DeliveredRec {
                    sender: NodeId::from_index(2),
                    order: DeliveryOrder::Total,
                    lamport: 7,
                    payload: Bytes::from_static(b"x"),
                }],
            }],
            dir: Vec::new(),
        }
    }

    #[test]
    fn snapshots_round_trip_framed() {
        let snap = sample();
        let mut buf = Vec::new();
        append_frame(&mut buf, &snap);
        let (back, used) = read_frame::<NodeSnapshot>(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_prefixes_error() {
        let mut buf = Vec::new();
        append_frame(&mut buf, &sample());
        for cut in [0, 3, 8, buf.len() - 1] {
            assert!(read_frame::<NodeSnapshot>(&buf[..cut]).is_err());
        }
    }
}
