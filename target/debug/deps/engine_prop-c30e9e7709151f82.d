/root/repo/target/debug/deps/engine_prop-c30e9e7709151f82.d: crates/gcs/tests/engine_prop.rs

/root/repo/target/debug/deps/engine_prop-c30e9e7709151f82: crates/gcs/tests/engine_prop.rs

crates/gcs/tests/engine_prop.rs:
