//! Item extraction: functions, their impl/trait context, and test-code
//! exclusion.
//!
//! Works over the [`crate::lexer`] token stream. The scanner walks the
//! token tree by brace matching, tracking which `impl`/`trait` block it
//! is inside and whether the surrounding module or item is compiled only
//! under `#[cfg(test)]`, and records one [`FnItem`] per function with a
//! body. Rules then run over each function's token slice.

use crate::lexer::{TokKind, Token};

/// One function found in a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// The `impl`/`trait` type it is defined on, if any.
    pub owner: Option<String>,
    /// Path of the defining file (workspace-relative).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `tokens[body.0..body.1]`, braces
    /// included.
    pub body: (usize, usize),
    /// True when the function lives under `#[cfg(test)]` (or is itself a
    /// `#[test]`), so production rules skip it.
    pub is_test: bool,
}

/// A parsed source file: its tokens plus the functions found in them.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    /// The file's full token stream.
    pub tokens: Vec<Token>,
    /// Functions with bodies, in source order.
    pub fns: Vec<FnItem>,
    /// `macro_rules!` definitions whose bodies were skipped: macro
    /// templates are token soup until expansion, so the scanner cannot
    /// see functions inside them. The count is surfaced as a warning in
    /// the report so skipped coverage is never silent.
    pub skipped_macros: u32,
}

/// Parses a lexed file into items.
#[must_use]
pub fn parse_file(path: &str, tokens: Vec<Token>) -> ParsedFile {
    let mut fns = Vec::new();
    let mut skipped_macros = 0;
    let mut walker = Walker {
        toks: &tokens,
        path,
        fns: &mut fns,
        skipped_macros: &mut skipped_macros,
    };
    walker.block(0, tokens.len(), None, false);
    ParsedFile {
        path: path.to_owned(),
        tokens,
        fns,
        skipped_macros,
    }
}

/// True if an attribute marks test-only code: `#[cfg(test)]`,
/// `#[cfg(any(test, ...))]`, `#[test]`, or a proptest expansion.
fn attr_is_test(text: &str) -> bool {
    let t = text.trim();
    t == "test" || (t.starts_with("cfg") && t.contains("test"))
}

struct Walker<'a> {
    toks: &'a [Token],
    path: &'a str,
    fns: &'a mut Vec<FnItem>,
    skipped_macros: &'a mut u32,
}

impl Walker<'_> {
    /// Scans `toks[start..end]` (the interior of one block or the whole
    /// file), registering functions. `owner` is the enclosing impl/trait
    /// type; `in_test` marks enclosing `#[cfg(test)]` scope.
    fn block(&mut self, start: usize, end: usize, owner: Option<&str>, in_test: bool) {
        let mut i = start;
        let mut pending_test = false;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Attr => {
                    pending_test |= attr_is_test(&t.text);
                    i += 1;
                }
                TokKind::Ident if t.text == "macro_rules" || t.text == "macro" => {
                    // Macro templates are unexpanded token soup; any
                    // `fn` inside is not an item. Skip the whole
                    // definition and count it (reported as a warning).
                    pending_test = false;
                    match self.find_block_open(i + 1, end) {
                        Some(open) => {
                            *self.skipped_macros += 1;
                            i = self.match_brace(open, end) + 1;
                        }
                        None => i += 1,
                    }
                }
                TokKind::Ident if t.text == "mod" || t.text == "trait" || t.text == "impl" => {
                    let item_test = in_test || pending_test;
                    pending_test = false;
                    let hdr_owner = if t.text == "mod" {
                        None
                    } else {
                        self.impl_type(i + 1, end)
                    };
                    // Find the block opener (or `;` for `mod x;` /
                    // `impl Trait for T;`-less declarations).
                    let Some(open) = self.find_block_open(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    let close = self.match_brace(open, end);
                    self.block(open + 1, close, hdr_owner.as_deref(), item_test);
                    i = close + 1;
                }
                TokKind::Ident if t.text == "fn" => {
                    // `fn` as a type (`f: fn(u32)`) has `(` right after.
                    let Some(name_tok) = self.toks.get(i + 1) else {
                        i += 1;
                        continue;
                    };
                    if name_tok.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    let item_test = in_test || pending_test;
                    pending_test = false;
                    match self.fn_body(i + 2, end) {
                        Some((open, close)) => {
                            self.fns.push(FnItem {
                                name: name_tok.text.clone(),
                                owner: owner.map(str::to_owned),
                                file: self.path.to_owned(),
                                line: t.line,
                                body: (open, close + 1),
                                is_test: item_test,
                            });
                            // Recurse for nested fns (closures are part of
                            // the parent body either way).
                            self.block(open + 1, close, owner, item_test);
                            i = close + 1;
                        }
                        None => i += 2,
                    }
                }
                TokKind::Punct if t.text == "{" => {
                    let close = self.match_brace(i, end);
                    self.block(i + 1, close, owner, in_test);
                    i = close + 1;
                }
                _ => {
                    // Any other token detaches pending attributes.
                    if t.kind != TokKind::Ident
                        || !matches!(
                            t.text.as_str(),
                            "pub" | "const" | "unsafe" | "async" | "extern" | "crate"
                        )
                    {
                        pending_test = false;
                    }
                    i += 1;
                }
            }
        }
    }

    /// The self-type of an `impl`/`trait` header starting right after the
    /// keyword: the last path segment before the body, after `for` when
    /// present.
    fn impl_type(&self, mut i: usize, end: usize) -> Option<String> {
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Punct if t.text == "{" && angle == 0 => break,
                TokKind::Punct if t.text == ";" && angle == 0 => break,
                TokKind::Punct if t.text == "<" => angle += 1,
                TokKind::Punct if t.text == ">" && !prev_dash => angle -= 1,
                TokKind::Ident if t.text == "for" && angle == 0 => {
                    after_for = None; // segments after `for` win
                    last_ident = None;
                }
                TokKind::Ident if angle == 0 && t.text != "where" && t.text != "dyn" => {
                    last_ident = Some(t.text.clone());
                    if after_for.is_none() {
                        after_for.clone_from(&last_ident);
                    }
                }
                _ => {}
            }
            prev_dash = t.is_punct('-');
            i += 1;
        }
        last_ident
    }

    /// Finds the `{` opening an item body, skipping header tokens.
    fn find_block_open(&self, mut i: usize, end: usize) -> Option<usize> {
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Punct if t.text == "{" && angle <= 0 => return Some(i),
                TokKind::Punct if t.text == ";" && angle <= 0 => return None,
                TokKind::Punct if t.text == "<" => angle += 1,
                TokKind::Punct if t.text == ">" && !prev_dash => angle -= 1,
                _ => {}
            }
            prev_dash = t.is_punct('-');
            i += 1;
        }
        None
    }

    /// Given the index right after a function's name, locates its body
    /// braces: skips generics and the parameter list, then scans to the
    /// first `{` (body) or `;` (declaration only).
    fn fn_body(&self, mut i: usize, end: usize) -> Option<(usize, usize)> {
        // Generics.
        if self.toks.get(i).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            let mut prev_dash = false;
            while i < end {
                let t = &self.toks[i];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !prev_dash {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                prev_dash = t.is_punct('-');
                i += 1;
            }
        }
        // Parameters.
        if !self.toks.get(i).is_some_and(|t| t.is_punct('(')) {
            return None;
        }
        let mut paren = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        // Return type / where clause, up to the body.
        let mut bracket = 0i32;
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Punct if t.text == "{" && bracket == 0 && angle <= 0 => {
                    let close = self.match_brace(i, end);
                    return Some((i, close));
                }
                TokKind::Punct if t.text == ";" && bracket == 0 && angle <= 0 => return None,
                TokKind::Punct if t.text == "[" => bracket += 1,
                TokKind::Punct if t.text == "]" => bracket -= 1,
                TokKind::Punct if t.text == "<" => angle += 1,
                TokKind::Punct if t.text == ">" && !prev_dash => angle -= 1,
                _ => {}
            }
            prev_dash = t.is_punct('-');
            i += 1;
        }
        None
    }

    /// Index of the `}` matching the `{` at `open` (or `end - 1` if the
    /// file is truncated).
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("lib.rs", lex(src))
    }

    #[test]
    fn free_and_method_fns() {
        let f = parse(
            "fn top() { helper(); }\n\
             struct S;\n\
             impl S { fn method(&self) -> u32 { 1 } }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        let names: Vec<(Option<&str>, &str)> = f
            .fns
            .iter()
            .map(|i| (i.owner.as_deref(), i.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![(None, "top"), (Some("S"), "method"), (Some("S"), "clone")]
        );
    }

    #[test]
    fn impl_type_takes_segment_after_for() {
        let f = parse("impl CdrEncode for newtop_net::site::NodeId { fn encode(&self) {} }");
        assert_eq!(f.fns[0].owner.as_deref(), Some("NodeId"));
    }

    #[test]
    fn generic_impls_and_fns() {
        let f = parse("impl<T: Ord> Wrapper<T> { fn get<F: Fn() -> T>(&self, f: F) -> T { f() } }");
        assert_eq!(f.fns[0].owner.as_deref(), Some("Wrapper"));
        assert_eq!(f.fns[0].name, "get");
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let f = parse(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn check() { prod(); }\n}",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let f = parse("#[test]\nfn alone() {}\nfn after() {}");
        assert!(f.fns[0].is_test);
        assert!(!f.fns[1].is_test, "test flag must not leak to the next fn");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = parse("struct S { f: fn(u32) -> u32 }\nfn real() {}");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }

    #[test]
    fn trait_default_methods_get_trait_owner() {
        let f = parse("trait T { fn required(&self); fn provided(&self) { self.required() } }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].owner.as_deref(), Some("T"));
        assert_eq!(f.fns[0].name, "provided");
    }

    #[test]
    fn return_types_with_arrows_and_arrays() {
        let f = parse("fn arr() -> [u8; 4] { [0; 4] }\nfn imp() -> impl Iterator<Item = u8> { std::iter::empty() }");
        let names: Vec<&str> = f.fns.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["arr", "imp"]);
    }

    #[test]
    fn nested_fns_are_found() {
        let f = parse("fn outer() { fn inner() {} inner(); }");
        let names: Vec<&str> = f.fns.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn macro_rules_bodies_are_skipped_and_counted() {
        let f = parse(
            "macro_rules! make_fn {\n\
               ($name:ident) => { fn $name() { x.unwrap() } };\n\
             }\n\
             fn real() {}",
        );
        let names: Vec<&str> = f.fns.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["real"], "macro template fns are not items");
        assert_eq!(f.skipped_macros, 1);
    }

    #[test]
    fn macro_invocations_with_braces_still_walked() {
        // Only *definitions* are skipped; `thread_local! { ... }` style
        // invocations contain real code and keep being scanned.
        let f = parse("thread_local! { static X: u32 = 0; }\nfn real() {}");
        assert_eq!(f.skipped_macros, 0);
        assert_eq!(f.fns.len(), 1);
    }
}
