#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Offline-friendly —
# everything below works from the vendored deps with no network access.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test --workspace --offline -q

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench --workspace --offline --no-run

echo "==> fault-injection campaign (quick, 25 seeds)"
cargo build --release --offline -p newtop-check
./target/release/campaign --seeds 25 --quiet

echo "==> loadgen smoke (flow control engages, queues stay bounded)"
cargo build --release --offline -p newtop-bench --bin loadgen
./target/release/loadgen --smoke > /dev/null

echo "==> no build artifacts under version control"
if [ -n "$(git ls-files target/)" ]; then
    echo "ERROR: target/ files are tracked by git; run 'git rm -r --cached target/'" >&2
    exit 1
fi

echo "OK"
