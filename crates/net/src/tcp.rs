//! Framed TCP transport.
//!
//! Carries packets over real sockets so the examples can run as genuinely
//! networked processes. Frames are length-prefixed:
//!
//! ```text
//! [u32 payload-len (BE)] [u32 source-node (BE)] [payload bytes]
//! ```
//!
//! Each endpoint runs an accept loop; outgoing connections are opened
//! lazily per peer and cached. Reliability beyond TCP's own (reconnection,
//! retransmission across connection loss) belongs to the protocol layers
//! above, which already implement it for the lossy simulator.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use newtop_flow::queue::Sender;
use parking_lot::Mutex;

use crate::sim::Packet;
use crate::site::NodeId;
use crate::transport::{TransportError, WireTransport};

const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// One peer's cached connection. Sends lock the slot (not the whole
/// table) for the duration of a frame write, so frames to one peer stay
/// atomic while sends to other peers proceed in parallel.
type ConnSlot = Arc<Mutex<Option<TcpStream>>>;

struct Shared {
    local: NodeId,
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    conns: Mutex<HashMap<NodeId, ConnSlot>>,
    closed: AtomicBool,
}

/// A TCP endpoint for one node.
///
/// Create with [`TcpEndpoint::bind`], register peers with
/// [`TcpEndpoint::register_peer`], and send through the [`WireTransport`]
/// impl. Incoming packets arrive on the channel supplied to `bind`.
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpEndpoint(local={}, addr={})",
            self.shared.local, self.local_addr
        )
    }
}

impl TcpEndpoint {
    /// Binds a listener for `local` on `addr` (use port 0 for an ephemeral
    /// port; see [`Self::local_addr`]) and spawns the accept loop, which
    /// pushes every received frame to `incoming`.
    ///
    /// `incoming` is a *bounded* flow queue (see
    /// [`newtop_flow::queue::bounded`]); when it fills, the reader
    /// threads block — backpressure propagates to the senders through
    /// TCP's own window rather than buffering without bound. Blocking
    /// events are counted in the queue's
    /// [`newtop_flow::queue::QueueStats::blocked`].
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn bind(
        local: NodeId,
        addr: SocketAddr,
        incoming: Sender<Packet>,
    ) -> std::io::Result<TcpEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            local,
            peers: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("tcp-accept-{local}"))
            .spawn(move || accept_loop(&listener, &accept_shared, &incoming))?;
        Ok(TcpEndpoint {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actual bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Makes `peer` reachable at `addr`.
    pub fn register_peer(&self, peer: NodeId, addr: SocketAddr) {
        self.shared.peers.lock().insert(peer, addr);
    }

    /// A cloneable sending handle.
    #[must_use]
    pub fn handle(&self) -> TcpTransport {
        TcpTransport {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the endpoint: closes cached connections and unblocks the
    /// accept loop. Idempotent; also performed on drop.
    pub fn shutdown(&mut self) {
        if self.shared.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Take the whole map under the guard, then close the sockets
        // with it released: per-slot locks (and the socket teardown
        // behind them) nest inside the registry lock everywhere else,
        // so holding it here would invert that order.
        let drained = std::mem::take(&mut *self.shared.conns.lock());
        for (_, slot) in drained {
            if let Some(conn) = slot.lock().take() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Poke the listener so `accept` returns and the loop observes
        // `closed`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, incoming: &Sender<Packet>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        let incoming = incoming.clone();
        let _ = std::thread::Builder::new()
            .name(format!("tcp-read-{}", shared.local))
            .spawn(move || read_loop(stream, &shared, &incoming));
    }
}

fn read_loop(mut stream: TcpStream, shared: &Arc<Shared>, incoming: &Sender<Packet>) {
    // Two fixed-size reads: no fallible slice-to-array conversion on the
    // network-input path.
    let mut len_buf = [0u8; 4];
    let mut src_buf = [0u8; 4];
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        if stream.read_exact(&mut len_buf).is_err() || stream.read_exact(&mut src_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf);
        let src = u32::from_be_bytes(src_buf);
        if len > MAX_FRAME {
            return;
        }
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let pkt = Packet {
            src: NodeId::from_index(src),
            dst: shared.local,
            payload: Bytes::from(payload),
        };
        if incoming.send(pkt).is_err() {
            return;
        }
    }
}

/// The cloneable sending half of a [`TcpEndpoint`].
#[derive(Clone)]
pub struct TcpTransport {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpTransport(local={})", self.shared.local)
    }
}

impl WireTransport for TcpTransport {
    fn local(&self) -> NodeId {
        self.shared.local
    }

    fn send(&self, dst: NodeId, payload: Bytes) -> Result<(), TransportError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        let addr = *self
            .shared
            .peers
            .lock()
            .get(&dst)
            .ok_or(TransportError::UnknownPeer(dst))?;
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME)
            .ok_or_else(|| {
                TransportError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "frame too large",
                ))
            })?;
        // Stack-allocated header; the payload is written straight from the
        // (possibly shared) `Bytes` buffer, so a multicast frame is never
        // copied per recipient here.
        let mut header = [0u8; 8];
        header[0..4].copy_from_slice(&len.to_be_bytes());
        header[4..8].copy_from_slice(&self.shared.local.index().to_be_bytes());
        // Take the per-peer slot under the table lock, then drop the table
        // lock before any I/O: sends to different peers never serialize on
        // each other, and a slow connect cannot stall the whole endpoint.
        let slot = {
            let mut conns = self.shared.conns.lock();
            Arc::clone(conns.entry(dst).or_default())
        };
        // The slot lock is held across connect + write on purpose: frames
        // to one peer must not interleave (allowlisted for lock-hygiene).
        let mut guard = slot.lock();
        if guard.is_none() {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            *guard = Some(stream);
        }
        let Some(stream) = guard.as_mut() else {
            return Err(TransportError::Closed);
        };
        if let Err(e) = stream
            .write_all(&header)
            .and_then(|()| stream.write_all(&payload))
        {
            *guard = None;
            return Err(TransportError::Io(e));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_flow::queue::bounded;
    use std::time::Duration;

    fn ephemeral() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    fn inbox() -> (
        newtop_flow::queue::Sender<Packet>,
        newtop_flow::queue::Receiver<Packet>,
    ) {
        bounded(newtop_flow::FlowConfig::default().queue_capacity)
    }

    #[test]
    fn two_endpoints_exchange_frames() {
        let (tx_a, rx_a) = inbox();
        let (tx_b, rx_b) = inbox();
        let a = TcpEndpoint::bind(NodeId::from_index(0), ephemeral(), tx_a).unwrap();
        let b = TcpEndpoint::bind(NodeId::from_index(1), ephemeral(), tx_b).unwrap();
        a.register_peer(NodeId::from_index(1), b.local_addr());
        b.register_peer(NodeId::from_index(0), a.local_addr());

        a.handle()
            .send(NodeId::from_index(1), Bytes::from_static(b"over tcp"))
            .unwrap();
        let pkt = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&pkt.payload[..], b"over tcp");
        assert_eq!(pkt.src, NodeId::from_index(0));

        b.handle()
            .send(NodeId::from_index(0), Bytes::from_static(b"reply"))
            .unwrap();
        let pkt = rx_a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&pkt.payload[..], b"reply");
    }

    #[test]
    fn many_frames_stay_ordered_per_peer() {
        let (tx_a, _rx_a) = inbox();
        let (tx_b, rx_b) = inbox();
        let a = TcpEndpoint::bind(NodeId::from_index(0), ephemeral(), tx_a).unwrap();
        let b = TcpEndpoint::bind(NodeId::from_index(1), ephemeral(), tx_b).unwrap();
        a.register_peer(NodeId::from_index(1), b.local_addr());
        let h = a.handle();
        for i in 0..200u32 {
            h.send(NodeId::from_index(1), Bytes::from(i.to_be_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..200u32 {
            let pkt = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(pkt.payload.as_ref(), i.to_be_bytes());
        }
    }

    #[test]
    fn unknown_peer_and_shutdown_errors() {
        let (tx, _rx) = inbox();
        let mut e = TcpEndpoint::bind(NodeId::from_index(7), ephemeral(), tx).unwrap();
        let h = e.handle();
        assert!(matches!(
            h.send(NodeId::from_index(1), Bytes::new()),
            Err(TransportError::UnknownPeer(_))
        ));
        e.shutdown();
        assert!(matches!(
            h.send(NodeId::from_index(1), Bytes::new()),
            Err(TransportError::Closed)
        ));
    }
}
