/root/repo/target/debug/deps/graphs_5_10_optimised-e49ae5c8d4290bc4.d: crates/bench/benches/graphs_5_10_optimised.rs Cargo.toml

/root/repo/target/debug/deps/libgraphs_5_10_optimised-e49ae5c8d4290bc4.rmeta: crates/bench/benches/graphs_5_10_optimised.rs Cargo.toml

crates/bench/benches/graphs_5_10_optimised.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
