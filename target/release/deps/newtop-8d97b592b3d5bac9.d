/root/repo/target/release/deps/newtop-8d97b592b3d5bac9.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

/root/repo/target/release/deps/libnewtop-8d97b592b3d5bac9.rlib: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

/root/repo/target/release/deps/libnewtop-8d97b592b3d5bac9.rmeta: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/nso.rs crates/core/src/proxy.rs crates/core/src/simnode.rs

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/nso.rs:
crates/core/src/proxy.rs:
crates/core/src/simnode.rs:
