//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real crate's API that this workspace uses:
//! [`Bytes`], an immutable, cheaply cloneable byte buffer. Static slices
//! are kept as references; owned data is shared behind an [`Arc`].

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Copies a slice into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// The buffer's length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(s) => s,
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(b)),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.to_vec(), b"hello".to_vec());
        assert!(Bytes::new().is_empty());
    }
}
