/root/repo/target/debug/deps/replicated_bank-cfadc06d33dc35cc.d: examples/src/bin/replicated_bank.rs

/root/repo/target/debug/deps/replicated_bank-cfadc06d33dc35cc: examples/src/bin/replicated_bank.rs

examples/src/bin/replicated_bank.rs:
