/root/repo/target/debug/deps/passive_store-85fc2ccd9b1febe5.d: examples/src/bin/passive_store.rs

/root/repo/target/debug/deps/passive_store-85fc2ccd9b1febe5: examples/src/bin/passive_store.rs

examples/src/bin/passive_store.rs:
