//! Metric/trace invariants across a request-manager crash with
//! rebind-and-retry (§4.1), checked end-to-end through `Nso::metrics()`
//! and `Nso::trace()`: the client records the rebind, a survivor answers
//! the retry from its reply cache (`retry_deduped`), and no server's
//! execution counter shows a re-execution.

use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{GroupConfig, GroupId, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gid() -> GroupId {
    GroupId::new("svc")
}

struct CountingServer {
    members: Vec<NodeId>,
    executions: Arc<AtomicU32>,
}

impl NsoApp for CountingServer {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gid(),
            self.members.clone(),
            Replication::Active,
            OpenOptimisation::None,
            GroupConfig {
                ordering: OrderProtocol::Asymmetric,
                time_silence: Duration::from_millis(20),
                ..GroupConfig::request_reply()
            },
            now,
            out,
        )
        .expect("server group");
        let count = Arc::clone(&self.executions);
        nso.register_group_servant(
            gid(),
            Box::new(move |_op: &str, args: &[u8]| {
                count.fetch_add(1, AtomicOrdering::SeqCst);
                Bytes::from(args.to_vec())
            }),
        );
    }

    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

/// The §4.1 smart-client behaviour: numbered call stream, rebind on
/// broken bindings, stalled-call retries with original numbers.
struct RetryClient {
    servers: Vec<NodeId>,
    manager_index: usize,
    total_calls: usize,
    issued: usize,
    completions: Vec<u64>,
    rebinds: u32,
    binding: Option<GroupHandle>,
    issued_at: std::collections::HashMap<u64, SimTime>,
}

const BIND_TAG: u64 = tags::APP_BASE;
const RETRY_TAG: u64 = tags::APP_BASE + 1;

impl RetryClient {
    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let manager = self.servers[self.manager_index % self.servers.len()];
        let opts = BindOptions::open(manager).with_time_silence(Duration::from_millis(20));
        nso.bind(gid(), opts, now, out).expect("bind");
    }

    fn issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        if self.issued >= self.total_calls {
            return;
        }
        let Some(binding) = self.binding.clone() else {
            return;
        };
        if let Ok(call) = binding.invoke(
            nso,
            "work",
            Bytes::from(vec![self.issued as u8]),
            ReplyMode::All,
            now,
            out,
        ) {
            self.issued += 1;
            self.issued_at.insert(call.number, now);
        }
    }
}

impl NsoApp for RetryClient {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(Duration::from_millis(5), BIND_TAG);
        out.set_timer(Duration::from_millis(200), RETRY_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        match tag {
            BIND_TAG => self.bind(nso, now, out),
            _ => {
                if let Some(binding) = self.binding.clone() {
                    let stalled: Vec<u64> = self
                        .issued_at
                        .iter()
                        .filter(|(_, &at)| now.saturating_since(at) > Duration::from_millis(150))
                        .map(|(&n, _)| n)
                        .collect();
                    for number in stalled {
                        let _ = binding.retry(nso, number, now, out);
                    }
                }
                out.set_timer(Duration::from_millis(200), RETRY_TAG);
            }
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                let pending: Vec<u64> = self.issued_at.keys().copied().collect();
                if pending.is_empty() {
                    self.issue(nso, now, out);
                } else {
                    for number in pending {
                        let _ = binding.retry(nso, number, now, out);
                    }
                }
            }
            NsoOutput::BindFailed { .. } => {
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::BindingBroken { .. } => {
                self.rebinds += 1;
                self.binding = None;
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { call, .. } => {
                self.issued_at.remove(&call.number);
                self.completions.push(call.number);
                self.issue(nso, now, out);
            }
            _ => {}
        }
    }
}

#[test]
fn crash_rebind_metrics_and_trace_invariants() {
    let total = 100usize;
    let mut sim = Sim::new(SimConfig::lan(41));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let mut executions = Vec::new();
    for &s in &servers {
        let count = Arc::new(AtomicU32::new(0));
        executions.push(Arc::clone(&count));
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(CountingServer {
                    members: servers.clone(),
                    executions: count,
                }),
            )),
        );
    }
    let client = NodeId::from_index(3);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(RetryClient {
                servers: servers.clone(),
                manager_index: 0,
                total_calls: total,
                issued: 0,
                completions: Vec::new(),
                rebinds: 0,
                binding: None,
                issued_at: std::collections::HashMap::new(),
            }),
        )),
    );
    // The client binds through servers[0]; kill it mid-stream.
    sim.schedule_crash(SimTime::from_millis(50), servers[0]);
    sim.run_until(SimTime::from_secs(20));

    let client_node = sim.node_ref::<NsoNode>(client).unwrap();
    let app = client_node.app_ref::<RetryClient>().unwrap();
    let snap = client_node.nso().metrics();
    let trace = client_node.nso().trace();

    // Every call completed exactly once despite the crash.
    let mut numbers = app.completions.clone();
    numbers.sort_unstable();
    assert_eq!(numbers, (1..=total as u64).collect::<Vec<_>>());

    // Exactly one rebind: the manager crash broke the binding once, and
    // the trace and the exact `ev.*` counter both recorded it.
    assert_eq!(app.rebinds, 1, "one manager crash, one broken binding");
    assert_eq!(snap.counter("ev.rebind"), 1);
    let rebinds: Vec<_> = trace
        .iter()
        .filter(|r| r.event.kind() == "rebind")
        .collect();
    assert_eq!(rebinds.len(), 1, "exactly one Rebind event at the client");

    // The rebound binding produced a second bind_ready, after the rebind.
    assert_eq!(snap.counter("ev.bind_ready"), 2, "initial bind + rebind");
    let last_ready = trace
        .iter()
        .rfind(|r| r.event.kind() == "bind_ready")
        .expect("bind_ready recorded");
    assert!(last_ready.at > rebinds[0].at, "rebind precedes the re-bind");

    // Client-side invocation accounting: every completion matched an
    // issue, and each measured a latency sample.
    assert_eq!(snap.counter("inv.calls_completed"), total as u64);
    let lat = snap
        .latencies
        .get("inv.latency")
        .expect("latency histogram");
    assert_eq!(lat.count, total);
    assert!(lat.mean > Duration::ZERO);

    // At least one retry crossed a view change and was answered from a
    // survivor's reply cache (§4.1 dedup) — and no survivor's execution
    // counter exceeds the call count (no re-execution).
    let mut deduped_total = 0;
    for (i, &s) in servers.iter().enumerate().skip(1) {
        let node = sim.node_ref::<NsoNode>(s).expect("survivor");
        let ssnap = node.nso().metrics();
        deduped_total += ssnap.counter("ev.retry_deduped");
        let executed = ssnap.counter("ev.executed");
        assert!(
            executed <= total as u64,
            "server {i} executed {executed} > {total}: re-executed a retry"
        );
        assert_eq!(
            executed,
            u64::from(executions[i].load(AtomicOrdering::SeqCst)),
            "ev.executed mirrors the servant's own count on server {i}"
        );
        // Retries were answered without re-execution: the dedup events
        // are visible in the survivor's trace too.
        let ded = node
            .nso()
            .trace()
            .iter()
            .filter(|r| r.event.kind() == "retry_deduped")
            .count();
        assert_eq!(ded as u64, ssnap.counter("ev.retry_deduped"));
    }
    assert!(
        deduped_total >= 1,
        "the post-rebind retries must hit a reply cache somewhere"
    );

    // The crash is visible in the survivors' failure detectors.
    let suspected: u64 = servers
        .iter()
        .skip(1)
        .filter_map(|&s| sim.node_ref::<NsoNode>(s))
        .map(|n| n.nso().metrics().counter("ev.suspected"))
        .sum();
    assert!(
        suspected >= 1,
        "someone must have suspected the dead manager"
    );
}
