//! Million-client scale modeling (PR 8).
//!
//! The paper's evaluation stops at a handful of real clients; the
//! roadmap's north star is the behaviour of a group at the scale of an
//! interactive service with 10⁴–10⁶ users. Spawning a simulator node per
//! client would melt at that scale, and would also be dishonest: the
//! clients are not the bottleneck, the servers are. Instead an
//! [`AggregateClientApp`] models a whole population of clients as one
//! actor driving an **open-loop Poisson arrival process**: if each of
//! `N` modeled clients issues a request every `think_time` on average,
//! the superposition of their arrival processes is (by the Palm–Khintchine
//! theorem) Poisson with rate `N / think_time`, which one actor can
//! reproduce exactly with a seeded exponential gap sampler.
//!
//! Two modelling rules keep the numbers honest:
//!
//! * **Aggregate actors run on a free CPU profile.** The actor stands in
//!   for thousands of independent machines, so its own marshalling cost
//!   must not serialise their traffic. The *servers* keep the default
//!   serial-CPU billing — a request manager that has to decode, order and
//!   answer every arrival saturates exactly as a real one would, and that
//!   saturation (not client-side effects) is what caps capacity.
//! * **Arrivals never wait for completions.** A closed-loop client slows
//!   down when the service does, hiding the knee; an open-loop process
//!   keeps offering load, so queues grow and the p99 shows it — the
//!   standard way to find the sustainable-throughput boundary.
//!
//! Arrivals are deterministic from the seed alone (timers, not replies,
//! drive the sampler), so the same seed produces a byte-identical arrival
//! schedule regardless of server configuration or shard count; the
//! [`AggregateClientApp::arrival_digest`] hashes every arrival instant so
//! regression tests can assert exactly that.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOptions, NsoOutput, ResolveStyle};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_dir::app::DirectoryApp;
use newtop_dir::directory::shared_directory;
use newtop_gcs::group::{GroupConfig, GroupId, Liveness, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::latency::{BandwidthMatrix, LatencyMatrix};
use newtop_net::sim::{Outbox, ServiceProfile, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::stats::Histogram;
use newtop_net::time::SimTime;

use crate::apps::ServerApp;
use crate::scenario::{harvest_counts, BindingPolicy};

/// Timer tag for the aggregate actor's bind.
const BIND_TAG: u64 = tags::APP_BASE + 3;
/// Timer tag for the next modeled-client arrival.
const ARRIVAL_TAG: u64 = tags::APP_BASE + 4;

/// One actor standing in for a population of modeled clients (see the
/// [module docs](self)).
pub struct AggregateClientApp {
    /// The server group to bind to.
    pub server_group: GroupId,
    /// The service's replicas.
    pub servers: Vec<NodeId>,
    /// Binding policy (closed / open / restricted-manager).
    pub binding: BindingPolicy,
    /// Which server this actor uses as its request manager when open.
    pub manager_index: usize,
    /// Directory members to resolve through under
    /// [`BindingPolicy::Directory`] (unused otherwise).
    pub directory: Vec<NodeId>,
    /// Reply-collection primitive.
    pub mode: ReplyMode,
    /// Ordering protocol for the client/server group.
    pub ordering: OrderProtocol,
    /// Modeled-client arrival rate for this actor, in arrivals/second.
    pub rate: f64,
    /// Stagger before binding.
    pub start_delay: Duration,
    /// Cap on calls in flight; arrivals beyond it are shed (counted, not
    /// queued — a modeled client that cannot be admitted is a failure,
    /// and an unbounded queue would stop the run from quiescing).
    pub max_in_flight: usize,
    /// How long an admitted call may stay unanswered before it is
    /// written off as expired (frees its in-flight slot).
    pub expire_after: Duration,
    /// `(completion time, response time)` per completed call.
    pub completions: Vec<(SimTime, Duration)>,
    /// Total arrivals generated (admitted + shed), whole run.
    pub arrivals: u64,
    /// Arrival instants, FNV-1a-hashed in order — byte-identical arrival
    /// schedules have equal digests.
    pub arrival_digest: u64,
    /// Every arrival instant is also bucketed here so callers can count
    /// arrivals inside a measurement window without a full log.
    pub arrival_times: Vec<SimTime>,
    /// Arrivals shed at admission (binding not ready, in-flight cap hit,
    /// or the stack refused the invocation).
    pub shed: u64,
    /// Shed arrivals, by arrival instant (for windowed accounting).
    pub shed_times: Vec<SimTime>,
    /// Admitted calls written off after [`Self::expire_after`].
    pub expired: u64,
    rng: StdRng,
    handle: Option<GroupHandle>,
    issued_at: HashMap<u64, SimTime>,
}

impl AggregateClientApp {
    /// Creates an aggregate actor. `rate` is this actor's share of the
    /// modeled population's arrival rate; `seed` must differ per actor
    /// (mix the actor index in) so their Poisson streams are independent.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // scenario knobs, all orthogonal
    pub fn new(
        server_group: GroupId,
        servers: Vec<NodeId>,
        binding: BindingPolicy,
        manager_index: usize,
        mode: ReplyMode,
        ordering: OrderProtocol,
        rate: f64,
        seed: u64,
        start_delay: Duration,
    ) -> Self {
        assert!(rate > 0.0, "an idle population needs no actor");
        AggregateClientApp {
            server_group,
            servers,
            binding,
            manager_index,
            directory: Vec::new(),
            mode,
            ordering,
            rate,
            start_delay,
            max_in_flight: 4096,
            expire_after: Duration::from_secs(2),
            completions: Vec::new(),
            arrivals: 0,
            arrival_digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            arrival_times: Vec::new(),
            shed: 0,
            shed_times: Vec::new(),
            expired: 0,
            rng: StdRng::seed_from_u64(seed),
            handle: None,
            issued_at: HashMap::new(),
        }
    }

    /// One exponential inter-arrival gap at this actor's rate.
    fn next_gap(&mut self) -> Duration {
        let u = self.rng.gen_range(0.0f64..1.0);
        // 1-u is in (0, 1], so ln is finite and the gap non-negative.
        let secs = -(1.0 - u).ln() / self.rate;
        Duration::from_secs_f64(secs)
    }

    fn digest_arrival(&mut self, now: SimTime) {
        let nanos = (now - SimTime::ZERO).as_nanos() as u64;
        for byte in nanos.to_le_bytes() {
            self.arrival_digest ^= u64::from(byte);
            self.arrival_digest = self.arrival_digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let opts = match self.binding {
            BindingPolicy::Closed => BindOptions::closed(self.servers.clone()),
            BindingPolicy::OpenAnyServer => {
                BindOptions::open(self.servers[self.manager_index % self.servers.len()])
            }
            BindingPolicy::OpenRestricted => BindOptions::open(self.servers[0]),
            BindingPolicy::Directory => {
                BindOptions::resolve(self.server_group.as_str(), self.directory.clone())
                    .with_resolve_style(ResolveStyle::Open {
                        rank: self.manager_index,
                    })
            }
        }
        .with_ordering(self.ordering);
        nso.bind(self.server_group.clone(), opts, now, out)
            .expect("aggregate bind");
    }

    /// Writes off admitted calls older than [`Self::expire_after`]. Only
    /// run when the in-flight set is full, so the scan amortises.
    fn expire_stale(&mut self, now: SimTime) {
        let horizon = self.expire_after;
        let before = self.issued_at.len();
        self.issued_at.retain(|_, &mut at| now - at < horizon);
        self.expired += (before - self.issued_at.len()) as u64;
    }

    fn on_arrival(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        self.arrivals += 1;
        self.digest_arrival(now);
        self.arrival_times.push(now);
        if self.issued_at.len() >= self.max_in_flight {
            self.expire_stale(now);
        }
        let admitted = match (&self.handle, self.issued_at.len() < self.max_in_flight) {
            (Some(binding), true) => binding
                .clone()
                .invoke(nso, "rand", Bytes::new(), self.mode, now, out)
                .map(|call| self.issued_at.insert(call.number, now))
                .is_ok(),
            _ => false,
        };
        if !admitted {
            self.shed += 1;
            self.shed_times.push(now);
        }
        let gap = self.next_gap();
        out.set_timer(gap, ARRIVAL_TAG);
    }
}

impl NsoApp for AggregateClientApp {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(self.start_delay, BIND_TAG);
        // The arrival process starts on its own clock, independent of
        // binding progress: arrivals while unbound are shed, exactly as
        // real clients would time out against a still-recovering service.
        let first = self.next_gap();
        out.set_timer(self.start_delay + first, ARRIVAL_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        match tag {
            ARRIVAL_TAG => self.on_arrival(nso, now, out),
            _ => self.bind(nso, now, out),
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                if let Some(handle) = nso.handle_for(&group) {
                    self.handle = Some(handle.clone());
                }
            }
            NsoOutput::BindFailed { .. } => {
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::BindingBroken { .. } => {
                self.handle = None;
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { call, .. } => {
                if let Some(at) = self.issued_at.remove(&call.number) {
                    self.completions.push((now, now - at));
                }
            }
            _ => {}
        }
    }
}

/// Which geography a scale cell runs on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RegionMatrix {
    /// The paper's Newcastle/London/Pisa Internet setup; servers and
    /// client populations spread across the three sites.
    PaperWan,
    /// The synthetic five-region planetary matrix
    /// ([`LatencyMatrix::global5`]): servers in us-east/us-west/eu-west,
    /// client populations in all five regions.
    Global5,
    /// The synthetic three-region continental matrix
    /// ([`LatencyMatrix::continental3`]).
    Continental3,
}

impl RegionMatrix {
    /// A short label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RegionMatrix::PaperWan => "paper-wan",
            RegionMatrix::Global5 => "global5",
            RegionMatrix::Continental3 => "continental3",
        }
    }

    /// The latency matrix for this geography.
    #[must_use]
    pub fn latency(self) -> LatencyMatrix {
        match self {
            RegionMatrix::PaperWan => LatencyMatrix::internet(),
            RegionMatrix::Global5 => LatencyMatrix::global5(),
            RegionMatrix::Continental3 => LatencyMatrix::continental3(),
        }
    }

    /// How many aggregate actors (client populations) this geography
    /// hosts — one per region.
    #[must_use]
    pub fn default_actors(self) -> usize {
        match self {
            RegionMatrix::PaperWan | RegionMatrix::Continental3 => 3,
            RegionMatrix::Global5 => 5,
        }
    }

    /// Where the `i`-th server replica lives.
    #[must_use]
    pub fn server_site(self, i: usize) -> Site {
        match self {
            RegionMatrix::PaperWan => [Site::Newcastle, Site::London, Site::Pisa][i % 3],
            // Servers stay on the "fast" side of the planet; clients
            // reach in from everywhere.
            RegionMatrix::Global5 => {
                let s = LatencyMatrix::GLOBAL5_SITES;
                [s[0], s[1], s[2]][i % 3]
            }
            RegionMatrix::Continental3 => {
                let s = LatencyMatrix::CONTINENTAL3_SITES;
                s[i % 3]
            }
        }
    }

    /// Where the `i`-th client population lives.
    #[must_use]
    pub fn actor_site(self, i: usize) -> Site {
        match self {
            RegionMatrix::PaperWan => [Site::Newcastle, Site::London, Site::Pisa][i % 3],
            RegionMatrix::Global5 => LatencyMatrix::GLOBAL5_SITES[i % 5],
            RegionMatrix::Continental3 => LatencyMatrix::CONTINENTAL3_SITES[i % 3],
        }
    }
}

/// A scale-model cell: one service configuration under one modeled
/// client population.
#[derive(Clone, Debug)]
pub struct ScaleScenario {
    /// Number of service replicas.
    pub servers: usize,
    /// Number of aggregate actors (0 = one per region of the matrix).
    pub actors: usize,
    /// Size of the modeled client population.
    pub modeled_clients: u64,
    /// Mean per-client think time between requests. 120 s models an
    /// interactive user touching the service a few times a minute.
    pub think_time: Duration,
    /// Binding policy of the population.
    pub binding: BindingPolicy,
    /// Reply-collection primitive.
    pub mode: ReplyMode,
    /// Ordering protocol.
    pub ordering: OrderProtocol,
    /// Geography.
    pub region: RegionMatrix,
    /// Shard count configured on every node.
    pub shards: usize,
    /// Reordering window applied to the whole run (ZERO = off).
    pub reorder_window: Duration,
    /// Uniform cross-site bandwidth cap in bytes/second (None = uncapped).
    pub link_bandwidth: Option<u64>,
    /// Virtual duration of the run.
    pub duration: Duration,
    /// RNG seed — everything (arrivals, latency jitter) derives from it.
    pub seed: u64,
}

impl ScaleScenario {
    /// The default cell: the restricted-manager configuration of the
    /// paper's Fig. 5(ii) under the paper's WAN, 10⁵ modeled clients.
    #[must_use]
    pub fn default_cell(seed: u64) -> Self {
        ScaleScenario {
            servers: 3,
            actors: 0,
            modeled_clients: 100_000,
            think_time: Duration::from_secs(120),
            binding: BindingPolicy::OpenRestricted,
            mode: ReplyMode::First,
            ordering: OrderProtocol::Asymmetric,
            region: RegionMatrix::PaperWan,
            shards: 1,
            reorder_window: Duration::from_micros(200),
            link_bandwidth: Some(2_500_000),
            duration: Duration::from_millis(2_400),
            seed,
        }
    }

    fn actor_count(&self) -> usize {
        if self.actors == 0 {
            self.region.default_actors()
        } else {
            self.actors
        }
    }
}

/// What one scale-model run measured.
#[derive(Clone, Debug, Default)]
pub struct ScaleResult {
    /// The modeled population size.
    pub modeled_clients: u64,
    /// Offered load, requests/second (`modeled_clients / think_time`).
    pub offered_per_sec: f64,
    /// Arrivals generated over the whole run.
    pub arrivals: u64,
    /// Arrivals inside the measurement window.
    pub arrivals_in_window: u64,
    /// Arrivals shed at admission inside the window.
    pub shed_in_window: u64,
    /// Admitted calls written off as expired (whole run).
    pub expired: u64,
    /// Completions inside the window.
    pub completed: u64,
    /// Completions/second inside the window.
    pub goodput_per_sec: f64,
    /// Response-time percentiles over in-window completions.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Mean response time.
    pub mean: Duration,
    /// Failure-detector suspicions over the whole run (false-suspicion
    /// storms under load show up here).
    pub suspicions: u64,
    /// Combined arrival-schedule digest over all actors, in actor order.
    pub arrival_digest: u64,
}

/// Runs one scale-model cell.
///
/// # Panics
///
/// Panics if the scenario has no servers or a zero population.
#[must_use]
pub fn run_scale(s: &ScaleScenario) -> ScaleResult {
    assert!(s.servers > 0, "a service needs replicas");
    assert!(s.modeled_clients > 0, "model at least one client");
    let cfg = SimConfig {
        seed: s.seed,
        latency: s.region.latency(),
        reorder_window: s.reorder_window,
        bandwidth: s
            .link_bandwidth
            .map_or_else(BandwidthMatrix::unlimited, BandwidthMatrix::uniform_remote),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    let group = GroupId::new("scale-service");
    let opts = NsoOptions::new().with_shards(s.shards);
    let server_ids: Vec<NodeId> = (0..s.servers)
        .map(|i| NodeId::from_index(i as u32))
        .collect();
    let gs_config = GroupConfig {
        ordering: s.ordering,
        liveness: Liveness::EventDriven,
        ..GroupConfig::default()
    };
    let optimisation = match s.binding {
        BindingPolicy::OpenRestricted => OpenOptimisation::Restricted,
        _ => OpenOptimisation::None,
    };
    let actors = s.actor_count();
    let dir_ids: Vec<NodeId> = match s.binding {
        BindingPolicy::Directory => (0..crate::scenario::DIRECTORY_MEMBERS)
            .map(|j| NodeId::from_index((s.servers + actors + j) as u32))
            .collect(),
        _ => Vec::new(),
    };
    for (i, &id) in server_ids.iter().enumerate() {
        let app = ServerApp {
            group: group.clone(),
            members: server_ids.clone(),
            replication: Replication::Active,
            optimisation,
            config: gs_config.clone(),
            seed: s.seed,
            directory: dir_ids.clone(),
        };
        let added = sim.add_node(
            s.region.server_site(i),
            Box::new(NsoNode::with_options(id, opts.clone(), Box::new(app))),
        );
        assert_eq!(added, id);
    }
    let mut actor_ids = Vec::new();
    for i in 0..actors {
        let id = NodeId::from_index((s.servers + i) as u32);
        // Split the population across the actors; early actors take the
        // remainder so every modeled client is represented.
        let share = s.modeled_clients / actors as u64
            + u64::from((s.modeled_clients % actors as u64) > i as u64);
        if share == 0 {
            continue;
        }
        let rate = share as f64 / s.think_time.as_secs_f64();
        let mut app = AggregateClientApp::new(
            group.clone(),
            server_ids.clone(),
            s.binding,
            i,
            s.mode,
            s.ordering,
            rate,
            // splitmix-style per-actor stream separation.
            s.seed ^ (0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1)),
            Duration::from_millis(1 + i as u64),
        );
        app.directory = dir_ids.clone();
        // Free CPU: this actor stands in for `share` distributed client
        // machines, so its own dispatch must not serialise their traffic.
        let added = sim.add_node_with_service(
            s.region.actor_site(i),
            ServiceProfile::free(),
            Box::new(NsoNode::with_options(id, opts.clone(), Box::new(app))),
        );
        assert_eq!(added, id);
        actor_ids.push(id);
    }
    for (j, &id) in dir_ids.iter().enumerate() {
        let app = DirectoryApp::new(dir_ids.clone(), shared_directory());
        let added = sim.add_node(
            s.region.server_site(j),
            Box::new(NsoNode::with_options(id, opts.clone(), Box::new(app))),
        );
        assert_eq!(added, id);
    }
    sim.run_until(SimTime::ZERO + s.duration);

    let d = s.duration.as_nanos() as u64;
    let (lo, hi) = (SimTime::from_nanos(d / 4), SimTime::from_nanos(d * 19 / 20));
    let mut result = ScaleResult {
        modeled_clients: s.modeled_clients,
        offered_per_sec: s.modeled_clients as f64 / s.think_time.as_secs_f64(),
        ..ScaleResult::default()
    };
    let mut hist = Histogram::new();
    let mut digest = 0xcbf2_9ce4_8422_2325_u64;
    for &id in &actor_ids {
        let node = sim.node_ref::<NsoNode>(id).expect("actor node");
        let app = node.app_ref::<AggregateClientApp>().expect("actor app");
        result.arrivals += app.arrivals;
        result.expired += app.expired;
        result.arrivals_in_window += app
            .arrival_times
            .iter()
            .filter(|&&at| at >= lo && at < hi)
            .count() as u64;
        result.shed_in_window += app
            .shed_times
            .iter()
            .filter(|&&at| at >= lo && at < hi)
            .count() as u64;
        for &(at, latency) in &app.completions {
            if at >= lo && at < hi {
                hist.record(latency);
                result.completed += 1;
            }
        }
        for byte in app.arrival_digest.to_le_bytes() {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    result.arrival_digest = digest;
    let span = (hi - lo).as_secs_f64();
    result.goodput_per_sec = result.completed as f64 / span;
    if result.completed > 0 {
        result.p50 = hist.quantile(0.50);
        result.p95 = hist.quantile(0.95);
        result.p99 = hist.quantile(0.99);
        result.mean = hist.mean();
    }
    let mut roster = server_ids;
    roster.extend(actor_ids);
    result.suspicions = harvest_counts(&sim, &roster).suspicions;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell(seed: u64) -> ScaleScenario {
        ScaleScenario {
            modeled_clients: 20_000,
            duration: Duration::from_millis(1_200),
            ..ScaleScenario::default_cell(seed)
        }
    }

    #[test]
    fn aggregate_population_completes_requests() {
        let r = run_scale(&small_cell(77));
        // 20k clients at 120s think time ≈ 167 req/s; the window is
        // ~0.84s, so well over 50 should complete.
        assert!(r.completed > 50, "completed {}", r.completed);
        assert!(r.arrivals_in_window > 50);
        assert!(r.p99 >= r.p50);
        assert!(r.goodput_per_sec > 50.0);
        // A healthy cell sheds at most the pre-bind trickle.
        assert!(r.shed_in_window == 0, "shed {} in window", r.shed_in_window);
    }

    #[test]
    fn arrival_schedule_is_seed_deterministic() {
        let a = run_scale(&small_cell(42));
        let b = run_scale(&small_cell(42));
        assert_eq!(a.arrival_digest, b.arrival_digest);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99, b.p99);
        let c = run_scale(&small_cell(43));
        assert_ne!(a.arrival_digest, c.arrival_digest);
    }

    #[test]
    fn arrival_schedule_is_shard_count_invariant() {
        let mut one = small_cell(7);
        one.shards = 1;
        let mut four = small_cell(7);
        four.shards = 4;
        let a = run_scale(&one);
        let b = run_scale(&four);
        assert_eq!(a.arrival_digest, b.arrival_digest);
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    fn open_loop_shows_overload_instead_of_hiding_it() {
        // 40× the population drives the offered load far past a single
        // restricted manager's capacity: latency inflates or arrivals
        // shed/expire — either way the cell is visibly unsustainable.
        let calm = run_scale(&small_cell(11));
        let mut hot = small_cell(11);
        hot.modeled_clients = 800_000;
        let overloaded = run_scale(&hot);
        let struggling = overloaded.p99 > calm.p99 * 4
            || overloaded.shed_in_window > 0
            || overloaded.expired > 0
            || (overloaded.goodput_per_sec)
                < 0.9
                    * (overloaded.arrivals_in_window as f64
                        / (hot.duration.as_secs_f64() * (19.0 / 20.0 - 0.25)));
        assert!(
            struggling,
            "800k clients should overwhelm one manager: p99 {:?} vs calm {:?}, shed {}, expired {}",
            overloaded.p99, calm.p99, overloaded.shed_in_window, overloaded.expired
        );
    }
}
