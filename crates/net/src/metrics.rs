//! Per-node protocol metrics.
//!
//! A [`MetricRegistry`] holds named monotonic counters, point-in-time
//! gauges, and latency histograms (reusing [`crate::stats::Histogram`]).
//! It has no dependencies and no background machinery: protocol code
//! bumps counters inline, and callers take a [`MetricsSnapshot`] when
//! they want to read or print the numbers.
//!
//! [`Observability`] bundles a registry with a bounded
//! [`crate::trace::TraceLog`]; its [`record`](Observability::record)
//! method appends a trace event *and* bumps the matching `ev.<kind>`
//! counter, so aggregate event counts stay exact even after the trace
//! ring has dropped old records.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::stats::Histogram;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceLog};

/// Named counters, gauges, and latency histograms for one node.
///
/// Names are dotted paths by convention: a component prefix, then the
/// measure (`"gcs.msgs_sent"`, `"inv.calls_issued"`, `"ev.rebind"`).
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    latencies: BTreeMap<String, Histogram>,
}

impl MetricRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first (so
    /// even a zero-delta add materialises the counter in snapshots).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The named counter's value (zero when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The named gauge's value, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records one latency sample into the named histogram.
    pub fn record_latency(&mut self, name: &str, sample: Duration) {
        self.latencies
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// The named latency histogram, if any samples were recorded.
    #[must_use]
    pub fn latency(&self, name: &str) -> Option<&Histogram> {
        self.latencies.get(name)
    }

    /// Iterates all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value, histograms concatenate samples.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.latencies {
            self.latencies.entry(name.clone()).or_default().merge(h);
        }
    }

    /// A point-in-time copy suitable for printing or asserting against.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            latencies: self
                .latencies
                .iter()
                .map(|(name, h)| {
                    let mut h = h.clone();
                    (
                        name.clone(),
                        LatencySummary {
                            count: h.len(),
                            mean: h.mean(),
                            p50: h.quantile(0.50),
                            p99: h.quantile(0.99),
                            max: h.max(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Five-number summary of one latency histogram in a snapshot. All
/// durations are zero when the histogram held no samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: usize,
    /// Mean sample.
    pub mean: Duration,
    /// Median sample.
    pub p50: Duration,
    /// 99th-percentile sample.
    pub p99: Duration,
    /// Largest sample.
    pub max: Duration,
}

/// A point-in-time copy of a [`MetricRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Latency summaries by name.
    pub latencies: BTreeMap<String, LatencySummary>,
}

impl MetricsSnapshot {
    /// The named counter's value (zero when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sums all counters whose name starts with `prefix`.
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

fn fmt_dur(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1e3)
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name:<36} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name:<36} {v} (gauge)")?;
        }
        for (name, l) in &self.latencies {
            writeln!(
                f,
                "{name:<36} n={} mean={} p50={} p99={} max={}",
                l.count,
                fmt_dur(l.mean),
                fmt_dur(l.p50),
                fmt_dur(l.p99),
                fmt_dur(l.max),
            )?;
        }
        Ok(())
    }
}

/// A metric registry plus a trace log, recorded together.
#[derive(Clone, Debug, Default)]
pub struct Observability {
    /// Counters, gauges, latency histograms.
    pub metrics: MetricRegistry,
    /// Bounded ring of typed protocol events.
    pub trace: TraceLog,
}

impl Observability {
    /// Empty metrics and a default-capacity trace ring.
    #[must_use]
    pub fn new() -> Self {
        Observability::default()
    }

    /// Appends `event` to the trace and bumps its `ev.<kind>` counter.
    ///
    /// The counter is exact for the node's lifetime; the trace ring may
    /// drop old records under sustained load.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        self.metrics.incr(&format!("ev.{}", event.kind()));
        self.trace.record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::NodeId;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricRegistry::new();
        m.incr("a.x");
        m.add("a.x", 4);
        m.add("a.y", 0);
        m.set_gauge("g", -3);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("a.y"), 0);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(-3));
        let snap = m.snapshot();
        assert_eq!(snap.counter("a.x"), 5);
        assert_eq!(snap.counter_sum("a."), 5);
        assert!(snap.counters.contains_key("a.y"));
    }

    #[test]
    fn latency_summary() {
        let mut m = MetricRegistry::new();
        for ms in [1u64, 2, 3, 4] {
            m.record_latency("inv.latency", Duration::from_millis(ms));
        }
        let snap = m.snapshot();
        let l = snap.latencies.get("inv.latency").unwrap();
        assert_eq!(l.count, 4);
        assert_eq!(l.max, Duration::from_millis(4));
        assert!(l.mean >= Duration::from_millis(2));
        assert!(snap.to_string().contains("inv.latency"));
    }

    #[test]
    fn merge_adds_counters_and_samples() {
        let mut a = MetricRegistry::new();
        a.add("c", 2);
        a.record_latency("l", Duration::from_millis(1));
        let mut b = MetricRegistry::new();
        b.add("c", 3);
        b.add("only_b", 1);
        b.record_latency("l", Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.latency("l").unwrap().len(), 2);
    }

    #[test]
    fn record_bumps_event_counter() {
        let mut obs = Observability::new();
        for _ in 0..3 {
            obs.record(
                SimTime::from_millis(1),
                TraceEvent::Suspected {
                    group: "g".into(),
                    suspect: NodeId::from_index(1),
                },
            );
        }
        assert_eq!(obs.metrics.counter("ev.suspected"), 3);
        assert_eq!(obs.trace.count_kind("suspected"), 3);
    }
}
