/root/repo/target/debug/deps/graphs_17_18_peer-5f8615adf8caad8e.d: crates/bench/benches/graphs_17_18_peer.rs Cargo.toml

/root/repo/target/debug/deps/libgraphs_17_18_peer-5f8615adf8caad8e.rmeta: crates/bench/benches/graphs_17_18_peer.rs Cargo.toml

crates/bench/benches/graphs_17_18_peer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
