//! **Graphs 17–18** — peer participation: group throughput (msgs/s) vs
//! group size for the symmetric and asymmetric ordering protocols, over
//! the geographically separated placement (published graphs) and the LAN
//! variant the text discusses.

use newtop_bench::{bench_seed, PEER_SIZES};
use newtop_net::stats::TextTable;
use newtop_workloads::figures::{graphs_17_18_peer, metrics_peer};

fn main() {
    let seed = bench_seed();
    for (wan, label) in [
        (true, "Graphs 17-18: geographically separated members"),
        (false, "LAN variant (discussed in §5.2)"),
    ] {
        let (sym, asym) = graphs_17_18_peer(wan, PEER_SIZES, seed);
        let table = TextTable::from_series(label.to_string(), "members", &[sym, asym]);
        println!("{table}");
    }
    // The counters behind the gap: the asymmetric protocol redirects
    // every delivery through the sequencer's ordering records (batched,
    // so one record orders several deliveries), the symmetric one sends
    // none.
    println!("{}", metrics_peer(false, &[3, 6], seed));
    println!(
        "paper shape: over the WAN the symmetric protocol beats the asymmetric \
         one (the cost of redirection through the sequencer); on the LAN the \
         asymmetric protocol degrades faster with group size — the sequencer \
         is the bottleneck. The metrics table shows the redirection directly: \
         ordering records flow only under the asymmetric protocol (the \
         sequencer batches them, so each record orders several deliveries)."
    );
}
