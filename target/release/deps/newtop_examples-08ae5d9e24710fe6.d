/root/repo/target/release/deps/newtop_examples-08ae5d9e24710fe6.d: examples/src/lib.rs

/root/repo/target/release/deps/libnewtop_examples-08ae5d9e24710fe6.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libnewtop_examples-08ae5d9e24710fe6.rmeta: examples/src/lib.rs

examples/src/lib.rs:
