/root/repo/target/debug/deps/ablations-870d2f0a96f9e45e.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-870d2f0a96f9e45e.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
