/root/repo/target/debug/deps/nso_edges-8fe0bab64bf3e586.d: crates/core/tests/nso_edges.rs Cargo.toml

/root/repo/target/debug/deps/libnso_edges-8fe0bab64bf3e586.rmeta: crates/core/tests/nso_edges.rs Cargo.toml

crates/core/tests/nso_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
