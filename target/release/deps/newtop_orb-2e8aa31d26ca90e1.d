/root/repo/target/release/deps/newtop_orb-2e8aa31d26ca90e1.d: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

/root/repo/target/release/deps/libnewtop_orb-2e8aa31d26ca90e1.rlib: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

/root/repo/target/release/deps/libnewtop_orb-2e8aa31d26ca90e1.rmeta: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

crates/orb/src/lib.rs:
crates/orb/src/cdr.rs:
crates/orb/src/giop.rs:
crates/orb/src/ior.rs:
crates/orb/src/naming.rs:
crates/orb/src/orb.rs:
crates/orb/src/servant.rs:
