//! The geo-distributed capacity sweep behind the `scale` binary.
//!
//! Each cell of the sweep matrix fixes a service configuration —
//! ordering protocol × binding policy × reply-collection mode × region
//! matrix — and asks one question: **how many modeled clients can this
//! configuration sustain** before the p99 response time crosses the
//! bound or the service stops keeping up with its arrivals? The probe
//! is [`newtop_workloads::scale::run_scale`]: an open-loop Poisson
//! population at a given size, billed honestly (serial-CPU servers,
//! free-CPU aggregate actors).
//!
//! The search doubles the population from [`SweepConfig::start_clients`]
//! until a probe fails (or [`SweepConfig::max_clients`] is reached),
//! then bisects between the last sustainable and first unsustainable
//! sizes. Every probe derives from the single campaign seed, so the
//! whole sweep — capacities, digests, the rendered JSON — is a pure
//! function of `(seed, config)` and can be replayed byte-for-byte.

use std::fmt::Write as _;
use std::time::Duration;

use newtop_gcs::group::OrderProtocol;
use newtop_invocation::api::ReplyMode;
use newtop_workloads::scenario::BindingPolicy;
use newtop_workloads::{run_scale, RegionMatrix, ScaleResult, ScaleScenario};

/// Parameters shared by every cell of one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Campaign seed; per-cell seeds are mixed from it.
    pub seed: u64,
    /// Shard count configured on every node.
    pub shards: usize,
    /// The sustainability bound on p99 response time.
    pub p99_bound: Duration,
    /// Mean modeled-client think time.
    pub think_time: Duration,
    /// Virtual duration of each probe.
    pub duration: Duration,
    /// First population size probed.
    pub start_clients: u64,
    /// Ceiling on the doubling ladder.
    pub max_clients: u64,
    /// Region matrices swept (each multiplies the cell count).
    pub regions: Vec<RegionMatrix>,
}

impl SweepConfig {
    /// The full sweep: 2 orderings × 4 bindings (closed, open,
    /// restricted, directory-resolved) × 2 reply modes over the paper
    /// WAN and the synthetic five-region matrix, probing 12.5 k to
    /// 1.6 M modeled clients.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        SweepConfig {
            seed,
            shards: 1,
            p99_bound: Duration::from_millis(400),
            think_time: Duration::from_secs(120),
            duration: Duration::from_millis(2_400),
            start_clients: 12_500,
            max_clients: 1_600_000,
            regions: vec![RegionMatrix::PaperWan, RegionMatrix::Global5],
        }
    }

    /// The CI smoke sweep: one region, a short ladder, short probes —
    /// seconds of wall clock, same code paths.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        SweepConfig {
            seed,
            shards: 1,
            p99_bound: Duration::from_millis(400),
            think_time: Duration::from_secs(120),
            duration: Duration::from_millis(1_000),
            start_clients: 4_000,
            max_clients: 16_000,
            regions: vec![RegionMatrix::PaperWan],
        }
    }
}

/// One cell of the sweep matrix.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Geography.
    pub region: RegionMatrix,
    /// Total-order protocol.
    pub ordering: OrderProtocol,
    /// Binding policy of the modeled population.
    pub binding: BindingPolicy,
    /// Reply-collection mode.
    pub mode: ReplyMode,
}

impl CellSpec {
    /// Short ordering label for tables and JSON.
    #[must_use]
    pub fn ordering_label(&self) -> &'static str {
        match self.ordering {
            OrderProtocol::Symmetric => "sym",
            OrderProtocol::Asymmetric => "asym",
        }
    }

    /// Short binding label.
    #[must_use]
    pub fn binding_label(&self) -> &'static str {
        match self.binding {
            BindingPolicy::Closed => "closed",
            BindingPolicy::OpenAnyServer => "open",
            BindingPolicy::OpenRestricted => "restricted",
            BindingPolicy::Directory => "directory",
        }
    }

    /// Short reply-mode label.
    #[must_use]
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            ReplyMode::OneWay => "oneway",
            ReplyMode::First => "first",
            ReplyMode::Majority => "majority",
            ReplyMode::All => "all",
        }
    }
}

/// The cells of one sweep, in a fixed, reproducible order.
#[must_use]
pub fn cells(cfg: &SweepConfig) -> Vec<CellSpec> {
    let mut out = Vec::new();
    for &region in &cfg.regions {
        for ordering in [OrderProtocol::Symmetric, OrderProtocol::Asymmetric] {
            for binding in [
                BindingPolicy::Closed,
                BindingPolicy::OpenAnyServer,
                BindingPolicy::OpenRestricted,
                BindingPolicy::Directory,
            ] {
                for mode in [ReplyMode::First, ReplyMode::All] {
                    out.push(CellSpec {
                        region,
                        ordering,
                        binding,
                        mode,
                    });
                }
            }
        }
    }
    out
}

/// The outcome of the capacity search in one cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell.
    pub spec: CellSpec,
    /// Largest probed population that was sustainable (0 = even the
    /// first probe failed).
    pub capacity: u64,
    /// Number of probes the search spent.
    pub probes: u32,
    /// The measurement at `capacity` — or, when `capacity` is 0, at the
    /// failing first probe (so the table shows *why* the cell failed).
    pub measured: ScaleResult,
}

/// Whether one probe counts as sustainable: p99 within the bound, the
/// service keeping up with ≥ 90 % of its in-window arrivals, and at most
/// 1 % of arrivals shed at admission.
#[must_use]
pub fn sustainable(r: &ScaleResult, bound: Duration) -> bool {
    r.completed > 0
        && r.p99 <= bound
        && r.completed as f64 >= 0.9 * r.arrivals_in_window as f64
        && r.shed_in_window * 100 <= r.arrivals_in_window
}

fn cell_seed(cfg: &SweepConfig, index: usize) -> u64 {
    cfg.seed ^ (0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(index as u64 + 1))
}

fn probe(cfg: &SweepConfig, spec: &CellSpec, seed: u64, clients: u64) -> ScaleResult {
    let scenario = ScaleScenario {
        modeled_clients: clients,
        think_time: cfg.think_time,
        binding: spec.binding,
        mode: spec.mode,
        ordering: spec.ordering,
        region: spec.region,
        shards: cfg.shards,
        duration: cfg.duration,
        ..ScaleScenario::default_cell(seed)
    };
    run_scale(&scenario)
}

/// Binary-searches the capacity of one cell: double from
/// `start_clients` until a probe fails, then bisect.
#[must_use]
pub fn search_cell(cfg: &SweepConfig, index: usize, spec: &CellSpec) -> CellOutcome {
    let seed = cell_seed(cfg, index);
    let mut probes = 0u32;
    let mut best: Option<(u64, ScaleResult)> = None;
    let mut first_failure: Option<ScaleResult> = None;
    let mut lo = 0u64;
    let mut hi: Option<u64> = None;
    let mut n = cfg.start_clients;
    loop {
        let r = probe(cfg, spec, seed, n);
        probes += 1;
        if sustainable(&r, cfg.p99_bound) {
            lo = n;
            best = Some((n, r));
            if n >= cfg.max_clients {
                break;
            }
            n = (n * 2).min(cfg.max_clients);
        } else {
            first_failure = Some(r);
            hi = Some(n);
            break;
        }
    }
    if let Some(mut hi_n) = hi {
        // Bisect only when something was sustainable at all; three
        // halvings of a doubling gap give ±1/16 resolution.
        if lo > 0 {
            for _ in 0..3 {
                let mid = lo + (hi_n - lo) / 2;
                if mid == lo || mid == hi_n {
                    break;
                }
                let r = probe(cfg, spec, seed, mid);
                probes += 1;
                if sustainable(&r, cfg.p99_bound) {
                    lo = mid;
                    best = Some((mid, r));
                } else {
                    hi_n = mid;
                }
            }
        }
    }
    match best {
        Some((capacity, measured)) => CellOutcome {
            spec: spec.clone(),
            capacity,
            probes,
            measured,
        },
        None => CellOutcome {
            spec: spec.clone(),
            capacity: 0,
            probes,
            measured: first_failure.expect("at least one probe ran"),
        },
    }
}

/// Runs the whole sweep, cell by cell.
#[must_use]
pub fn run_sweep(cfg: &SweepConfig) -> Vec<CellOutcome> {
    cells(cfg)
        .iter()
        .enumerate()
        .map(|(i, spec)| search_cell(cfg, i, spec))
        .collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders the sweep as the JSON document `scripts/bench_snapshot.sh`
/// records as `BENCH_PR8.json`. Built as a string (not printed) so the
/// determinism tests can compare two sweeps byte for byte.
#[must_use]
pub fn render_json(cfg: &SweepConfig, outcomes: &[CellOutcome]) -> String {
    let mut s = String::new();
    let best = outcomes.iter().max_by_key(|o| o.capacity);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scale\",");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"shards\": {},", cfg.shards);
    let _ = writeln!(s, "  \"p99_bound_ms\": {:.1},", ms(cfg.p99_bound));
    let _ = writeln!(
        s,
        "  \"think_time_s\": {:.1},",
        cfg.think_time.as_secs_f64()
    );
    let _ = writeln!(s, "  \"probe_duration_ms\": {},", cfg.duration.as_millis());
    let _ = writeln!(s, "  \"start_clients\": {},", cfg.start_clients);
    let _ = writeln!(s, "  \"max_clients\": {},", cfg.max_clients);
    if let Some(b) = best {
        let _ = writeln!(s, "  \"best\": {{");
        let _ = writeln!(
            s,
            "    \"region\": \"{}\", \"ordering\": \"{}\", \"binding\": \"{}\", \"reply\": \"{}\",",
            b.spec.region.label(),
            b.spec.ordering_label(),
            b.spec.binding_label(),
            b.spec.mode_label()
        );
        let _ = writeln!(s, "    \"max_sustainable_clients\": {}", b.capacity);
        let _ = writeln!(s, "  }},");
    }
    s.push_str("  \"cells\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 == outcomes.len() { "" } else { "," };
        let r = &o.measured;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(
            s,
            "      \"region\": \"{}\", \"ordering\": \"{}\", \"binding\": \"{}\", \"reply\": \"{}\",",
            o.spec.region.label(),
            o.spec.ordering_label(),
            o.spec.binding_label(),
            o.spec.mode_label()
        );
        let _ = writeln!(
            s,
            "      \"max_sustainable_clients\": {}, \"probes\": {},",
            o.capacity, o.probes
        );
        let _ = writeln!(
            s,
            "      \"offered_per_sec\": {:.1}, \"goodput_per_sec\": {:.1},",
            r.offered_per_sec, r.goodput_per_sec
        );
        let _ = writeln!(
            s,
            "      \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3},",
            ms(r.p50),
            ms(r.p95),
            ms(r.p99)
        );
        let _ = writeln!(
            s,
            "      \"arrivals_in_window\": {}, \"completed\": {}, \"shed_in_window\": {}, \"expired\": {},",
            r.arrivals_in_window, r.completed, r.shed_in_window, r.expired
        );
        let _ = writeln!(
            s,
            "      \"suspicions\": {}, \"arrival_digest\": \"{:#018x}\"",
            r.suspicions, r.arrival_digest
        );
        let _ = writeln!(s, "    }}{sep}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the sweep as the markdown capacity table recorded in
/// `EXPERIMENTS.md`.
#[must_use]
pub fn render_markdown(cfg: &SweepConfig, outcomes: &[CellOutcome]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| region | ordering | binding | reply | max clients | offered/s | goodput/s | p99 (ms) | shed | susp |"
    );
    let _ = writeln!(s, "|---|---|---|---|---:|---:|---:|---:|---:|---:|");
    for o in outcomes {
        let r = &o.measured;
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} | {:.0} | {:.0} | {:.1} | {} | {} |",
            o.spec.region.label(),
            o.spec.ordering_label(),
            o.spec.binding_label(),
            o.spec.mode_label(),
            o.capacity,
            r.offered_per_sec,
            r.goodput_per_sec,
            ms(r.p99),
            r.shed_in_window,
            r.suspicions
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "(seed {}, shards {}, p99 bound {:.0} ms, think time {:.0} s, probe {} ms)",
        cfg.seed,
        cfg.shards,
        ms(cfg.p99_bound),
        cfg.think_time.as_secs_f64(),
        cfg.duration.as_millis()
    );
    s
}
