//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard library's locks with `parking_lot`'s panic-free
//! API: `lock()`/`read()`/`write()` return guards directly, recovering
//! from poisoning instead of returning a `Result`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_work() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(rw.into_inner(), 6);
    }
}
