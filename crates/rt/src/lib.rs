//! Threaded runtime for the NewTop service object.
//!
//! The [`Nso`] is a sans-IO state machine; this crate hosts one per
//! thread with wall-clock timers and a real transport (the in-process
//! [`newtop_net::channel::ChannelNetwork`] or framed TCP via
//! [`newtop_net::tcp::TcpEndpoint`]), so the runnable examples are
//! genuinely concurrent programs rather than simulations.
//!
//! Each node runs an event loop selecting over incoming packets,
//! application commands and its timer wheel. With more than one shard
//! configured ([`RuntimeOptions::with_shards`]), packet ingress is
//! parallelised across shard workers: a distributor fans incoming
//! packets out to `N` bounded worker queues by source (preserving
//! per-source FIFO order), each worker pre-decodes and unbatches GCS
//! frames ([`Nso::decode_gcs_frame`] — the CPU-heavy part of ingress),
//! and the decoded messages fan back into the event loop, which applies
//! them to the per-shard protocol engines. Applications drive the node
//! through a [`NodeHandle`]: [`NodeHandle::with_nso`] runs a closure
//! against the NSO inside the loop (so no locking is ever needed), and
//! [`NodeHandle::outputs`] / [`NodeHandle::wait_for_output`] receive the
//! NSO's outputs.
//!
//! ```
//! use newtop_rt::{NodeRuntime, RuntimeOptions};
//! use newtop_net::channel::ChannelNetwork;
//! use newtop_net::site::NodeId;
//!
//! let net = ChannelNetwork::new();
//! let a = NodeId::from_index(0);
//! let (transport, incoming) = net.endpoint(a);
//! let node = NodeRuntime::spawn(transport, incoming, RuntimeOptions::new());
//! let id = node.with_nso(|nso, _now, _out| nso.node());
//! assert_eq!(id, a);
//! node.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use newtop_flow::queue::{bounded, QueueStats, Receiver, Sender};
use newtop_flow::FlowConfig;

use newtop::nso::{Nso, NsoOptions, NsoOutput};
use newtop_gcs::messages::GcsMessage;
use newtop_net::sim::{Outbox, Packet, TimerId};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_net::transport::WireTransport;

/// Construction options for [`NodeRuntime::spawn`]: shard count, flow
/// bounds, and send-path batching.
///
/// The defaults are the production posture — `min(4, cores)` shards,
/// batching on, default [`FlowConfig`] queue bounds.
#[derive(Clone, Debug)]
pub struct RuntimeOptions {
    shards: usize,
    batching: bool,
    flow: FlowConfig,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        RuntimeOptions {
            shards: cores.min(4),
            batching: true,
            flow: FlowConfig::default(),
        }
    }
}

impl RuntimeOptions {
    /// The default options (see the type docs).
    #[must_use]
    pub fn new() -> Self {
        RuntimeOptions::default()
    }

    /// Sets the number of protocol shards (clamped to at least 1).
    /// Groups hash to a shard; each shard owns its engines, clock
    /// domain, flow ledgers, and ingress queue.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enables or disables send-path batching (packing small protocol
    /// messages for one destination into one batch frame per flush).
    #[must_use]
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Sets the flow configuration: the command/output/ingress queue
    /// bounds and the flow-control window.
    #[must_use]
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether send-path batching is enabled.
    #[must_use]
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// The configured flow bounds.
    #[must_use]
    pub fn flow(&self) -> &FlowConfig {
        &self.flow
    }
}

type Command = Box<dyn FnOnce(&mut Nso, SimTime, &mut Outbox) + Send>;

/// A handle to a node hosted by [`NodeRuntime::spawn`].
pub struct NodeHandle {
    node: NodeId,
    commands: Sender<Command>,
    outputs: Receiver<NsoOutput>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeHandle({})", self.node)
    }
}

impl NodeHandle {
    /// The hosted node's id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Runs a closure against the NSO inside its event loop and returns
    /// the result. Blocks until the loop has executed it.
    ///
    /// # Panics
    ///
    /// Panics if the node's event loop has stopped.
    pub fn with_nso<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Nso, SimTime, &mut Outbox) -> R + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        self.commands
            .send(Box::new(move |nso, now, out| {
                let _ = tx.send(f(nso, now, out));
            }))
            .expect("node event loop stopped");
        rx.recv().expect("node event loop stopped")
    }

    /// The stream of NSO outputs. The queue is bounded: if the
    /// application stops draining it, the event loop sheds the oldest
    /// unread outputs' successors rather than buffering without limit
    /// (count via [`NodeHandle::output_stats`]).
    #[must_use]
    pub fn outputs(&self) -> &Receiver<NsoOutput> {
        &self.outputs
    }

    /// Flow statistics of the output queue: sheds, peak depth, capacity.
    #[must_use]
    pub fn output_stats(&self) -> QueueStats {
        self.outputs.stats()
    }

    /// Waits until an output matching `pred` arrives (discarding
    /// non-matching outputs), or the timeout elapses.
    pub fn wait_for_output(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&NsoOutput) -> bool,
    ) -> Option<NsoOutput> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            match self.outputs.recv_timeout(remaining) {
                Ok(o) if pred(&o) => return Some(o),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
    }

    /// Stops the event loop and joins the thread. Idempotent; also done
    /// on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Closing the command channel stops the loop.
        let (dead_tx, _) = bounded(1);
        let _ = std::mem::replace(&mut self.commands, dead_tx);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns NSO event loops on threads.
pub struct NodeRuntime;

impl NodeRuntime {
    /// Spawns a node: an NSO event loop over `transport` (which names
    /// the node via [`WireTransport::local`]), receiving packets from
    /// `incoming`, configured by `opts`.
    ///
    /// With `opts.shards() > 1` the runtime also spawns an ingress
    /// distributor and one decode worker per shard (threads
    /// `newtop-rt-shard{k}-{node}`); see the crate docs for the
    /// pipeline. With one shard, packets flow straight into the event
    /// loop as before.
    pub fn spawn<T: WireTransport>(
        transport: T,
        incoming: Receiver<Packet>,
        opts: RuntimeOptions,
    ) -> NodeHandle {
        let node = transport.local();
        let (cmd_tx, cmd_rx) = bounded::<Command>(opts.flow.queue_capacity);
        let (out_tx, out_rx) = bounded::<NsoOutput>(opts.flow.queue_capacity);
        let ingress = spawn_ingress(node, incoming, &opts);
        let join = std::thread::Builder::new()
            .name(format!("nso-{node}"))
            .spawn(move || event_loop(node, &transport, &opts, &ingress, &cmd_rx, &out_tx))
            .expect("failed to spawn node thread");
        NodeHandle {
            node,
            commands: cmd_tx,
            outputs: out_rx,
            join: Some(join),
        }
    }
}

/// What the ingress path hands the event loop: either a raw packet (the
/// single-shard path, and anything the workers decline to pre-decode) or
/// the decoded GCS messages of one frame.
enum Ingress {
    Raw(Packet),
    Gcs(Vec<GcsMessage>),
}

/// Builds the ingress pipeline. With one shard the event loop consumes
/// `incoming` directly; otherwise a distributor thread fans packets out
/// to per-shard decode workers (hashing on the source so per-source FIFO
/// order survives) and the workers' decoded output fans back in over one
/// bounded channel.
fn spawn_ingress(
    node: NodeId,
    incoming: Receiver<Packet>,
    opts: &RuntimeOptions,
) -> Receiver<Ingress> {
    let capacity = opts.flow.queue_capacity;
    if opts.shards == 1 {
        let (tx, rx) = bounded::<Ingress>(capacity);
        std::thread::Builder::new()
            .name(format!("newtop-rt-ingress-{node}"))
            .spawn(move || {
                while let Ok(pkt) = incoming.recv() {
                    if tx.send(Ingress::Raw(pkt)).is_err() {
                        return;
                    }
                }
            })
            .expect("failed to spawn ingress thread");
        return rx;
    }
    let (fan_in_tx, fan_in_rx) = bounded::<Ingress>(capacity);
    let mut shard_queues = Vec::with_capacity(opts.shards);
    for k in 0..opts.shards {
        let (tx, rx) = bounded::<Packet>(capacity);
        shard_queues.push(tx);
        let fan_in = fan_in_tx.clone();
        std::thread::Builder::new()
            .name(format!("newtop-rt-shard{k}-{node}"))
            .spawn(move || {
                while let Ok(pkt) = rx.recv() {
                    let event = match Nso::decode_gcs_frame(&pkt.payload) {
                        Some(msgs) => Ingress::Gcs(msgs),
                        None => Ingress::Raw(pkt),
                    };
                    if fan_in.send(event).is_err() {
                        return;
                    }
                }
            })
            .expect("failed to spawn shard worker");
    }
    std::thread::Builder::new()
        .name(format!("newtop-rt-ingress-{node}"))
        .spawn(move || {
            while let Ok(pkt) = incoming.recv() {
                let shard = (fnv1a(pkt.src.index()) as usize) % shard_queues.len();
                if shard_queues[shard].send(pkt).is_err() {
                    return;
                }
            }
        })
        .expect("failed to spawn ingress thread");
    fan_in_rx
}

/// FNV-1a over the source id — cheap, deterministic shard placement.
fn fnv1a(x: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    id: TimerId,
    tag: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

fn event_loop(
    node: NodeId,
    transport: &dyn WireTransport,
    opts: &RuntimeOptions,
    ingress: &Receiver<Ingress>,
    commands: &Receiver<Command>,
    outputs: &Sender<NsoOutput>,
) {
    let start = Instant::now();
    let mut nso = Nso::with_options(
        node,
        NsoOptions::new()
            .with_shards(opts.shards)
            .with_batching(opts.batching),
    );
    let mut timers: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();
    let mut next_outbox_timer: u64 = 0;
    let mut timer_seq: u64 = 0;

    let now = |start: Instant| SimTime::from_nanos(start.elapsed().as_nanos() as u64);

    loop {
        // Fire due timers.
        let mut due: Vec<(TimerId, u64)> = Vec::new();
        let instant_now = Instant::now();
        while let Some(Reverse(head)) = timers.peek() {
            if head.deadline > instant_now {
                break;
            }
            let Reverse(entry) = timers.pop().expect("peeked");
            if !cancelled.remove(&entry.id) {
                due.push((entry.id, entry.tag));
            }
        }
        for (_, tag) in due {
            let mut out = Outbox::detached(next_outbox_timer);
            nso.on_timer(tag, now(start), &mut out);
            next_outbox_timer =
                apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
            drain_outputs(&mut nso, outputs);
        }

        // Wait for the next packet/command, bounded by the next timer.
        let timeout = timers
            .peek()
            .map_or(Duration::from_millis(50), |Reverse(t)| {
                t.deadline.saturating_duration_since(Instant::now())
            });

        crossbeam::channel::select! {
            recv(ingress) -> event => {
                let Ok(event) = event else { return };
                match event {
                    Ingress::Raw(pkt) => {
                        let mut out = Outbox::detached(next_outbox_timer);
                        nso.on_packet(&pkt, now(start), &mut out);
                        next_outbox_timer = apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
                    }
                    Ingress::Gcs(msgs) => {
                        for msg in msgs {
                            let mut out = Outbox::detached(next_outbox_timer);
                            nso.on_gcs_message(msg, now(start), &mut out);
                            next_outbox_timer = apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
                        }
                    }
                }
                drain_outputs(&mut nso, outputs);
            }
            recv(commands) -> cmd => {
                let Ok(cmd) = cmd else { return };
                let mut out = Outbox::detached(next_outbox_timer);
                cmd(&mut nso, now(start), &mut out);
                next_outbox_timer = apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
                drain_outputs(&mut nso, outputs);
            }
            default(timeout) => {}
        }
    }
}

fn apply_outbox(
    transport: &dyn WireTransport,
    timers: &mut BinaryHeap<Reverse<TimerEntry>>,
    cancelled: &mut HashSet<TimerId>,
    timer_seq: &mut u64,
    out: Outbox,
) -> u64 {
    let parts = out.into_parts();
    for id in parts.timer_cancels {
        cancelled.insert(id);
    }
    let now = Instant::now();
    for (id, delay, tag) in parts.timer_sets {
        if cancelled.remove(&id) {
            continue;
        }
        *timer_seq += 1;
        timers.push(Reverse(TimerEntry {
            deadline: now + delay,
            seq: *timer_seq,
            id,
            tag,
        }));
    }
    for (dst, payload) in parts.sends {
        // Best effort: the protocol layers handle loss via NACKs and
        // suspicion.
        let _ = transport.send(dst, payload);
    }
    parts.next_timer
}

fn drain_outputs(nso: &mut Nso, outputs: &Sender<NsoOutput>) {
    for o in nso.take_outputs() {
        // Never block the event loop on a slow consumer: shed instead
        // (counted in the queue's stats).
        let _ = outputs.try_send(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use newtop::nso::BindOptions;
    use newtop_gcs::group::{GroupConfig, GroupId};
    use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
    use newtop_net::channel::ChannelNetwork;

    fn spawn_cluster(n: usize, opts: &RuntimeOptions) -> Vec<NodeHandle> {
        let net = ChannelNetwork::new();
        (0..n)
            .map(|i| {
                let id = NodeId::from_index(i as u32);
                let (transport, rx) = net.endpoint(id);
                NodeRuntime::spawn(transport, rx, opts.clone())
            })
            .collect()
    }

    #[test]
    fn with_nso_runs_in_the_loop() {
        let nodes = spawn_cluster(1, &RuntimeOptions::new());
        let id = nodes[0].with_nso(|nso, _, _| nso.node());
        assert_eq!(id, NodeId::from_index(0));
    }

    #[test]
    fn request_reply_over_threads() {
        let nodes = spawn_cluster(3, &RuntimeOptions::new());
        let servers: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
        let group = GroupId::new("svc");

        for handle in &nodes[..2] {
            let group = group.clone();
            let members = servers.clone();
            handle.with_nso(move |nso, now, out| {
                nso.create_server_group(
                    group.clone(),
                    members,
                    Replication::Active,
                    OpenOptimisation::None,
                    GroupConfig::request_reply(),
                    now,
                    out,
                )
                .unwrap();
                let me = nso.node().index();
                nso.register_group_servant(
                    group,
                    Box::new(move |op: &str, _: &[u8]| Bytes::from(format!("{op}@{me}"))),
                );
            });
        }

        let client = &nodes[2];
        let g = group.clone();
        let svrs = servers.clone();
        client.with_nso(move |nso, now, out| {
            nso.bind(g, BindOptions::closed(svrs), now, out).unwrap();
        });
        let ready = client
            .wait_for_output(Duration::from_secs(10), |o| {
                matches!(o, NsoOutput::BindingReady { .. })
            })
            .expect("binding established");
        let NsoOutput::BindingReady { group: binding } = ready else {
            unreachable!()
        };
        let b = binding.clone();
        client.with_nso(move |nso, now, out| {
            let b = nso.handle_for(&b).unwrap();
            b.invoke(nso, "ping", Bytes::new(), ReplyMode::All, now, out)
                .unwrap();
        });
        let done = client
            .wait_for_output(Duration::from_secs(10), |o| {
                matches!(o, NsoOutput::InvocationComplete { .. })
            })
            .expect("invocation completed");
        let NsoOutput::InvocationComplete { replies, .. } = done else {
            unreachable!()
        };
        assert_eq!(replies.len(), 2);
        for h in nodes {
            h.shutdown();
        }
    }
}
