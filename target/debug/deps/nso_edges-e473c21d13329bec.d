/root/repo/target/debug/deps/nso_edges-e473c21d13329bec.d: crates/core/tests/nso_edges.rs

/root/repo/target/debug/deps/nso_edges-e473c21d13329bec: crates/core/tests/nso_edges.rs

crates/core/tests/nso_edges.rs:
