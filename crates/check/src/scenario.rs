//! The campaign's scripted GCS scenario.
//!
//! Five nodes host two overlapping groups — `ga` = {n0..n3} and
//! `gb` = {n2..n4}, so n2/n3 are multi-group members whose deliveries
//! must stay causally consistent across groups (§4 of the paper). Every
//! member multicasts several rounds of uniquely-tagged payloads (a mix
//! of totally-ordered and causal sends) while a [`FaultPlan`] perturbs
//! the run; afterwards the per-node logs are handed to the
//! [`InvariantChecker`].
//!
//! The schedule is fully determined by `(seed, ordering, open, plan)`:
//! re-running with the same tuple replays the run byte for byte, which
//! is what the campaign prints on failure.

use std::time::Duration;

use bytes::Bytes;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId, OrderProtocol};
use newtop_gcs::testkit::GcsHarness;
use newtop_net::faults::FaultPlan;
use newtop_net::sim::SimConfig;
use newtop_net::site::Site;
use newtop_net::time::SimTime;

use crate::{CheckReport, InvariantChecker, LogEvent, NodeLog, SentRecord};

/// Number of simulated nodes in the scenario.
pub const NODES: usize = 5;

/// One cell of the campaign matrix: a seeded, fault-injected run of the
/// overlapping-group workload under one ordering protocol and one
/// binding style.
#[derive(Clone, Debug)]
pub struct GcsScenario {
    /// Simulator seed; also perturbs the send schedule.
    pub seed: u64,
    /// Total-order protocol for both groups.
    pub ordering: OrderProtocol,
    /// Open-group flavour: membership churns mid-run (n4 joins `ga`
    /// through a contact member and multicasts into it). Closed keeps
    /// the memberships static.
    pub open: bool,
    /// The fault schedule applied to the run.
    pub plan: FaultPlan,
    /// Steady-state packet loss probability (on top of plan bursts).
    pub base_drop: f64,
    /// Multicast rounds per member (6 rounds span the fault windows).
    pub rounds: u64,
    /// Parallel shard engines per node (1 = the pre-sharding baseline).
    /// `ga` and `gb` overlap on n2/n3, so the placement rule pins both
    /// groups to one shard regardless of this count — which is exactly
    /// what the shard-determinism check relies on.
    pub shards: usize,
}

impl GcsScenario {
    /// A scenario with the default workload shape.
    #[must_use]
    pub fn new(seed: u64, ordering: OrderProtocol, open: bool, plan: FaultPlan) -> Self {
        GcsScenario {
            seed,
            ordering,
            open,
            plan,
            base_drop: 0.0,
            rounds: 6,
            shards: 1,
        }
    }

    /// Sets the per-node shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets steady-state packet loss (the proptest satellite runs with
    /// `drop_probability > 0` throughout).
    #[must_use]
    pub fn with_drop(mut self, probability: f64) -> Self {
        self.base_drop = probability;
        self
    }

    /// Overrides the number of multicast rounds.
    #[must_use]
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// One-line repro context for assertion messages and the campaign's
    /// failure report.
    #[must_use]
    pub fn repro(&self) -> String {
        format!(
            "seed={} ordering={:?} binding={} shards={} plan \"{}\"",
            self.seed,
            self.ordering,
            if self.open { "open" } else { "closed" },
            self.shards,
            self.plan,
        )
    }

    /// Runs the scenario to completion and extracts the evidence.
    #[must_use]
    pub fn run(&self) -> ScenarioRun {
        let mut cfg = SimConfig::lan(self.seed);
        cfg.drop_probability = self.base_drop;
        let mut h = GcsHarness::new(cfg).with_shards(self.shards);
        let roster = h.add_nodes(Site::Lan, NODES);
        let ga = GroupId::new("ga");
        let gb = GroupId::new("gb");
        let config = GroupConfig::peer()
            .with_ordering(self.ordering)
            .with_time_silence(Duration::from_millis(20));
        h.create_group(SimTime::from_millis(1), &ga, &config, &roster[0..4]);
        h.create_group(SimTime::from_millis(1), &gb, &config, &roster[2..5]);
        self.plan.apply(&mut h.sim, &roster);

        // The send schedule: `rounds` rounds, each member of each group
        // multicasting once per round, interleaved across groups and
        // senders with seeded jitter so different seeds exercise
        // different orderings. Every third send asks only for causal
        // delivery. Payloads are globally unique (group/sender/round).
        let mut jitter = StdRng::seed_from_u64(self.seed ^ 0x5ce0_a11a);
        let mut sent: Vec<SentRecord> = Vec::new();
        let memberships: [(&GroupId, &[newtop_net::site::NodeId]); 2] =
            [(&ga, &roster[0..4]), (&gb, &roster[2..5])];
        let mut counter = 0u64;
        for round in 0..self.rounds {
            let base = 25 + round * 280;
            for (gi, (group, members)) in memberships.iter().enumerate() {
                for (k, &node) in members.iter().enumerate() {
                    let at = SimTime::from_millis(
                        base + (k as u64) * 9 + (gi as u64) * 4 + jitter.gen_range(0u64..18),
                    );
                    let order = if counter % 3 == 2 {
                        DeliveryOrder::Causal
                    } else {
                        DeliveryOrder::Total
                    };
                    counter += 1;
                    let payload = format!("{group}/{node}/r{round}");
                    h.multicast(at, node, group, order, payload.clone());
                    sent.push(SentRecord {
                        group: (*group).clone(),
                        sender: node,
                        payload: Bytes::from(payload),
                        scheduled_at: at,
                        order,
                    });
                }
            }
        }

        if self.open {
            // Open-group churn: n4 joins `ga` through n2 (a member of
            // both groups) and then multicasts into it. If the contact
            // is dead under this plan the join simply never completes —
            // the invariants are checked on whatever did happen.
            h.join(
                SimTime::from_millis(900),
                roster[4],
                &ga,
                &config,
                roster[2],
            );
            for (i, at) in [1100u64, 1250, 1400].into_iter().enumerate() {
                let payload = format!("{ga}/{}/j{i}", roster[4]);
                let at = SimTime::from_millis(at + jitter.gen_range(0u64..18));
                h.multicast(at, roster[4], &ga, DeliveryOrder::Total, payload.clone());
                sent.push(SentRecord {
                    group: ga.clone(),
                    sender: roster[4],
                    payload: Bytes::from(payload),
                    scheduled_at: at,
                    order: DeliveryOrder::Total,
                });
            }
        }

        // Saturation bursts: inside every `saturate` window of the plan
        // the `ga` members fire a dense extra salvo on top of the normal
        // rounds, overrunning the credit window while CPU costs are
        // inflated. Sends the flow controller sheds are still recorded
        // here — the invariants never require sent ⇒ delivered, so the
        // checker verifies that whatever *was* admitted stayed safe.
        for (wi, (from, until, _factor)) in self.plan.saturate_windows().iter().enumerate() {
            let start = from.as_millis() as u64;
            let span = until.saturating_sub(*from).as_millis() as u64;
            let shots = 10u64;
            for (k, &node) in roster[0..4].iter().enumerate() {
                for s in 0..shots {
                    let at = SimTime::from_millis(
                        start
                            + s * span.max(1) / shots
                            + (k as u64) * 3
                            + jitter.gen_range(0u64..7),
                    );
                    let payload = format!("{ga}/{node}/s{wi}.{s}");
                    h.multicast(at, node, &ga, DeliveryOrder::Total, payload.clone());
                    sent.push(SentRecord {
                        group: ga.clone(),
                        sender: node,
                        payload: Bytes::from(payload),
                        scheduled_at: at,
                        order: DeliveryOrder::Total,
                    });
                }
            }
        }

        // Past the last fault (quiesce_at ≤ 1.5 s) plus suspicion
        // (280 ms) and view-change margin, everything still deliverable
        // has been delivered.
        let deadline = SimTime::ZERO + self.plan.quiesce_at() + Duration::from_millis(2500);
        h.run_until(deadline.max(SimTime::from_millis(4000)));

        let logs = roster
            .iter()
            .map(|&id| NodeLog::from_outputs(id, h.sim.is_alive(id), &h.node(id).outputs))
            .collect();
        // The checker reads per-sender send order from this vec's order;
        // the saturation salvo was appended out of chronological order,
        // so restore it (stable: equal times keep schedule order, which
        // is how the simulator breaks ties too).
        sent.sort_by_key(|s| s.scheduled_at);
        ScenarioRun {
            repro: self.repro(),
            logs,
            sent,
        }
    }
}

/// The evidence extracted from one scenario run.
pub struct ScenarioRun {
    /// Repro line ([`GcsScenario::repro`]) for failure reports.
    pub repro: String,
    /// Per-node delivery logs and view histories.
    pub logs: Vec<NodeLog>,
    /// The ground-truth send schedule.
    pub sent: Vec<SentRecord>,
}

impl ScenarioRun {
    /// Checks all five invariants against the run's evidence.
    #[must_use]
    pub fn check(&self) -> CheckReport {
        InvariantChecker::new(self.logs.clone(), self.sent.clone()).check()
    }
}

/// Compares two runs' per-group delivery logs and describes the first
/// divergence, or returns `None` when every node delivered the same
/// messages in the same order to every group.
///
/// This is the shard-determinism oracle: a scenario replayed with a
/// different shard count must produce byte-identical delivery sequences
/// (sender, guarantee, Lamport stamp, payload — virtual timestamps and
/// view installations are not compared, only what the application
/// observed as the delivery order).
#[must_use]
pub fn delivery_divergence(a: &ScenarioRun, b: &ScenarioRun) -> Option<String> {
    type Delivery = (newtop_net::site::NodeId, DeliveryOrder, u64, bytes::Bytes);
    fn deliveries(log: &NodeLog) -> std::collections::BTreeMap<GroupId, Vec<Delivery>> {
        let mut per_group = std::collections::BTreeMap::new();
        for g in &log.groups {
            let seq: Vec<Delivery> = g
                .events
                .iter()
                .filter_map(|ev| match ev {
                    LogEvent::Delivered {
                        sender,
                        order,
                        lamport,
                        payload,
                        ..
                    } => Some((*sender, *order, *lamport, payload.clone())),
                    LogEvent::View { .. } => None,
                })
                .collect();
            per_group.insert(g.group.clone(), seq);
        }
        per_group
    }

    if a.logs.len() != b.logs.len() {
        return Some(format!(
            "node counts differ ({} vs {})",
            a.logs.len(),
            b.logs.len()
        ));
    }
    for (la, lb) in a.logs.iter().zip(&b.logs) {
        if la.node != lb.node {
            return Some(format!("node rosters differ ({} vs {})", la.node, lb.node));
        }
        let (da, db) = (deliveries(la), deliveries(lb));
        let groups: std::collections::BTreeSet<&GroupId> = da.keys().chain(db.keys()).collect();
        for group in groups {
            let empty = Vec::new();
            let (sa, sb) = (
                da.get(group).unwrap_or(&empty),
                db.get(group).unwrap_or(&empty),
            );
            if sa.len() != sb.len() {
                return Some(format!(
                    "node {} group {group}: {} vs {} deliveries",
                    la.node,
                    sa.len(),
                    sb.len()
                ));
            }
            for (i, (x, y)) in sa.iter().zip(sb).enumerate() {
                if x != y {
                    return Some(format!(
                        "node {} group {group} delivery #{i}: {:?} vs {:?}",
                        la.node, x, y
                    ));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean(scenario: GcsScenario) {
        let repro = scenario.repro();
        let run = scenario.run();
        let report = run.check();
        assert!(report.passed(), "{repro}: {:?}", report.violations);
        // The run must have produced real material for the checker.
        let delivered: usize = run
            .logs
            .iter()
            .flat_map(|l| &l.groups)
            .map(|g| g.events.len())
            .sum();
        assert!(
            delivered > 20,
            "{repro}: scenario barely delivered anything"
        );
    }

    #[test]
    fn calm_symmetric_closed_run_passes() {
        assert_clean(GcsScenario::new(
            7,
            OrderProtocol::Symmetric,
            false,
            FaultPlan::calm(),
        ));
    }

    #[test]
    fn calm_asymmetric_open_run_passes() {
        assert_clean(GcsScenario::new(
            7,
            OrderProtocol::Asymmetric,
            true,
            FaultPlan::calm(),
        ));
    }

    #[test]
    fn sequencer_kill_run_passes() {
        assert_clean(GcsScenario::new(
            11,
            OrderProtocol::Asymmetric,
            false,
            FaultPlan::named("seq-kill").kill_sequencer(Duration::from_millis(150)),
        ));
    }

    #[test]
    fn saturate_run_sheds_safely_under_both_orderings() {
        for ordering in [OrderProtocol::Symmetric, OrderProtocol::Asymmetric] {
            let scenario = GcsScenario::new(
                5,
                ordering,
                false,
                FaultPlan::named("saturate").saturate(
                    Duration::from_millis(100),
                    Duration::from_millis(700),
                    3.0,
                ),
            );
            let repro = scenario.repro();
            let run = scenario.run();
            assert!(
                run.sent.len() > 6 * 7,
                "{repro}: saturation salvo missing from the schedule"
            );
            let report = run.check();
            assert!(report.passed(), "{repro}: {:?}", report.violations);
        }
    }

    #[test]
    fn reorder_window_run_passes_under_both_orderings() {
        // The PR8 wire-model extension: a reordering window permutes
        // frame arrival order without losing or duplicating anything,
        // so the causal/total-order invariants must be untouched.
        for ordering in [OrderProtocol::Symmetric, OrderProtocol::Asymmetric] {
            assert_clean(GcsScenario::new(
                19,
                ordering,
                false,
                FaultPlan::named("reorder").reorder(
                    Duration::from_millis(80),
                    Duration::from_millis(600),
                    Duration::from_millis(5),
                ),
            ));
        }
    }

    #[test]
    fn bandwidth_cap_run_passes_under_both_orderings() {
        // A per-link bandwidth cap delays frames (FIFO per link) but
        // never drops them; the protocols must ride it out, including
        // across the open-group join.
        for ordering in [OrderProtocol::Symmetric, OrderProtocol::Asymmetric] {
            assert_clean(GcsScenario::new(
                23,
                ordering,
                true,
                FaultPlan::named("bandwidth").throttle(
                    Duration::from_millis(100),
                    Duration::from_millis(700),
                    200_000,
                ),
            ));
        }
    }

    #[test]
    fn sharded_runs_match_single_shard_runs() {
        for ordering in [OrderProtocol::Symmetric, OrderProtocol::Asymmetric] {
            let make = |shards: usize| {
                GcsScenario::new(
                    17,
                    ordering,
                    true,
                    FaultPlan::named("drop").drop_burst(
                        Duration::from_millis(100),
                        Duration::from_millis(500),
                        0.25,
                    ),
                )
                .with_shards(shards)
            };
            let (single, sharded) = (make(1).run(), make(4).run());
            let report = sharded.check();
            assert!(
                report.passed(),
                "{}: {:?}",
                sharded.repro,
                report.violations
            );
            assert!(
                delivery_divergence(&single, &sharded).is_none(),
                "{:?}: shards=1 vs shards=4 diverged: {}",
                ordering,
                delivery_divergence(&single, &sharded).unwrap(),
            );
            // The oracle must be non-vacuous: the run delivered material.
            let delivered: usize = sharded
                .logs
                .iter()
                .flat_map(|l| &l.groups)
                .map(|g| g.events.len())
                .sum();
            assert!(delivered > 20, "sharded run barely delivered anything");
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let make = || {
            GcsScenario::new(
                13,
                OrderProtocol::Symmetric,
                true,
                FaultPlan::named("drop").drop_burst(
                    Duration::from_millis(100),
                    Duration::from_millis(500),
                    0.25,
                ),
            )
        };
        let (a, b) = (make().run(), make().run());
        assert_eq!(a.sent.len(), b.sent.len());
        for (x, y) in a.logs.iter().zip(&b.logs) {
            assert_eq!(x.alive, y.alive);
            assert_eq!(x.groups.len(), y.groups.len());
            for (gx, gy) in x.groups.iter().zip(&y.groups) {
                assert_eq!(gx.events.len(), gy.events.len(), "node {} diverged", x.node);
            }
        }
    }
}
