//! `cargo run -p newtop-analyze` — the workspace protocol-invariant
//! linter.
//!
//! Exit codes: 0 clean (or allowlisted/baselined), 1 surviving findings,
//! baseline drift, or failed self-test, 2 usage/configuration error
//! (bad allowlist, missing workspace, unwritable report).

use newtop_analyze::{allow, analyze_workspace_cached, report, selftest};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
newtop-analyze — NewTop protocol-invariant static analysis

USAGE:
    cargo run -p newtop-analyze [--] [OPTIONS]

OPTIONS:
    --self-test          inject known-bad snippets per rule and assert
                         each is caught (and each good twin is clean)
    --root <DIR>         workspace root (default: .)
    --allowlist <FILE>   allowlist path (default: <root>/analyze.allow)
    --show-allowed       also print the findings the allowlist suppressed
    --json <FILE>        write the surviving findings as a JSON report
                         (`-` for stdout)
    --baseline <FILE>    diff surviving findings against a committed
                         baseline report: new findings fail, stale
                         baseline entries fail (regenerate with
                         --write-baseline)
    --write-baseline <FILE>
                         write the current surviving findings as the new
                         baseline and exit clean
    --no-cache           disable the per-file token cache under
                         target/analyze-cache/
    -h, --help           this text
";

fn main() -> ExitCode {
    let mut self_test = false;
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut show_allowed = false;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut use_cache = true;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--self-test" => self_test = true,
            "--show-allowed" => show_allowed = true,
            "--no-cache" => use_cache = false,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage_error("--write-baseline needs a value"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if self_test {
        return match selftest::run() {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprintln!("{report}");
                eprintln!("newtop-analyze: SELF-TEST FAILED — a rule regressed");
                ExitCode::FAILURE
            }
        };
    }

    let allow_path = allowlist.unwrap_or_else(|| root.join("analyze.allow"));
    let entries = if allow_path.exists() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("reading {}: {e}", allow_path.display())),
        };
        match allow::parse(&text) {
            Ok(e) => e,
            Err(e) => return usage_error(&e),
        }
    } else {
        Vec::new()
    };

    let analysis = match analyze_workspace_cached(&root, use_cache) {
        Ok(a) => a,
        Err(e) => return usage_error(&format!("analyzing workspace: {e}")),
    };
    let total = analysis.findings.len();

    let (suppressed, surviving) = match allow::apply(analysis.findings, &entries) {
        Ok(split) => split,
        Err(stale) => return usage_error(&stale),
    };

    let json = report::to_json(&surviving, &analysis.warnings);
    if let Some(path) = &write_baseline {
        if let Err(e) = std::fs::write(path, &json) {
            return usage_error(&format!("writing baseline {}: {e}", path.display()));
        }
        println!(
            "newtop-analyze: baseline {} written ({} finding(s))",
            path.display(),
            surviving.len()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &json_out {
        if path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            return usage_error(&format!("writing report {}: {e}", path.display()));
        }
    }

    if show_allowed {
        for f in &suppressed {
            println!(
                "allowed  [{}] {}:{} in {}: {}",
                f.rule, f.file, f.line, f.func, f.message
            );
        }
    }
    for w in &analysis.warnings {
        println!("warning: {w}");
    }

    // Baseline mode: the diff is the verdict, not the raw finding count.
    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("reading baseline {}: {e}", path.display())),
        };
        let base_ids = report::baseline_ids(&text);
        let cur_ids = report::finding_ids(&surviving);
        let (new, fixed) = report::diff(&cur_ids, &base_ids);
        for (f, id) in surviving.iter().zip(&cur_ids) {
            if new.contains(id) {
                println!(
                    "NEW FINDING [{}] {}:{} in {}: {}\n  id: {id}",
                    f.rule, f.file, f.line, f.func, f.message
                );
            }
        }
        for id in &fixed {
            println!("STALE BASELINE: `{id}` is no longer produced — a finding was fixed; regenerate with --write-baseline");
        }
        println!(
            "newtop-analyze: {total} finding(s), {} allowlisted ({} entries), {} baselined, {} new, {} stale (cache: {} hit / {} miss)",
            suppressed.len(),
            entries.len(),
            base_ids.len(),
            new.len(),
            fixed.len(),
            analysis.cache_hits,
            analysis.cache_misses,
        );
        return if new.is_empty() && fixed.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for f in &surviving {
        println!(
            "VIOLATION [{}] {}:{} in {}: {}",
            f.rule, f.file, f.line, f.func, f.message
        );
    }
    println!(
        "newtop-analyze: {total} finding(s), {} allowlisted ({} entries), {} surviving (cache: {} hit / {} miss)",
        suppressed.len(),
        entries.len(),
        surviving.len(),
        analysis.cache_hits,
        analysis.cache_misses,
    );
    if surviving.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("newtop-analyze: {msg}");
    ExitCode::from(2)
}
