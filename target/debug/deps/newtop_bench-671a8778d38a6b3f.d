/root/repo/target/debug/deps/newtop_bench-671a8778d38a6b3f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_bench-671a8778d38a6b3f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
