//! Ablations of the design choices DESIGN.md calls out:
//!
//! * ordering protocol × binding style (§5.1.3's omitted figures);
//! * the §4.2 open-group optimisations in isolation;
//! * the time-silence period's effect on symmetric delivery latency.

use newtop_bench::bench_seed;
use newtop_net::stats::TextTable;
use newtop_workloads::figures::{
    ablation_open_optimisations, ablation_ordering_x_style, ablation_time_silence,
};
use newtop_workloads::scenario::Placement;

fn main() {
    let seed = bench_seed();

    for (placement, label) in [
        (Placement::AllLan, "LAN"),
        (Placement::ServersLanClientsWan, "clients distant"),
    ] {
        let rows = ablation_ordering_x_style(placement, 6, seed);
        let mut table = TextTable::new(
            format!("Ordering x binding style ({label}, 6 clients, wait-for-all)"),
            &["configuration", "mean ms", "req/s"],
        );
        for (name, ms, rps) in rows {
            table.row(vec![name, format!("{ms:.1}"), format!("{rps:.0}")]);
        }
        println!("{table}");
    }
    println!(
        "paper claim (§5.1.3): closed groups under symmetric ordering perform \
         poorly (ordering traffic among all members); under the open approach \
         there is little to choose between the two.\n"
    );

    let rows = ablation_open_optimisations(Placement::ServersLanClientsWan, 6, seed);
    let mut table = TextTable::new(
        "Open-group optimisations (clients distant, 6 clients, wait-for-first)",
        &["configuration", "mean ms", "req/s"],
    );
    for (name, ms, rps) in rows {
        table.row(vec![name, format!("{ms:.1}"), format!("{rps:.0}")]);
    }
    println!("{table}");

    let series = ablation_time_silence(&[5, 10, 25, 50, 100], seed);
    let table = TextTable::from_series(
        "Time-silence period vs symmetric peer delivery latency (LAN, 3 members)",
        "period (ms)",
        &[series],
    );
    println!("{table}");
    println!(
        "longer time-silence periods slow symmetric delivery when traffic is \
         sparse — why event-driven groups suit request-reply and short \
         periods suit lively peers."
    );
}
