//! The pure delivery engine: one group, one view, no runtime.
//!
//! A [`DeliveryEngine`] turns a stream of received [`DataMsg`]s (plus
//! null-message heartbeats and, for the asymmetric protocol, sequencer
//! ordering records) into a delivery sequence satisfying:
//!
//! * **per-sender FIFO** — a sender's messages are delivered in sequence
//!   order, with gaps detected for NACK-based retransmission;
//! * **causal order** — a message is delivered only after the per-sender
//!   prefixes its sender had delivered when multicasting it
//!   ([`DataMsg::deps`]);
//! * **total order** (for messages sent with
//!   [`DeliveryOrder::Total`]) — by Lamport timestamp (ties broken by
//!   member id) under the **symmetric** protocol, or by sequencer-assigned
//!   global positions under the **asymmetric** protocol. Both are
//!   causality-preserving.
//!
//! The engine also tracks stability from piggybacked acknowledgement
//! vectors (for garbage collection and the view-change flush) and
//! implements the flush itself: [`DeliveryEngine::flush_remaining`]
//! deterministically delivers everything left so all view-change survivors
//! end on the same message set (virtual synchrony).
//!
//! The symmetric protocol's delivery condition uses *effective* heard
//! timestamps: a peer's timestamp only advances once the local member
//! holds that peer's data contiguously up to the sequence the timestamp
//! was attached to. Without this, a null message racing ahead of a lost
//! data message could commit a total-order position too early.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::group::{DeliveryOrder, OrderProtocol};
use crate::member::GcsError;
use crate::messages::{ContigVector, DataMsg};
use crate::view::{canonical_members, ViewId};
use newtop_net::site::NodeId;

/// Outcome of offering a data message to the engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Ingest {
    /// New message, buffered.
    Accepted,
    /// Already seen (or already delivered); dropped.
    Duplicate,
}

#[derive(Debug, Default)]
struct SenderTrack {
    /// Received messages by sequence, retained until delivered *and*
    /// stable (they may be needed for retransmission or the flush).
    /// Refcounted: delivery, retransmission, and view-change unions hand
    /// out `Arc` clones instead of copying payloads.
    buffer: BTreeMap<u64, Arc<DataMsg>>,
    /// Highest contiguously received sequence.
    contig: u64,
    /// Highest delivered sequence (always ≤ `contig`).
    delivered: u64,
    /// Highest sequence known to exist (from gaps or null `last_seq`).
    max_seen: u64,
    /// Lamport timestamp of the message at `contig` (0 if none).
    contig_ts: u64,
    /// Latest null heartbeat: (timestamp, sender's last data seq).
    null_heard: Option<(u64, u64)>,
}

impl SenderTrack {
    /// The timestamp this sender is known to have passed, *restricted to
    /// what we hold contiguously* — see the module docs.
    fn effective_heard(&self) -> u64 {
        let mut ts = self.contig_ts;
        if let Some((null_ts, last_seq)) = self.null_heard {
            if last_seq <= self.contig {
                ts = ts.max(null_ts);
            }
        }
        ts
    }
}

#[derive(Debug, Default)]
struct SequencerState {
    /// Per sender: all messages with seq ≤ this have been examined
    /// (total ones assigned positions, causal ones skipped).
    processed: BTreeMap<NodeId, u64>,
    /// Next global position to assign (1-based).
    next_pos: u64,
}

/// The per-group, per-view delivery engine. See the [module docs](self).
#[derive(Debug)]
pub struct DeliveryEngine {
    me: NodeId,
    view: ViewId,
    members: Vec<NodeId>,
    protocol: OrderProtocol,
    senders: BTreeMap<NodeId, SenderTrack>,
    /// Symmetric protocol: undelivered total-order messages keyed by
    /// (lamport, sender, seq).
    total_queue: BTreeSet<(u64, NodeId, u64)>,
    /// Asymmetric protocol: the global order log (position 1 at index 0).
    order_log: Vec<(NodeId, u64)>,
    /// Out-of-order ordering records awaiting earlier positions.
    pending_order: BTreeMap<u64, (NodeId, u64)>,
    /// Next global position to deliver (1-based).
    next_deliver_pos: u64,
    /// Sequencer-side state (used only while `me` is the sequencer).
    seq_state: SequencerState,
    /// acked[by][sender] = contiguous prefix `by` has acknowledged.
    acked: BTreeMap<NodeId, BTreeMap<NodeId, u64>>,
}

/// Everything needed to build a [`DeliveryEngine`] for one view of a
/// group. Replaces the old positional `DeliveryEngine::new`, which
/// panicked when `me` was missing from the member list; [`Self::build`]
/// surfaces that as [`GcsError::BadMembership`] instead.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The local member the engine delivers for.
    pub me: NodeId,
    /// The view this engine serves.
    pub view: ViewId,
    /// View membership; canonicalised (sorted, deduplicated) by `build`.
    pub members: Vec<NodeId>,
    /// Total-order protocol the view runs.
    pub protocol: OrderProtocol,
}

impl EngineConfig {
    /// Builds the engine, canonicalising `members` with the same helper
    /// the [`View`](crate::view::View) constructor uses.
    ///
    /// # Errors
    ///
    /// [`GcsError::BadMembership`] if `me` is not in `members`.
    pub fn build(self) -> Result<DeliveryEngine, GcsError> {
        let members = canonical_members(self.members);
        if members.binary_search(&self.me).is_err() {
            return Err(GcsError::BadMembership);
        }
        let senders = members
            .iter()
            .map(|&m| (m, SenderTrack::default()))
            .collect();
        Ok(DeliveryEngine {
            me: self.me,
            view: self.view,
            members,
            protocol: self.protocol,
            senders,
            total_queue: BTreeSet::new(),
            order_log: Vec::new(),
            pending_order: BTreeMap::new(),
            next_deliver_pos: 1,
            seq_state: SequencerState {
                processed: BTreeMap::new(),
                next_pos: 1,
            },
            acked: BTreeMap::new(),
        })
    }
}

impl DeliveryEngine {
    /// The view this engine serves.
    #[must_use]
    pub fn view_id(&self) -> ViewId {
        self.view
    }

    /// The sorted view membership.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether the owning member is this view's sequencer (asymmetric
    /// protocol: the lowest-id member).
    #[must_use]
    pub fn is_sequencer(&self) -> bool {
        self.members.first() == Some(&self.me)
    }

    /// The ordering protocol in force.
    #[must_use]
    pub fn protocol(&self) -> OrderProtocol {
        self.protocol
    }

    /// Offers a received data message (including the member's own, which
    /// arrive via self-loopback). Accepts an owned message or an already
    /// shared `Arc<DataMsg>`; the engine buffers the shared form.
    pub fn ingest_data(&mut self, msg: impl Into<Arc<DataMsg>>) -> Ingest {
        let msg: Arc<DataMsg> = msg.into();
        debug_assert_eq!(msg.view, self.view, "caller must filter stale views");
        let Some(track) = self.senders.get_mut(&msg.sender) else {
            return Ingest::Duplicate; // not a member of this view
        };
        if msg.seq <= track.contig || track.buffer.contains_key(&msg.seq) {
            return Ingest::Duplicate;
        }
        track.max_seen = track.max_seen.max(msg.seq);
        let key = (msg.lamport, msg.sender, msg.seq);
        let is_total = msg.order == DeliveryOrder::Total;
        track.buffer.insert(msg.seq, msg);
        // Advance the contiguous prefix.
        while let Some(next) = track.buffer.get(&(track.contig + 1)) {
            track.contig += 1;
            track.contig_ts = track.contig_ts.max(next.lamport);
        }
        if is_total && self.protocol == OrderProtocol::Symmetric {
            self.total_queue.insert(key);
        }
        Ingest::Accepted
    }

    /// Notes a null heartbeat from `sender`.
    pub fn note_null(&mut self, sender: NodeId, lamport: u64, last_seq: u64) {
        if let Some(track) = self.senders.get_mut(&sender) {
            track.max_seen = track.max_seen.max(last_seq);
            let better = match track.null_heard {
                Some((ts, _)) => lamport > ts,
                None => true,
            };
            if better {
                track.null_heard = Some((lamport, last_seq));
            }
        }
    }

    /// Folds in an acknowledgement vector piggybacked by `by`.
    pub fn apply_acks(&mut self, by: NodeId, acks: &ContigVector) {
        if !self.members.contains(&by) {
            return;
        }
        let entry = self.acked.entry(by).or_default();
        for &(sender, seq) in acks {
            let cur = entry.entry(sender).or_insert(0);
            *cur = (*cur).max(seq);
        }
    }

    /// The member's own contiguously-received vector (what it would
    /// piggyback as acks).
    #[must_use]
    pub fn contig_vector(&self) -> ContigVector {
        self.senders
            .iter()
            .filter(|(_, t)| t.contig > 0)
            .map(|(&s, t)| (s, t.contig))
            .collect()
    }

    /// The member's delivered vector (stamped as `deps` on outgoing
    /// multicasts).
    #[must_use]
    pub fn delivered_vector(&self) -> ContigVector {
        self.senders
            .iter()
            .filter(|(_, t)| t.delivered > 0)
            .map(|(&s, t)| (s, t.delivered))
            .collect()
    }

    /// Messages this member holds with sequences beyond `contig` — the
    /// state-response payload during view agreement.
    #[must_use]
    pub fn export_msgs_beyond(&self, contig: &ContigVector) -> Vec<Arc<DataMsg>> {
        let floor = |sender: NodeId| {
            contig
                .iter()
                .find(|&&(s, _)| s == sender)
                .map_or(0, |&(_, seq)| seq)
        };
        let mut out = Vec::new();
        for (&sender, track) in &self.senders {
            let fl = floor(sender);
            for (&seq, msg) in &track.buffer {
                if seq > fl {
                    out.push(Arc::clone(msg));
                }
            }
        }
        out
    }

    /// Per-sender gaps needing retransmission: `(sender, from, to)`
    /// inclusive ranges.
    #[must_use]
    pub fn missing_ranges(&self) -> Vec<(NodeId, u64, u64)> {
        let mut out = Vec::new();
        for (&sender, track) in &self.senders {
            if track.max_seen <= track.contig {
                continue;
            }
            let mut gap_start = None;
            for seq in (track.contig + 1)..=track.max_seen {
                let have = track.buffer.contains_key(&seq);
                match (have, gap_start) {
                    (false, None) => gap_start = Some(seq),
                    (true, Some(start)) => {
                        out.push((sender, start, seq - 1));
                        gap_start = None;
                    }
                    _ => {}
                }
            }
            if let Some(start) = gap_start {
                out.push((sender, start, track.max_seen));
            }
        }
        out
    }

    /// A buffered message, if still held (serves NACKs). Returned by
    /// shared reference so retransmissions can `Arc::clone` it without
    /// copying the payload.
    #[must_use]
    pub fn get_buffered(&self, sender: NodeId, seq: u64) -> Option<&Arc<DataMsg>> {
        self.senders.get(&sender)?.buffer.get(&seq)
    }

    /// First missing global order position (asymmetric protocol; triggers
    /// an order NACK at the sequencer).
    ///
    /// Two cases: a later record is buffered past a hole, or — the *tail
    /// loss* case — every known record has been consumed yet a
    /// contiguously-received total-order message is still undelivered,
    /// meaning its ordering record never arrived.
    #[must_use]
    pub fn order_gap(&self) -> Option<u64> {
        if self.protocol != OrderProtocol::Asymmetric {
            return None;
        }
        if !self.pending_order.is_empty() {
            return Some(self.order_log.len() as u64 + 1);
        }
        let consumed_all = self.next_deliver_pos > self.order_log.len() as u64;
        if consumed_all {
            let unordered_total = self.senders.values().any(|t| {
                t.buffer.iter().any(|(&seq, m)| {
                    seq <= t.contig && seq > t.delivered && m.order == DeliveryOrder::Total
                })
            });
            if unordered_total {
                return Some(self.order_log.len() as u64 + 1);
            }
        }
        None
    }

    /// Ingests sequencer ordering records starting at global position
    /// `start`.
    pub fn ingest_order(&mut self, start: u64, entries: &[(NodeId, u64)]) {
        // An ordering record proves the data message exists: make the gap
        // detector chase it (under redirection, data for other senders
        // flows through the sequencer and may be lost independently).
        for &(sender, seq) in entries {
            if let Some(track) = self.senders.get_mut(&sender) {
                track.max_seen = track.max_seen.max(seq);
            }
        }
        for (i, &e) in entries.iter().enumerate() {
            let pos = start + i as u64;
            let next = self.order_log.len() as u64 + 1;
            match pos.cmp(&next) {
                std::cmp::Ordering::Less => {} // duplicate
                std::cmp::Ordering::Equal => {
                    self.order_log.push(e);
                    // Drain any buffered successors.
                    loop {
                        let want = self.order_log.len() as u64 + 1;
                        match self.pending_order.remove(&want) {
                            Some(buffered) => self.order_log.push(buffered),
                            None => break,
                        }
                    }
                }
                std::cmp::Ordering::Greater => {
                    self.pending_order.insert(pos, e);
                }
            }
        }
    }

    /// Length of the global order log received/produced so far.
    #[must_use]
    pub fn order_log_len(&self) -> u64 {
        self.order_log.len() as u64
    }

    /// A slice of the order log from global position `from_pos`, for
    /// answering order NACKs. Returns `(start, entries)`.
    #[must_use]
    pub fn order_log_slice(&self, from_pos: u64, max: usize) -> (u64, Vec<(NodeId, u64)>) {
        let start = from_pos.max(1);
        let idx = (start - 1) as usize;
        if idx >= self.order_log.len() {
            return (start, Vec::new());
        }
        let end = (idx + max).min(self.order_log.len());
        let entries = self
            .order_log
            .get(idx..end)
            .map(<[_]>::to_vec)
            .unwrap_or_default();
        (start, entries)
    }

    /// Sequencer duty cycle: assign global positions to newly-orderable
    /// messages. The entries are appended to the local order log *and*
    /// returned so the caller can multicast them. Call only when
    /// [`Self::is_sequencer`] is true.
    pub fn sequencer_poll(&mut self) -> Vec<(NodeId, u64)> {
        debug_assert!(self.is_sequencer());
        let mut new_entries = Vec::new();
        loop {
            let mut progressed = false;
            // Index loop: iterating `self.members` by reference would pin
            // `self` borrowed across the mutations below.
            for i in 0..self.members.len() {
                let Some(&sender) = self.members.get(i) else {
                    break;
                };
                loop {
                    let processed = *self.seq_state.processed.get(&sender).unwrap_or(&0);
                    let next_seq = processed + 1;
                    let Some(track) = self.senders.get(&sender) else {
                        break;
                    };
                    if next_seq > track.contig {
                        break;
                    }
                    let msg = track.buffer.get(&next_seq);
                    let Some(msg) = msg else {
                        // Already garbage collected: can only happen once
                        // delivered, hence already processed; skip.
                        self.seq_state.processed.insert(sender, next_seq);
                        progressed = true;
                        continue;
                    };
                    if msg.order == DeliveryOrder::Total {
                        // Respect causality: all of the message's
                        // dependencies must have been examined first.
                        let deps_ok = msg
                            .deps
                            .satisfied_by(|q| *self.seq_state.processed.get(&q).unwrap_or(&0));
                        if !deps_ok {
                            break;
                        }
                        self.order_log.push((sender, next_seq));
                        new_entries.push((sender, next_seq));
                        self.seq_state.next_pos += 1;
                    }
                    self.seq_state.processed.insert(sender, next_seq);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        new_entries
    }

    /// True if any received message is still awaiting delivery.
    #[must_use]
    pub fn has_undelivered(&self) -> bool {
        self.senders
            .values()
            .any(|t| t.buffer.keys().any(|&s| s > t.delivered))
    }

    /// Delivers everything currently deliverable, in order. The returned
    /// messages are `Arc` clones of the buffered copies — no payload is
    /// duplicated.
    pub fn drain_deliverable(&mut self) -> Vec<Arc<DataMsg>> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            progressed |= self.deliver_causal(&mut out);
            progressed |= match self.protocol {
                OrderProtocol::Symmetric => self.deliver_symmetric(&mut out),
                OrderProtocol::Asymmetric => self.deliver_asymmetric(&mut out),
            };
            if !progressed {
                break;
            }
        }
        out
    }

    /// Delivers causal-order messages whose FIFO and dependency conditions
    /// hold.
    fn deliver_causal(&mut self, out: &mut Vec<Arc<DataMsg>>) -> bool {
        let mut progressed = false;
        loop {
            let mut round = false;
            for i in 0..self.members.len() {
                let Some(&sender) = self.members.get(i) else {
                    break;
                };
                while let Some(track) = self.senders.get(&sender) {
                    let next = track.delivered + 1;
                    if next > track.contig {
                        break;
                    }
                    let Some(msg) = track.buffer.get(&next) else {
                        break;
                    };
                    if msg.order != DeliveryOrder::Causal {
                        break;
                    }
                    if !self.deps_satisfied(&msg.deps) {
                        break;
                    }
                    let msg = Arc::clone(msg);
                    self.mark_delivered(sender, next);
                    out.push(msg);
                    round = true;
                }
            }
            if !round {
                break;
            }
            progressed = true;
        }
        progressed
    }

    fn deps_satisfied(&self, deps: &crate::clock::DepsVector) -> bool {
        deps.satisfied_by(|q| self.senders.get(&q).map_or(0, |t| t.delivered))
    }

    fn mark_delivered(&mut self, sender: NodeId, seq: u64) {
        let Some(track) = self.senders.get_mut(&sender) else {
            return;
        };
        debug_assert_eq!(track.delivered + 1, seq, "FIFO delivery");
        track.delivered = seq;
    }

    /// Symmetric total order: deliver from the head of the timestamp
    /// queue while the head is safe.
    fn deliver_symmetric(&mut self, out: &mut Vec<Arc<DataMsg>>) -> bool {
        let mut progressed = false;
        while let Some(&(ts, sender, seq)) = self.total_queue.iter().next() {
            let Some(track) = self.senders.get(&sender) else {
                break;
            };
            if seq > track.contig {
                // Head not contiguously received yet (should not happen:
                // queue entries are only inserted when buffered, but a
                // flush may have consumed them).
                break;
            }
            if track.delivered + 1 != seq {
                // An earlier (causal) message from this sender must be
                // delivered first; deliver_causal handles it.
                break;
            }
            let msg = match track.buffer.get(&seq) {
                Some(m) => Arc::clone(m),
                None => {
                    self.total_queue.remove(&(ts, sender, seq));
                    continue;
                }
            };
            if !self.deps_satisfied(&msg.deps) {
                break;
            }
            // Every *other* member must have reached this timestamp: a
            // member's events carry strictly increasing timestamps and
            // `effective_heard` only counts its contiguous prefix, so
            // once `heard >= ts` no message of that member ordered before
            // `(ts, sender)` can still be missing (an equal-timestamp one
            // is already buffered and the queue's `(ts, id)` key orders
            // it correctly).
            let safe = self.members.iter().all(|&q| {
                if q == sender || q == self.me {
                    return true;
                }
                self.senders
                    .get(&q)
                    .is_some_and(|t| t.effective_heard() >= ts)
            });
            if !safe {
                break;
            }
            self.total_queue.remove(&(ts, sender, seq));
            self.mark_delivered(sender, seq);
            out.push(msg);
            progressed = true;
        }
        progressed
    }

    /// Asymmetric total order: deliver along the sequencer's global log.
    fn deliver_asymmetric(&mut self, out: &mut Vec<Arc<DataMsg>>) -> bool {
        let mut progressed = false;
        loop {
            let idx = (self.next_deliver_pos - 1) as usize;
            let Some(&(sender, seq)) = self.order_log.get(idx) else {
                break;
            };
            let Some(track) = self.senders.get(&sender) else {
                break;
            };
            if seq > track.contig {
                break; // data not yet received
            }
            if track.delivered + 1 != seq {
                break; // an earlier causal message must go first
            }
            let Some(msg) = track.buffer.get(&seq).map(Arc::clone) else {
                break;
            };
            if !self.deps_satisfied(&msg.deps) {
                break;
            }
            self.next_deliver_pos += 1;
            self.mark_delivered(sender, seq);
            out.push(msg);
            progressed = true;
        }
        progressed
    }

    /// View-change flush: deterministically delivers every remaining
    /// message (per-sender FIFO prefixes, globally by Lamport timestamp),
    /// so all survivors of the view end with the same delivery set.
    ///
    /// Messages beyond a sequence gap of a (necessarily crashed) sender
    /// are dropped: no survivor holds the gap message, and FIFO forbids
    /// skipping it.
    pub fn flush_remaining(&mut self) -> Vec<Arc<DataMsg>> {
        let mut out = Vec::new();
        loop {
            // Candidate per sender: the next FIFO message, if buffered.
            let mut best: Option<(u64, NodeId, u64)> = None;
            for (&sender, track) in &self.senders {
                let next = track.delivered + 1;
                if let Some(msg) = track.buffer.get(&next) {
                    let key = (msg.lamport, sender, next);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let Some((_, sender, seq)) = best else {
                break;
            };
            let Some(msg) = self
                .senders
                .get(&sender)
                .and_then(|t| t.buffer.get(&seq))
                .map(Arc::clone)
            else {
                break;
            };
            self.total_queue.remove(&(msg.lamport, sender, seq));
            self.mark_delivered(sender, seq);
            out.push(msg);
        }
        out
    }

    /// Garbage-collects messages that are delivered locally and
    /// acknowledged by every member.
    pub fn gc_stable(&mut self) {
        // Disjoint field borrows: `senders` is mutated while `members`,
        // `acked`, and `me` are only read.
        for (&sender, track) in &mut self.senders {
            let mut stable = track.contig;
            for &by in &self.members {
                if by == self.me {
                    continue;
                }
                let acked = self
                    .acked
                    .get(&by)
                    .and_then(|m| m.get(&sender))
                    .copied()
                    .unwrap_or(0);
                stable = stable.min(acked);
            }
            let limit = stable.min(track.delivered);
            if limit > 0 {
                track.buffer.retain(|&seq, _| seq > limit);
            }
        }
    }

    /// Number of messages currently buffered (diagnostics / tests).
    #[must_use]
    pub fn buffered_count(&self) -> usize {
        self.senders.values().map(|t| t.buffer.len()).sum()
    }

    /// The delivered prefix of `sender` (0 if nothing yet).
    #[must_use]
    pub fn delivered_of(&self, sender: NodeId) -> u64 {
        self.senders.get(&sender).map_or(0, |t| t.delivered)
    }

    /// Ingests a batch of union messages during a view change (duplicates
    /// ignored), without delivering. Shared `Arc<DataMsg>`s are buffered
    /// as-is; owned messages are wrapped.
    pub fn ingest_union(&mut self, msgs: impl IntoIterator<Item = impl Into<Arc<DataMsg>>>) {
        for m in msgs {
            let m: Arc<DataMsg> = m.into();
            if m.view == self.view {
                let _ = self.ingest_data(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DepsVector;
    use crate::group::GroupId;
    use bytes::Bytes;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn msg(sender: u32, seq: u64, ts: u64, order: DeliveryOrder) -> DataMsg {
        DataMsg {
            group: GroupId::new("g"),
            view: ViewId(1),
            sender: n(sender),
            seq,
            lamport: ts,
            order,
            deps: DepsVector::new(),
            acks: vec![],
            payload: Bytes::from(format!("{sender}:{seq}")),
        }
    }

    fn msg_deps(
        sender: u32,
        seq: u64,
        ts: u64,
        order: DeliveryOrder,
        deps: &[(u32, u64)],
    ) -> DataMsg {
        let mut m = msg(sender, seq, ts, order);
        m.deps = DepsVector::from_pairs(deps.iter().map(|&(i, s)| (n(i), s)));
        m
    }

    fn engine(me: u32, members: &[u32], protocol: OrderProtocol) -> DeliveryEngine {
        EngineConfig {
            me: n(me),
            view: ViewId(1),
            members: members.iter().map(|&i| n(i)).collect(),
            protocol,
        }
        .build()
        .unwrap()
    }

    #[test]
    fn build_rejects_owner_outside_membership() {
        let err = EngineConfig {
            me: n(9),
            view: ViewId(1),
            members: vec![n(0), n(1)],
            protocol: OrderProtocol::Symmetric,
        }
        .build();
        assert_eq!(err.err(), Some(GcsError::BadMembership));
    }

    #[test]
    fn build_canonicalises_membership_like_view_new() {
        let e = EngineConfig {
            me: n(1),
            view: ViewId(1),
            members: vec![n(3), n(1), n(2), n(1)],
            protocol: OrderProtocol::Symmetric,
        }
        .build()
        .unwrap();
        assert_eq!(e.members(), &[n(1), n(2), n(3)]);
    }

    fn ids(msgs: &[Arc<DataMsg>]) -> Vec<(u32, u64)> {
        msgs.iter().map(|m| (m.sender.index(), m.seq)).collect()
    }

    // --- FIFO / reassembly --------------------------------------------

    #[test]
    fn duplicates_are_rejected() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        assert_eq!(
            e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal)),
            Ingest::Accepted
        );
        assert_eq!(
            e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal)),
            Ingest::Duplicate
        );
        let delivered = e.drain_deliverable();
        assert_eq!(ids(&delivered), vec![(1, 1)]);
        // Delivered and GC'd-from-contig duplicates are still duplicates.
        assert_eq!(
            e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal)),
            Ingest::Duplicate
        );
    }

    #[test]
    fn non_member_senders_are_ignored() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        assert_eq!(
            e.ingest_data(msg(9, 1, 5, DeliveryOrder::Causal)),
            Ingest::Duplicate
        );
    }

    #[test]
    fn out_of_order_receipt_is_reassembled() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 2, 6, DeliveryOrder::Causal));
        assert!(e.drain_deliverable().is_empty());
        assert_eq!(e.missing_ranges(), vec![(n(1), 1, 1)]);
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        assert_eq!(ids(&e.drain_deliverable()), vec![(1, 1), (1, 2)]);
        assert!(e.missing_ranges().is_empty());
    }

    #[test]
    fn tail_loss_is_detected_via_null_last_seq() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        e.note_null(n(1), 9, 3);
        assert_eq!(e.missing_ranges(), vec![(n(1), 2, 3)]);
    }

    // --- causal order ---------------------------------------------------

    #[test]
    fn causal_deps_block_until_satisfied() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        // Message from 2 depends on having delivered 1's first message.
        e.ingest_data(msg_deps(2, 1, 7, DeliveryOrder::Causal, &[(1, 1)]));
        assert!(e.drain_deliverable().is_empty());
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        assert_eq!(ids(&e.drain_deliverable()), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn causal_chain_across_three_members() {
        let mut e = engine(0, &[0, 1, 2, 3], OrderProtocol::Symmetric);
        e.ingest_data(msg_deps(3, 1, 9, DeliveryOrder::Causal, &[(2, 1)]));
        e.ingest_data(msg_deps(2, 1, 7, DeliveryOrder::Causal, &[(1, 1)]));
        assert!(e.drain_deliverable().is_empty());
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        assert_eq!(ids(&e.drain_deliverable()), vec![(1, 1), (2, 1), (3, 1)]);
    }

    // --- symmetric total order ------------------------------------------

    #[test]
    fn symmetric_orders_by_timestamp_and_waits_for_silence() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 10, DeliveryOrder::Total));
        // Member 2 has not been heard past ts 10 yet: no delivery.
        assert!(e.drain_deliverable().is_empty());
        e.note_null(n(2), 11, 0);
        assert_eq!(ids(&e.drain_deliverable()), vec![(1, 1)]);
    }

    #[test]
    fn symmetric_interleaves_two_senders_by_timestamp() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(2, 1, 8, DeliveryOrder::Total));
        e.ingest_data(msg(1, 1, 10, DeliveryOrder::Total));
        e.note_null(n(1), 12, 1);
        e.note_null(n(2), 12, 1);
        // ts 8 before ts 10 regardless of receipt order.
        assert_eq!(ids(&e.drain_deliverable()), vec![(2, 1), (1, 1)]);
    }

    #[test]
    fn symmetric_ties_break_by_member_id() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(2, 1, 8, DeliveryOrder::Total));
        e.ingest_data(msg(1, 1, 8, DeliveryOrder::Total));
        e.note_null(n(1), 9, 1);
        e.note_null(n(2), 9, 1);
        assert_eq!(ids(&e.drain_deliverable()), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn null_racing_ahead_of_lost_data_does_not_unlock() {
        // Member 1 sent data seq1 (lost) then data seq2; member 2's null
        // says ts 20. Without the effective-heard rule, 2's message could
        // deliver before 1's seq1 arrives even though seq1 has a smaller
        // timestamp.
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 2, 6, DeliveryOrder::Total)); // seq 1 missing!
        e.ingest_data(msg(2, 1, 10, DeliveryOrder::Total));
        // Null from 1 with high ts but admitting last_seq=2: we only hold
        // seq 2 non-contiguously, so 1's effective heard stays 0.
        e.note_null(n(1), 20, 2);
        e.note_null(n(2), 21, 1);
        assert!(e.drain_deliverable().is_empty(), "must wait for 1's seq 1");
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Total));
        assert_eq!(
            ids(&e.drain_deliverable()),
            vec![(1, 1), (1, 2), (2, 1)],
            "timestamp order restored after retransmission"
        );
    }

    #[test]
    fn symmetric_two_member_group_delivers_immediately() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 4, DeliveryOrder::Total));
        assert_eq!(ids(&e.drain_deliverable()), vec![(1, 1)]);
    }

    #[test]
    fn own_messages_participate_in_the_order() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(0, 1, 5, DeliveryOrder::Total)); // own, via loopback
        e.ingest_data(msg(1, 1, 7, DeliveryOrder::Total));
        e.note_null(n(1), 9, 1);
        e.note_null(n(2), 9, 0);
        assert_eq!(ids(&e.drain_deliverable()), vec![(0, 1), (1, 1)]);
    }

    // --- asymmetric total order ------------------------------------------

    #[test]
    fn sequencer_orders_and_members_follow() {
        // Node 0 is sequencer.
        let mut seq = engine(0, &[0, 1, 2], OrderProtocol::Asymmetric);
        let mut member = engine(1, &[0, 1, 2], OrderProtocol::Asymmetric);

        let m_a = msg(1, 1, 5, DeliveryOrder::Total);
        let m_b = msg(2, 1, 7, DeliveryOrder::Total);
        seq.ingest_data(m_b.clone());
        seq.ingest_data(m_a.clone());
        let entries = seq.sequencer_poll();
        assert_eq!(entries.len(), 2);
        // Sequencer delivers along its own log.
        assert_eq!(seq.drain_deliverable().len(), 2);

        // Member receives data in the opposite order plus the records.
        member.ingest_data(m_a);
        member.ingest_data(m_b);
        member.ingest_order(1, &entries);
        let delivered = member.drain_deliverable();
        assert_eq!(
            ids(&delivered),
            entries
                .iter()
                .map(|&(s, q)| (s.index(), q))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn member_waits_for_order_records() {
        let mut member = engine(1, &[0, 1], OrderProtocol::Asymmetric);
        member.ingest_data(msg(0, 1, 3, DeliveryOrder::Total));
        assert!(member.drain_deliverable().is_empty());
        member.ingest_order(1, &[(n(0), 1)]);
        assert_eq!(ids(&member.drain_deliverable()), vec![(0, 1)]);
    }

    #[test]
    fn order_gap_is_detected_and_healed() {
        let mut member = engine(1, &[0, 1], OrderProtocol::Asymmetric);
        member.ingest_data(msg(0, 1, 3, DeliveryOrder::Total));
        member.ingest_data(msg(0, 2, 4, DeliveryOrder::Total));
        member.ingest_order(2, &[(n(0), 2)]); // first record lost
        assert_eq!(member.order_gap(), Some(1));
        assert!(member.drain_deliverable().is_empty());
        member.ingest_order(1, &[(n(0), 1)]);
        assert_eq!(member.order_gap(), None);
        assert_eq!(ids(&member.drain_deliverable()), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn sequencer_respects_causal_deps_across_senders() {
        let mut seq = engine(0, &[0, 1, 2], OrderProtocol::Asymmetric);
        // 2's message depends on 1's, but arrives first.
        seq.ingest_data(msg_deps(2, 1, 9, DeliveryOrder::Total, &[(1, 1)]));
        assert!(seq.sequencer_poll().is_empty());
        seq.ingest_data(msg(1, 1, 5, DeliveryOrder::Total));
        let entries = seq.sequencer_poll();
        assert_eq!(entries, vec![(n(1), 1), (n(2), 1)]);
    }

    #[test]
    fn causal_messages_skip_the_sequencer() {
        let mut seq = engine(0, &[0, 1], OrderProtocol::Asymmetric);
        seq.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        seq.ingest_data(msg(1, 2, 6, DeliveryOrder::Total));
        let entries = seq.sequencer_poll();
        assert_eq!(entries, vec![(n(1), 2)]);
        // Both deliver: causal immediately, total via the log.
        assert_eq!(ids(&seq.drain_deliverable()), vec![(1, 1), (1, 2)]);
    }

    #[test]
    fn order_log_slice_serves_nacks() {
        let mut seq = engine(0, &[0, 1], OrderProtocol::Asymmetric);
        for s in 1..=5 {
            seq.ingest_data(msg(1, s, s, DeliveryOrder::Total));
        }
        let _ = seq.sequencer_poll();
        let (start, entries) = seq.order_log_slice(2, 2);
        assert_eq!(start, 2);
        assert_eq!(entries, vec![(n(1), 2), (n(1), 3)]);
        let (_, empty) = seq.order_log_slice(99, 10);
        assert!(empty.is_empty());
    }

    // --- stability & GC ---------------------------------------------------

    #[test]
    fn gc_requires_all_members_acks() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        assert_eq!(e.drain_deliverable().len(), 1);
        assert_eq!(e.buffered_count(), 1);
        e.gc_stable();
        assert_eq!(e.buffered_count(), 1, "no acks yet: retained");
        e.apply_acks(n(1), &vec![(n(1), 1)]);
        e.gc_stable();
        assert_eq!(e.buffered_count(), 1, "member 2 has not acked");
        e.apply_acks(n(2), &vec![(n(1), 1)]);
        e.gc_stable();
        assert_eq!(e.buffered_count(), 0, "stable and delivered: collected");
    }

    #[test]
    fn undelivered_messages_survive_gc() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 10, DeliveryOrder::Total)); // blocked
        e.apply_acks(n(1), &vec![(n(1), 1)]);
        e.apply_acks(n(2), &vec![(n(1), 1)]);
        e.gc_stable();
        assert_eq!(e.buffered_count(), 1);
    }

    // --- view-change support ----------------------------------------------

    #[test]
    fn export_beyond_contig_vector() {
        let mut e = engine(0, &[0, 1, 2], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        e.ingest_data(msg(1, 2, 6, DeliveryOrder::Causal));
        e.ingest_data(msg(2, 1, 7, DeliveryOrder::Causal));
        let exported = e.export_msgs_beyond(&vec![(n(1), 1)]);
        assert_eq!(ids(&exported), vec![(1, 2), (2, 1)]);
        assert_eq!(e.export_msgs_beyond(&e.contig_vector()).len(), 0);
    }

    #[test]
    fn flush_delivers_everything_in_timestamp_order() {
        // Member 3 is never heard from, so nothing is deliverable until
        // the flush.
        let mut e = engine(0, &[0, 1, 2, 3], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 10, DeliveryOrder::Total)); // blocked: no nulls
        e.ingest_data(msg(2, 1, 8, DeliveryOrder::Total));
        e.ingest_data(msg(2, 2, 12, DeliveryOrder::Causal));
        assert!(e.drain_deliverable().is_empty());
        let flushed = e.flush_remaining();
        assert_eq!(ids(&flushed), vec![(2, 1), (1, 1), (2, 2)]);
        assert!(!e.has_undelivered());
    }

    #[test]
    fn flush_stops_at_gaps() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Total));
        e.ingest_data(msg(1, 3, 9, DeliveryOrder::Total)); // seq 2 lost forever
        let flushed = e.flush_remaining();
        assert_eq!(ids(&flushed), vec![(1, 1)], "cannot skip the FIFO gap");
    }

    #[test]
    fn ingest_union_ignores_duplicates_and_stale_views() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        let mut stale = msg(1, 2, 6, DeliveryOrder::Causal);
        stale.view = ViewId(0);
        e.ingest_union(vec![msg(1, 1, 5, DeliveryOrder::Causal), stale]);
        assert_eq!(e.buffered_count(), 1);
    }

    #[test]
    fn delivered_vector_tracks_progress() {
        let mut e = engine(0, &[0, 1], OrderProtocol::Symmetric);
        assert!(e.delivered_vector().is_empty());
        e.ingest_data(msg(1, 1, 5, DeliveryOrder::Causal));
        e.drain_deliverable();
        assert_eq!(e.delivered_vector(), vec![(n(1), 1)]);
        assert_eq!(e.delivered_of(n(1)), 1);
    }
}
