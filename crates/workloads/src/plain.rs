//! The plain-CORBA baseline: one-to-one ORB invocation with no group
//! service. Reproduces the paper's Table 1 measurements and the
//! non-replicated reference the §5.1 figures compare against.

use std::time::Duration;

use bytes::Bytes;

use newtop_net::sim::{NodeEvent, Outbox, SimNode};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_orb::cdr::CdrEncoder;
use newtop_orb::ior::ObjectRef;
use newtop_orb::orb::{OrbCore, OrbIncoming, RequestId};
use newtop_orb::servant::ServantError;

/// The paper's test servant: returns a pseudo-random number on request.
/// Deterministic (seeded LCG) so runs are reproducible.
#[derive(Debug)]
pub struct RandomServant {
    state: u64,
}

impl RandomServant {
    /// Creates the servant with a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomServant { state: seed | 1 }
    }

    /// The next pseudo-random value (LCG step).
    pub fn next_value(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    /// Executes the `rand` operation, marshalling the result.
    pub fn run(&mut self, op: &str) -> Result<Bytes, ServantError> {
        if op != "rand" {
            return Err(ServantError::BadOperation(op.to_owned()));
        }
        let v = self.next_value();
        let mut enc = CdrEncoder::new();
        enc.write_u64(v);
        Ok(enc.finish())
    }
}

/// A plain ORB server node hosting the random-number servant.
pub struct PlainServer {
    orb: OrbCore,
    /// Requests served.
    pub served: u64,
}

impl PlainServer {
    /// Creates the server for `node`.
    #[must_use]
    pub fn new(node: NodeId, seed: u64) -> Self {
        let mut orb = OrbCore::new(node);
        let mut servant = RandomServant::new(seed);
        orb.adapter_mut().activate(
            "rand-server",
            Box::new(move |op: &str, _args: &[u8]| servant.run(op)),
        );
        PlainServer { orb, served: 0 }
    }

    /// The reference clients invoke.
    #[must_use]
    pub fn object_ref(node: NodeId) -> ObjectRef {
        ObjectRef::new(node, "rand-server")
    }
}

impl SimNode for PlainServer {
    fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
        if let NodeEvent::Packet(pkt) = ev {
            // Registered servants are dispatched inside the ORB.
            if self.orb.handle_packet(&pkt, out).is_none() {
                self.served += 1;
            }
        }
    }
}

/// A closed-loop plain ORB client: issues the next request the moment the
/// previous reply arrives (the paper's client behaviour).
pub struct PlainClient {
    orb: OrbCore,
    server: ObjectRef,
    start_delay: Duration,
    issued_at: Option<(RequestId, SimTime)>,
    /// `(completion time, response time)` per completed call.
    pub completions: Vec<(SimTime, Duration)>,
}

impl PlainClient {
    /// Creates the client; it starts calling `server` after
    /// `start_delay`.
    #[must_use]
    pub fn new(node: NodeId, server: ObjectRef, start_delay: Duration) -> Self {
        PlainClient {
            orb: OrbCore::new(node),
            server,
            start_delay,
            issued_at: None,
            completions: Vec::new(),
        }
    }

    fn issue(&mut self, now: SimTime, out: &mut Outbox) {
        let req = self.orb.invoke(&self.server, "rand", Bytes::new(), out);
        self.issued_at = Some((req, now));
    }
}

impl SimNode for PlainClient {
    fn on_event(&mut self, now: SimTime, ev: NodeEvent, out: &mut Outbox) {
        match ev {
            NodeEvent::Start => {
                out.set_timer(self.start_delay, 0);
            }
            NodeEvent::Timer(..) => {
                self.issue(now, out);
            }
            NodeEvent::Packet(pkt) => {
                if let Some(OrbIncoming::Reply { request, .. }) = self.orb.handle_packet(&pkt, out)
                {
                    if let Some((pending, at)) = self.issued_at {
                        if pending == request {
                            self.completions.push((now, now - at));
                            self.issue(now, out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_net::sim::{Sim, SimConfig};
    use newtop_net::site::Site;

    #[test]
    fn random_servant_is_deterministic_and_nonconstant() {
        let mut a = RandomServant::new(42);
        let mut b = RandomServant::new(42);
        let va: Vec<u64> = (0..5).map(|_| a.next_value()).collect();
        let vb: Vec<u64> = (0..5).map(|_| b.next_value()).collect();
        assert_eq!(va, vb);
        assert!(va.windows(2).any(|w| w[0] != w[1]));
        assert!(a.run("rand").is_ok());
        assert!(a.run("zap").is_err());
    }

    #[test]
    fn closed_loop_client_saturates_a_lan_server() {
        let mut sim = Sim::new(SimConfig::lan(7));
        let server_id = NodeId::from_index(0);
        sim.add_node(Site::Lan, Box::new(PlainServer::new(server_id, 1)));
        let client_id = sim.add_node(
            Site::Lan,
            Box::new(PlainClient::new(
                NodeId::from_index(1),
                PlainServer::object_ref(server_id),
                Duration::from_millis(1),
            )),
        );
        sim.run_until(SimTime::from_secs(1));
        let client = sim.node_ref::<PlainClient>(client_id).unwrap();
        // With ~1 ms per call, a second of closed-loop traffic yields
        // hundreds of completions.
        assert!(
            client.completions.len() > 300,
            "{}",
            client.completions.len()
        );
        let mean: f64 = client
            .completions
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .sum::<f64>()
            / client.completions.len() as f64;
        // Around a millisecond on the LAN (Table 1's order of magnitude).
        assert!(mean > 0.0003 && mean < 0.003, "mean {mean}");
    }

    #[test]
    fn wan_calls_are_tens_of_milliseconds() {
        let mut sim = Sim::new(SimConfig::internet(8));
        let server_id = NodeId::from_index(0);
        sim.add_node(Site::Newcastle, Box::new(PlainServer::new(server_id, 1)));
        let client_id = sim.add_node(
            Site::Pisa,
            Box::new(PlainClient::new(
                NodeId::from_index(1),
                PlainServer::object_ref(server_id),
                Duration::from_millis(1),
            )),
        );
        sim.run_until(SimTime::from_secs(2));
        let client = sim.node_ref::<PlainClient>(client_id).unwrap();
        assert!(!client.completions.is_empty());
        let mean: f64 = client
            .completions
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .sum::<f64>()
            / client.completions.len() as f64;
        assert!(mean > 0.010 && mean < 0.040, "mean {mean}");
    }
}
