/root/repo/target/debug/deps/proxy-8f1c2acb15a6c6d5.d: crates/core/tests/proxy.rs

/root/repo/target/debug/deps/proxy-8f1c2acb15a6c6d5: crates/core/tests/proxy.rs

crates/core/tests/proxy.rs:
