//! The binding-control protocol between NSOs.
//!
//! Client/server groups are created on demand: the client asks each
//! involved server (one for an open binding, all of them for a closed
//! binding) to instantiate the group, then instantiates it locally once
//! every server has acknowledged. These control messages travel as
//! ordinary ORB requests of [`crate::INV_CTRL_OPERATION`].

use newtop_gcs::group::{FanoutMode, GroupId, OrderProtocol};
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

/// A control request from a client NSO to a server NSO.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlMessage {
    /// "Create the client/server group `group` with me in it."
    BindRequest {
        /// The client/server group to instantiate.
        group: GroupId,
        /// The binding client.
        client: NodeId,
        /// The server group being bound to.
        server_group: GroupId,
        /// Full membership of the client/server group (client + one
        /// server when open, client + every server when closed).
        members: Vec<NodeId>,
        /// True for the closed style.
        closed: bool,
        /// Total-order protocol for the client/server group.
        ordering: OrderProtocol,
        /// Time-silence period for the client/server group, microseconds.
        time_silence_micros: u64,
        /// Fan-out mode for the client/server group. Every member must
        /// agree, or one side would chain round trips while the other
        /// expects back-to-back (batchable) sends.
        fanout: FanoutMode,
    },
}

const TAG_BIND: u8 = 0;

impl CdrEncode for CtrlMessage {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            CtrlMessage::BindRequest {
                group,
                client,
                server_group,
                members,
                closed,
                ordering,
                time_silence_micros,
                fanout,
            } => {
                enc.write_u8(TAG_BIND);
                group.encode(enc);
                client.encode(enc);
                server_group.encode(enc);
                members.encode(enc);
                enc.write_bool(*closed);
                enc.write_u8(match ordering {
                    OrderProtocol::Symmetric => 0,
                    OrderProtocol::Asymmetric => 1,
                });
                enc.write_u64(*time_silence_micros);
                enc.write_u8(match fanout {
                    FanoutMode::Synchronous => 0,
                    FanoutMode::Asynchronous => 1,
                });
            }
        }
    }
}

impl CdrDecode for CtrlMessage {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        match dec.read_u8()? {
            TAG_BIND => Ok(CtrlMessage::BindRequest {
                group: GroupId::decode(dec)?,
                client: NodeId::decode(dec)?,
                server_group: GroupId::decode(dec)?,
                members: Vec::decode(dec)?,
                closed: dec.read_bool()?,
                ordering: match dec.read_u8()? {
                    0 => OrderProtocol::Symmetric,
                    _ => OrderProtocol::Asymmetric,
                },
                time_silence_micros: dec.read_u64()?,
                fanout: match dec.read_u8()? {
                    0 => FanoutMode::Synchronous,
                    _ => FanoutMode::Asynchronous,
                },
            }),
            other => Err(CdrError::BadDiscriminant(u32::from(other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_request_round_trips() {
        let m = CtrlMessage::BindRequest {
            group: GroupId::new("cs:0:1"),
            client: NodeId::from_index(0),
            server_group: GroupId::new("servers"),
            members: vec![NodeId::from_index(0), NodeId::from_index(3)],
            closed: false,
            ordering: OrderProtocol::Asymmetric,
            time_silence_micros: 25_000,
            fanout: FanoutMode::Synchronous,
        };
        assert_eq!(CtrlMessage::from_cdr(&m.to_cdr()).unwrap(), m);
    }

    #[test]
    fn closed_flag_and_ordering_round_trip() {
        let m = CtrlMessage::BindRequest {
            group: GroupId::new("g"),
            client: NodeId::from_index(9),
            server_group: GroupId::new("s"),
            members: vec![],
            closed: true,
            ordering: OrderProtocol::Symmetric,
            time_silence_micros: 1,
            fanout: FanoutMode::Asynchronous,
        };
        assert_eq!(CtrlMessage::from_cdr(&m.to_cdr()).unwrap(), m);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(CtrlMessage::from_cdr(&[77, 1, 2, 3]).is_err());
    }
}
