//! Simulator harness for durable GCS nodes: crash, cold-restart,
//! replay, rejoin.
//!
//! [`DurableGcsNode`] hosts the same sharded GCS + ORB stack as the
//! `newtop-gcs` testkit node, but writes every group event through a
//! [`SharedStore`] (the node's stable storage, held *outside* the
//! volatile node state so it survives [`SimNode::on_restart`]). After a
//! crash-and-restart the node replays snapshot + log, rejoins each
//! group it was a member of through the last durably known view, and
//! fetches the deliveries it missed as *chunked delta state transfer*
//! from its contiguous-ack floor — the [`RecoveryMsg`] protocol — so a
//! rejoin ships `history - floor` records, not the full history.
//!
//! The floor is sound because recovery scenarios drive totally ordered
//! traffic: every member delivers the same per-group sequence, so the
//! recovered node's replayed history is a byte-exact prefix of any
//! surviving member's history.

use std::collections::BTreeMap;

use bytes::Bytes;

use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_gcs::member::{GcsNet, GcsOutput};
use newtop_gcs::shard::ShardedGcs;
use newtop_gcs::testkit::{decode_command, encode_command, Command};
use newtop_gcs::view::View;
use newtop_gcs::GCS_OPERATION;
use newtop_net::sim::{NodeEvent, Outbox, Packet, Sim, SimConfig, SimNode};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};
use newtop_orb::orb::{OrbCore, OrbIncoming};

use crate::log::{DeliveredRec, LogRecord};
use crate::store::{shared_store, SharedStore};

const RCVR_MAGIC: &[u8; 6] = b"NTRCVR";

/// Deliveries per state-transfer chunk.
pub const XFER_CHUNK: usize = 8;

/// Delivered records between automatic snapshots of a node's log.
pub const SNAPSHOT_EVERY: u64 = 16;

/// The delta state-transfer protocol between a recovering node and its
/// contact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryMsg {
    /// "Send me `group`'s history beyond my floor."
    XferRequest {
        /// Group to transfer.
        group: GroupId,
        /// Deliveries the requester already holds (its replayed
        /// contiguous-ack floor).
        floor: u64,
    },
    /// One chunk of the delta, in delivery order.
    XferChunk {
        /// Group concerned.
        group: GroupId,
        /// Absolute index of the first record in this chunk.
        start: u64,
        /// The records.
        records: Vec<DeliveredRec>,
        /// Whether this is the final chunk.
        done: bool,
    },
}

impl CdrEncode for RecoveryMsg {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            RecoveryMsg::XferRequest { group, floor } => {
                enc.write_u8(0);
                group.encode(enc);
                enc.write_u64(*floor);
            }
            RecoveryMsg::XferChunk {
                group,
                start,
                records,
                done,
            } => {
                enc.write_u8(1);
                group.encode(enc);
                enc.write_u64(*start);
                records.encode(enc);
                enc.write_u8(u8::from(*done));
            }
        }
    }
}

impl CdrDecode for RecoveryMsg {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        match dec.read_u8()? {
            0 => Ok(RecoveryMsg::XferRequest {
                group: GroupId::decode(dec)?,
                floor: dec.read_u64()?,
            }),
            1 => Ok(RecoveryMsg::XferChunk {
                group: GroupId::decode(dec)?,
                start: dec.read_u64()?,
                records: Vec::<DeliveredRec>::decode(dec)?,
                done: match dec.read_u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(CdrError::BadDiscriminant(u32::from(other))),
                },
            }),
            other => Err(CdrError::BadDiscriminant(u32::from(other))),
        }
    }
}

/// Frames a [`RecoveryMsg`] as a magic-prefixed packet payload.
#[must_use]
pub fn encode_recovery(msg: &RecoveryMsg) -> Bytes {
    let mut enc = CdrEncoder::new();
    for b in RCVR_MAGIC {
        enc.write_u8(*b);
    }
    msg.encode(&mut enc);
    enc.finish()
}

/// Decodes a magic-prefixed recovery payload; `None` when the payload
/// is not recovery traffic, an error when it is but is malformed.
///
/// # Errors
///
/// The [`CdrError`] of a malformed recovery body.
pub fn decode_recovery(payload: &[u8]) -> Option<Result<RecoveryMsg, CdrError>> {
    if payload.len() < RCVR_MAGIC.len() || &payload[..RCVR_MAGIC.len()] != RCVR_MAGIC {
        return None;
    }
    let mut dec = CdrDecoder::new(payload);
    for _ in 0..RCVR_MAGIC.len() {
        // Cannot fail: the length check above covers the magic.
        let _ = dec.read_u8();
    }
    Some(RecoveryMsg::decode(&mut dec))
}

/// A simulated node hosting a durably logged GCS stack.
pub struct DurableGcsNode {
    id: NodeId,
    shards: usize,
    store: SharedStore,
    gcs: ShardedGcs,
    orb: OrbCore,
    /// Every output produced since the last cold start, stamped with
    /// virtual time. A restart moves the accumulated outputs to
    /// [`Self::pre_crash_outputs`].
    pub outputs: Vec<(SimTime, GcsOutput)>,
    /// Outputs produced before the most recent crash.
    pub pre_crash_outputs: Vec<(SimTime, GcsOutput)>,
    /// Per-group delivery history reconstructed from durable state at
    /// the last recovery.
    pub replayed: BTreeMap<GroupId, Vec<DeliveredRec>>,
    /// Per-group records received via delta transfer after recovery.
    pub delta_records: BTreeMap<GroupId, Vec<DeliveredRec>>,
    /// Per-group delta payload bytes received (the transferred-bytes
    /// side of the delta-vs-full assertion).
    pub delta_bytes: BTreeMap<GroupId, u64>,
    /// When recovery replay ran, if it has.
    pub recovered_at: Option<SimTime>,
    /// Per-group time the first post-recovery view containing this node
    /// was installed (cold-restart rejoin latency).
    pub rejoined_at: BTreeMap<GroupId, SimTime>,
    /// Whether replay found a snapshot installed.
    pub recovered_from_snapshot: bool,
    /// Log records replayed beyond the snapshot at recovery.
    pub replayed_log_records: u64,
    recover_pending: bool,
    delivered_since_snapshot: u64,
    /// Latest installed view per group (volatile).
    latest_views: BTreeMap<GroupId, View>,
    /// Delta requests waiting for the requester's rejoin view:
    /// `(requester, group, floor)`.
    pending_xfers: Vec<(NodeId, GroupId, u64)>,
}

impl DurableGcsNode {
    /// Creates the node state for `id` over `store` with `shards` shard
    /// engines.
    #[must_use]
    pub fn with_shards(id: NodeId, store: SharedStore, shards: usize) -> Self {
        DurableGcsNode {
            id,
            shards,
            store,
            gcs: ShardedGcs::new(id, 1 << 40, shards),
            orb: OrbCore::new(id),
            outputs: Vec::new(),
            pre_crash_outputs: Vec::new(),
            replayed: BTreeMap::new(),
            delta_records: BTreeMap::new(),
            delta_bytes: BTreeMap::new(),
            recovered_at: None,
            rejoined_at: BTreeMap::new(),
            recovered_from_snapshot: false,
            replayed_log_records: 0,
            recover_pending: false,
            delivered_since_snapshot: 0,
            latest_views: BTreeMap::new(),
            pending_xfers: Vec::new(),
        }
    }

    /// Delivered `(sender, payload)` pairs for one group since the last
    /// cold start, in delivery order.
    #[must_use]
    pub fn delivered(&self, group: &GroupId) -> Vec<(NodeId, Bytes)> {
        Self::delivered_of(&self.outputs, group)
    }

    /// Like [`Self::delivered`] but over the pre-crash outputs.
    #[must_use]
    pub fn delivered_before_crash(&self, group: &GroupId) -> Vec<(NodeId, Bytes)> {
        Self::delivered_of(&self.pre_crash_outputs, group)
    }

    fn delivered_of(outputs: &[(SimTime, GcsOutput)], group: &GroupId) -> Vec<(NodeId, Bytes)> {
        outputs
            .iter()
            .filter_map(|(_, o)| match o {
                GcsOutput::Delivered {
                    group: g,
                    sender,
                    payload,
                    ..
                } if g == group => Some((*sender, payload.clone())),
                _ => None,
            })
            .collect()
    }

    /// Full delivery records for one group from an output slice.
    #[must_use]
    pub fn delivered_recs(outputs: &[(SimTime, GcsOutput)], group: &GroupId) -> Vec<DeliveredRec> {
        outputs
            .iter()
            .filter_map(|(_, o)| match o {
                GcsOutput::Delivered {
                    group: g,
                    sender,
                    order,
                    lamport,
                    payload,
                } if g == group => Some(DeliveredRec {
                    sender: *sender,
                    order: *order,
                    lamport: *lamport,
                    payload: payload.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Views installed for one group since the last cold start.
    #[must_use]
    pub fn views(&self, group: &GroupId) -> Vec<View> {
        self.outputs
            .iter()
            .filter_map(|(_, o)| match o {
                GcsOutput::ViewInstalled { group: g, view, .. } if g == group => Some(view.clone()),
                _ => None,
            })
            .collect()
    }

    /// This node's full known delivery history for `group`: the prefix
    /// replayed from durable state at the last recovery (empty if this
    /// node never recovered) plus everything delivered since.
    fn known_history(&self, group: &GroupId) -> Vec<DeliveredRec> {
        let mut history = self.replayed.get(group).cloned().unwrap_or_default();
        history.extend(Self::delivered_recs(&self.outputs, group));
        history
    }

    /// Ships `group`'s history beyond `floor` to `to` in chunks.
    fn serve_xfer(&mut self, to: NodeId, group: &GroupId, floor: u64, out: &mut Outbox) {
        let history = self.known_history(group);
        let from_idx = (floor as usize).min(history.len());
        let delta = &history[from_idx..];
        let chunks: Vec<&[DeliveredRec]> = if delta.is_empty() {
            vec![&[][..]]
        } else {
            delta.chunks(XFER_CHUNK).collect()
        };
        let last = chunks.len() - 1;
        for (i, chunk) in chunks.into_iter().enumerate() {
            // Replay admission: state transfer re-ships acknowledged
            // history, so it passes the flow controller outside the
            // live send window (counted, never shed).
            if let Some(flow) = self.gcs.flow_of_mut(group) {
                let _ = flow.admit_replay();
            }
            let msg = RecoveryMsg::XferChunk {
                group: group.clone(),
                start: floor + (i * XFER_CHUNK) as u64,
                records: chunk.to_vec(),
                done: i == last,
            };
            out.send(to, encode_recovery(&msg));
        }
    }

    /// Stages durable records for freshly produced outputs and collects
    /// them; the commit point is [`Self::commit`] at the end of the
    /// handling event.
    fn log_outputs(&mut self, now: SimTime, produced: Vec<GcsOutput>, out: &mut Outbox) {
        for output in produced {
            match &output {
                GcsOutput::Delivered {
                    group,
                    sender,
                    order,
                    lamport,
                    payload,
                } => {
                    self.store.lock().unwrap().append(
                        self.id,
                        &LogRecord::Delivered {
                            group: group.clone(),
                            rec: DeliveredRec {
                                sender: *sender,
                                order: *order,
                                lamport: *lamport,
                                payload: payload.clone(),
                            },
                        },
                    );
                    self.delivered_since_snapshot += 1;
                }
                GcsOutput::ViewInstalled { group, view, .. } => {
                    self.store.lock().unwrap().append(
                        self.id,
                        &LogRecord::ViewInstalled {
                            group: group.clone(),
                            view: view.clone(),
                        },
                    );
                    if self.recovered_at.is_some()
                        && view.contains(self.id)
                        && !self.rejoined_at.contains_key(group)
                    {
                        self.rejoined_at.insert(group.clone(), now);
                    }
                    self.latest_views.insert(group.clone(), view.clone());
                    // A view install is the state-transfer point:
                    // virtual synchrony has flushed every pre-view
                    // message, so a delta served here is exactly the
                    // requester's missed suffix.
                    let (g, v) = (group.clone(), view.clone());
                    let mut due = Vec::new();
                    self.pending_xfers.retain(|(to, pg, floor)| {
                        if *pg == g && v.contains(*to) {
                            due.push((*to, *floor));
                            false
                        } else {
                            true
                        }
                    });
                    self.outputs.push((now, output));
                    for (to, floor) in due {
                        self.serve_xfer(to, &g, floor, out);
                    }
                    continue;
                }
                GcsOutput::LeftGroup { .. } => {}
            }
            self.outputs.push((now, output));
        }
    }

    /// The fsync batch point: everything staged by this event becomes
    /// durable before the handler returns, so no delivery is ever
    /// acknowledged ahead of its flush. Also takes the periodic
    /// snapshot once enough deliveries accumulated since the last one.
    fn commit(&mut self) {
        let mut store = self.store.lock().unwrap();
        store.sync(self.id);
        if self.delivered_since_snapshot >= SNAPSHOT_EVERY {
            self.delivered_since_snapshot = 0;
            let _ = store.compact(self.id);
        }
    }

    fn handle_command(&mut self, cmd: Command, now: SimTime, out: &mut Outbox) {
        let mut net = GcsNet::new(&mut self.orb, out);
        let produced = match cmd {
            Command::Create {
                group,
                config,
                members,
            } => {
                self.store.lock().unwrap().append(
                    self.id,
                    &LogRecord::Created {
                        group: group.clone(),
                        config: config.clone(),
                        members: members.clone(),
                    },
                );
                self.gcs
                    .create_group(group, config, members, now, &mut net)
                    .unwrap_or_default()
            }
            Command::Join {
                group,
                config,
                contact,
            } => {
                self.store.lock().unwrap().append(
                    self.id,
                    &LogRecord::Created {
                        group: group.clone(),
                        config: config.clone(),
                        members: vec![contact],
                    },
                );
                let _ = self.gcs.join_group(group, config, contact, now, &mut net);
                Vec::new()
            }
            Command::Leave { group } => self
                .gcs
                .leave_group(&group, now, &mut net)
                .unwrap_or_default(),
            Command::Multicast {
                group,
                order,
                payload,
            } => {
                let _ = self.gcs.multicast(&group, order, payload, now, &mut net);
                Vec::new()
            }
        };
        self.log_outputs(now, produced, out);
    }

    fn handle_recovery_msg(&mut self, from: NodeId, msg: RecoveryMsg, out: &mut Outbox) {
        match msg {
            RecoveryMsg::XferRequest { group, floor } => {
                // Serve immediately only if the requester is already
                // back in the view; otherwise park the request until its
                // rejoin view installs, so the delta meets the rejoin at
                // the view boundary with no gap between them.
                let rejoined = self
                    .latest_views
                    .get(&group)
                    .is_some_and(|v| v.contains(from));
                if rejoined {
                    self.serve_xfer(from, &group, floor, out);
                } else {
                    self.pending_xfers.push((from, group, floor));
                }
            }
            RecoveryMsg::XferChunk { group, records, .. } => {
                // Transferred records carry the stamps other members saw
                // this node's pre-crash in-flight sends with; observing
                // them keeps post-recovery stamps strictly increasing.
                if let Some(max) = records.iter().map(|r| r.lamport).max() {
                    self.gcs.observe_clock(max);
                }
                let bytes: u64 = records.iter().map(|r| r.payload.len() as u64).sum();
                *self.delta_bytes.entry(group.clone()).or_insert(0) += bytes;
                self.delta_records.entry(group).or_default().extend(records);
            }
        }
    }

    /// Replays durable state and rejoins every group this node was a
    /// member of, requesting the missed suffix from the lowest-ranked
    /// other member of the last durably installed view.
    fn run_recovery(&mut self, now: SimTime, out: &mut Outbox) {
        let recovered = {
            let store = self.store.lock().unwrap();
            store.recover(self.id)
        };
        let Ok(state) = recovered else {
            return;
        };
        self.recovered_at = Some(now);
        self.recovered_from_snapshot = state.from_snapshot;
        self.replayed_log_records = state.log_records_replayed;
        // Restore the Lamport clock: never stamp a post-recovery send
        // below anything in the durable history.
        let max_lamport = state
            .groups
            .values()
            .flat_map(|g| g.history.iter().map(|r| r.lamport))
            .max()
            .unwrap_or(0);
        self.gcs.observe_clock(max_lamport);
        for (group, g) in state.groups {
            let floor = g.history.len() as u64;
            self.replayed.insert(group.clone(), g.history);
            let Some(view) = g.last_view else {
                continue;
            };
            if !view.contains(self.id) {
                continue;
            }
            let Some(&contact) = view.members().iter().find(|&&m| m != self.id) else {
                continue;
            };
            out.send(
                contact,
                encode_recovery(&RecoveryMsg::XferRequest {
                    group: group.clone(),
                    floor,
                }),
            );
            self.store.lock().unwrap().append(
                self.id,
                &LogRecord::Created {
                    group: group.clone(),
                    config: g.config.clone(),
                    members: vec![contact],
                },
            );
            // Rejoin with the full durably known membership so the
            // placement rule pins the group to its pre-crash shard.
            let mut net = GcsNet::new(&mut self.orb, out);
            let _ = self.gcs.join_group_with_membership(
                group,
                g.config,
                contact,
                view.members(),
                now,
                &mut net,
            );
        }
    }
}

impl SimNode for DurableGcsNode {
    fn on_event(&mut self, now: SimTime, ev: NodeEvent, out: &mut Outbox) {
        match ev {
            NodeEvent::Start => {
                if self.recover_pending {
                    self.recover_pending = false;
                    self.run_recovery(now, out);
                }
            }
            NodeEvent::Packet(pkt) => {
                if let Some(cmd) = decode_command(&pkt.payload) {
                    self.handle_command(cmd, now, out);
                } else if let Some(decoded) = decode_recovery(&pkt.payload) {
                    if let Ok(msg) = decoded {
                        self.handle_recovery_msg(pkt.src, msg, out);
                    }
                } else {
                    let incoming = self.orb.handle_packet(&pkt, out);
                    if let Some(OrbIncoming::Upcall {
                        operation, body, ..
                    }) = incoming
                    {
                        if operation == GCS_OPERATION {
                            if let Ok(msg) = newtop_gcs::messages::GcsMessage::from_cdr(&body) {
                                let mut net = GcsNet::new(&mut self.orb, out);
                                let produced = self.gcs.on_message(msg, now, &mut net);
                                self.log_outputs(now, produced, out);
                            }
                        }
                    }
                }
            }
            NodeEvent::Timer(_, tag) => {
                if self.gcs.owns_tag(tag) {
                    let mut net = GcsNet::new(&mut self.orb, out);
                    let produced = self.gcs.on_timer(tag, now, &mut net);
                    self.log_outputs(now, produced, out);
                }
            }
        }
        self.commit();
    }

    fn on_restart(&mut self, _now: SimTime) {
        // Volatile state dies with the incarnation; stable storage (the
        // shared store) survives. Mid-event staged-but-unsynced bytes
        // are what a real crash loses.
        self.store.lock().unwrap().crash(self.id);
        self.gcs = ShardedGcs::new(self.id, 1 << 40, self.shards);
        self.orb = OrbCore::new(self.id);
        let crashed = std::mem::take(&mut self.outputs);
        self.pre_crash_outputs.extend(crashed);
        self.latest_views.clear();
        self.pending_xfers.clear();
        self.recover_pending = true;
    }
}

/// A scripted multi-node durable GCS scenario on the simulator.
pub struct DurableHarness {
    /// The underlying simulator (exposed for fault injection and custom
    /// scheduling).
    pub sim: Sim,
    /// The shared stable storage of every node.
    pub store: SharedStore,
    nodes: Vec<NodeId>,
    shards: usize,
}

impl DurableHarness {
    /// Creates a harness over a fresh simulator and a fresh store.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        DurableHarness {
            sim: Sim::new(cfg),
            store: shared_store(),
            nodes: Vec::new(),
            shards: 1,
        }
    }

    /// Sets the shard-engine count for nodes added after this call.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The simulator seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.sim.seed()
    }

    /// Adds `count` durable nodes at `site`, returning their ids.
    pub fn add_nodes(&mut self, site: Site, count: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId::from_index(self.nodes.len() as u32);
            let node = DurableGcsNode::with_shards(id, self.store.clone(), self.shards);
            let actual = self.sim.add_node(site, Box::new(node));
            assert_eq!(actual, id, "node id allocation must be dense");
            self.nodes.push(id);
            ids.push(id);
        }
        ids
    }

    /// Schedules a command on one node at virtual time `at`.
    pub fn command(&mut self, at: SimTime, node: NodeId, cmd: &Command) {
        let payload = encode_command(cmd);
        self.sim.schedule_packet(
            at,
            Packet {
                src: node,
                dst: node,
                payload,
            },
        );
    }

    /// Schedules static creation of a group on every listed member.
    pub fn create_group(
        &mut self,
        at: SimTime,
        group: &GroupId,
        config: &GroupConfig,
        members: &[NodeId],
    ) {
        for &m in members {
            self.command(
                at,
                m,
                &Command::Create {
                    group: group.clone(),
                    config: config.clone(),
                    members: members.to_vec(),
                },
            );
        }
    }

    /// Schedules a multicast from `node`.
    pub fn multicast(
        &mut self,
        at: SimTime,
        node: NodeId,
        group: &GroupId,
        order: DeliveryOrder,
        payload: impl Into<Bytes>,
    ) {
        self.command(
            at,
            node,
            &Command::Multicast {
                group: group.clone(),
                order,
                payload: payload.into(),
            },
        );
    }

    /// Runs the simulator to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// The durable node state of `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not added through this harness.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &DurableGcsNode {
        self.sim
            .node_ref::<DurableGcsNode>(id)
            .expect("durable node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    fn peer_config() -> GroupConfig {
        GroupConfig::peer().with_time_silence(Duration::from_millis(20))
    }

    #[test]
    fn recovery_msgs_round_trip_and_reject_noise() {
        let msgs = [
            RecoveryMsg::XferRequest {
                group: GroupId::new("ga"),
                floor: 7,
            },
            RecoveryMsg::XferChunk {
                group: GroupId::new("ga"),
                start: 7,
                records: vec![DeliveredRec {
                    sender: NodeId::from_index(1),
                    order: DeliveryOrder::Total,
                    lamport: 3,
                    payload: Bytes::from_static(b"m"),
                }],
                done: true,
            },
        ];
        for msg in msgs {
            let framed = encode_recovery(&msg);
            assert_eq!(decode_recovery(&framed).unwrap().unwrap(), msg);
        }
        assert!(decode_recovery(b"not recovery traffic").is_none());
        let mut bad = encode_recovery(&RecoveryMsg::XferRequest {
            group: GroupId::new("ga"),
            floor: 0,
        })
        .to_vec();
        bad[6] = 9; // discriminant
        assert!(decode_recovery(&bad).unwrap().is_err());
    }

    #[test]
    fn crashed_node_recovers_rejoins_and_fetches_the_delta() {
        let mut h = DurableHarness::new(SimConfig::lan(11));
        let ids = h.add_nodes(Site::Lan, 3);
        let ga = GroupId::new("ga");
        h.create_group(ms(1), &ga, &peer_config(), &ids);
        // Rounds of totally ordered traffic; n2 dies mid-stream and
        // later rounds outlive its recovery.
        for round in 0..12u64 {
            for (i, &id) in ids.iter().enumerate() {
                h.multicast(
                    ms(30 + round * 120 + i as u64 * 7),
                    id,
                    &ga,
                    DeliveryOrder::Total,
                    format!("ga/n{i}/r{round}"),
                );
            }
        }
        h.sim.schedule_crash(ms(300), ids[2]);
        h.sim.schedule_restart(ms(700), ids[2]);
        h.run_until(ms(3500));

        let victim = h.node(ids[2]);
        // Replay reproduced the pre-crash delivery sequence exactly.
        let pre = DurableGcsNode::delivered_recs(&victim.pre_crash_outputs, &ga);
        assert!(!pre.is_empty(), "victim delivered nothing before crash");
        assert_eq!(victim.replayed.get(&ga).unwrap(), &pre);
        // It rejoined and kept delivering.
        assert!(
            victim.rejoined_at.contains_key(&ga),
            "victim never rejoined"
        );
        assert!(
            !victim.delivered(&ga).is_empty(),
            "victim delivered nothing after recovery"
        );
        // Delta transfer shipped only the missed suffix.
        let survivor = h.node(ids[0]);
        let full = DurableGcsNode::delivered_recs(&survivor.outputs, &ga);
        let full_bytes: u64 = full.iter().map(|r| r.payload.len() as u64).sum();
        let delta_bytes = *victim.delta_bytes.get(&ga).unwrap_or(&0);
        assert!(
            delta_bytes < full_bytes,
            "delta {delta_bytes} not smaller than full history {full_bytes}"
        );
        // The replayed prefix + fetched delta lines up with the
        // survivor's history prefix.
        // Replayed prefix + delta + post-recovery deliveries converge to
        // the never-crashed member's history, byte for byte: the delta
        // is served at the rejoin view boundary, so nothing falls in the
        // gap between state transfer and the first post-rejoin delivery.
        let delta = victim.delta_records.get(&ga).cloned().unwrap_or_default();
        assert!(!delta.is_empty(), "no records travelled as delta");
        let mut victim_total = pre.clone();
        victim_total.extend(delta);
        victim_total.extend(DurableGcsNode::delivered_recs(&victim.outputs, &ga));
        assert_eq!(
            victim_total, full,
            "victim's converged history differs from the survivor's"
        );
        // The contact served the delta through replay admission: the
        // chunks passed its flow controller outside the live window.
        assert!(
            survivor
                .gcs
                .flow_of(&ga)
                .is_some_and(|f| f.replayed_count() > 0),
            "state transfer bypassed the flow controller's replay path"
        );
    }
}
