/root/repo/target/debug/deps/failover-7fdfa45b3175107e.d: tests/tests/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-7fdfa45b3175107e.rmeta: tests/tests/failover.rs Cargo.toml

tests/tests/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
