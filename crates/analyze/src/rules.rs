//! The NewTop rule families.
//!
//! Two tiers. The *per-body* families scan each non-test function's
//! token stream independently (determinism, boundedness, direct lock
//! hygiene, durability, cross-shard channel ownership) — exactly the
//! PR 5 shapes. The *reachability* families run over the workspace
//! [`crate::graph::CallGraph`] and ask questions no single body can
//! answer: is a panic reachable from a decode boundary two calls away?
//! do two functions acquire the same pair of locks in opposite orders?
//! does a protocol handler launder wall-clock time through a helper
//! crate? can a shard-worker event handler block?
//!
//! Every rule stays deliberately over-approximate (name-based
//! resolution, token-shape matching): the committed allowlist absorbs
//! the few justified exceptions, the committed `analyze.baseline.json`
//! must stay empty of protocol findings, and `--self-test` proves each
//! family fires on graph-shaped bad input.

use crate::graph::{CallGraph, FnId, SEND_LIKE};
use crate::items::{FnItem, ParsedFile};
use crate::lexer::{TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Rule family identifiers (used in findings, IDs, and `analyze.allow`).
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_PANIC_FREE: &str = "panic-free";
pub const RULE_BOUNDED: &str = "bounded";
pub const RULE_LOCK_HYGIENE: &str = "lock-hygiene";
pub const RULE_DURABILITY: &str = "durability";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_TAINT: &str = "determinism-taint";
pub const RULE_BLOCKING: &str = "blocking-in-worker";

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line of the offending token.
    pub line: u32,
    /// Rule family (`RULE_*`).
    pub rule: &'static str,
    /// Enclosing function name (allowlist key).
    pub func: String,
    /// Violation kind slug — the stable-ID discriminator within a
    /// (rule, file, fn) cluster; never carries line numbers.
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Crates whose code must be deterministic (rule 1): the protocol
/// decision logic. `newtop-net` is excluded — it owns the transports and
/// the blessed `time::Clock` abstraction itself.
pub const PROTOCOL_CRATES: &[&str] = &["gcs", "invocation", "flow", "core", "check"];

/// The only crate allowed to construct unbounded channels (rule 3): the
/// flow-control crate owns every queue discipline.
pub const BOUNDED_EXEMPT_CRATE: &str = "flow";

/// Crates traversed for transitive panic-freedom (rule 2). PR 5 scoped
/// this to the four crates holding decode entry points; the call graph
/// now follows message paths wherever they go — through the flow queues,
/// the shard runtime, and `newtop-dir`'s recovery code. The harness
/// crates (`check`, `workloads`, `bench`, the analyzer) and `newtop-net`
/// (transport/clock owner, threaded code with legitimate startup
/// panics) stay out: their name collisions would only manufacture
/// noise, and nothing on a message path calls into them.
pub const PANIC_FREE_CRATES: &[&str] = &["gcs", "orb", "invocation", "core", "flow", "rt", "dir"];

/// Network-input entry points (rule 2). `owner`/`name` of `None` match
/// anything: every `CdrDecoder` method is a decode boundary, and every
/// `from_cdr`/`from_frame`/`decode` constructor on any message type is
/// one too, as is `GcsMember::on_message` (the member ingest path).
pub const ENTRY_POINTS: &[(Option<&str>, Option<&str>)] = &[
    (Some("CdrDecoder"), None),
    (None, Some("from_cdr")),
    (None, Some("from_frame")),
    (None, Some("decode")),
    (Some("GcsMember"), Some("on_message")),
];

/// Shard-worker event handlers (rules 2 and 8): the functions the
/// `newtop-rt` event loop and `newtop-rt-shard{k}-{node}` decode workers
/// invoke per packet/timer/frame. Everything reachable from these runs
/// on a worker thread with the whole node behind it: a panic kills the
/// node, a blocking call stalls every group on the shard.
pub const WORKER_ENTRY_POINTS: &[(Option<&str>, Option<&str>)] = &[
    (Some("Nso"), Some("on_packet")),
    (Some("Nso"), Some("on_timer")),
    (Some("Nso"), Some("on_gcs_message")),
    (Some("Nso"), Some("decode_gcs_frame")),
    (Some("ShardedGcs"), Some("on_message")),
    (Some("ShardedGcs"), Some("on_timer")),
];

/// Handler names that seed the determinism-taint pass (rule 7): the
/// simulator/NSO callback surface, wherever it is implemented.
pub const HANDLER_NAMES: &[&str] = &[
    "on_event",
    "on_message",
    "on_packet",
    "on_timer",
    "on_start",
    "on_output",
    "on_gcs_message",
];

/// Crates whose handler impls seed the taint pass: the protocol crates
/// plus the deterministic harness layers whose replay guarantees
/// (campaign seeds, scale-model digests) depend on them.
pub const TAINT_SEED_CRATES: &[&str] = &[
    "gcs",
    "invocation",
    "flow",
    "core",
    "check",
    "dir",
    "workloads",
];

/// Files where wall-clock and OS primitives are *blessed*: the clock
/// abstraction itself and the threaded transports. The taint pass never
/// reports inside these (nor inside `rt`/`bench`/`analyze`, which are
/// wall-clock worlds by design).
pub const TAINT_BLESSED_FILES: &[&str] = &[
    "crates/net/src/time.rs",
    "crates/net/src/tcp.rs",
    "crates/net/src/channel.rs",
];

/// Extracts `gcs` from `crates/gcs/src/member.rs`.
#[must_use]
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn is_protocol_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| PROTOCOL_CRATES.contains(&c))
}

/// Runs every rule family over the parsed workspace.
#[must_use]
pub fn run_all(files: &[ParsedFile]) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let mut out = Vec::new();
    determinism(files, &mut out);
    bounded(files, &mut out);
    lock_hygiene(files, &mut out);
    cross_shard_channels(files, &mut out);
    durability(files, &mut out);
    panic_free(&graph, &mut out);
    lock_order(&graph, &mut out);
    transitive_send_under_lock(&graph, &mut out);
    determinism_taint(&graph, &mut out);
    blocking_in_worker(&graph, &mut out);
    out.sort();
    out.dedup();
    out
}

fn production_fns(files: &[ParsedFile]) -> impl Iterator<Item = (&ParsedFile, &FnItem)> {
    files.iter().flat_map(|f| {
        f.fns
            .iter()
            .filter(|item| !item.is_test)
            .map(move |item| (f, item))
    })
}

fn body<'a>(file: &'a ParsedFile, item: &FnItem) -> &'a [Token] {
    &file.tokens[item.body.0..item.body.1]
}

/// Seeds matching the given (owner, name) patterns, restricted by a
/// scope predicate.
fn seeds_matching(
    graph: &CallGraph<'_>,
    patterns: &[(Option<&str>, Option<&str>)],
    in_scope: impl Fn(FnId) -> bool,
) -> Vec<FnId> {
    let mut seeds: Vec<FnId> = Vec::new();
    for (owner, name) in patterns {
        seeds.extend(graph.matching(*owner, *name).filter(|&id| in_scope(id)));
    }
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

// ---------------------------------------------------------------- rule 1

/// Determinism: protocol crates must not read wall-clock time, sample
/// OS randomness, or make decisions over `HashMap`/`HashSet` iteration
/// order. All time flows through `newtop_net::time`; all keyed protocol
/// state uses ordered maps.
fn determinism(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        if !is_protocol_crate(&file.path) {
            continue;
        }
        let toks = body(file, item);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "Instant" if path_call(toks, i, "now") => Some((
                    "instant-now",
                    "Instant::now() in protocol code; route time through newtop_net::time",
                )),
                "SystemTime" => Some((
                    "system-time",
                    "SystemTime in protocol code; route time through newtop_net::time",
                )),
                "thread_rng" | "from_entropy" => Some((
                    "os-random",
                    "OS randomness in protocol code; seed RNGs explicitly",
                )),
                "HashMap" | "HashSet" => Some((
                    "hash-iter",
                    "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet in protocol state",
                )),
                _ => None,
            };
            if let Some((kind, m)) = hit {
                out.push(finding(RULE_DETERMINISM, file, item, t, kind, m));
            }
        }
    }
}

/// True when `toks[i]` starts the path call `Ident::method(`.
fn path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == method)
}

// ---------------------------------------------------------------- rule 2

/// Transitive panic-freedom on message paths: no `unwrap`/`expect`/
/// panicking macro/raw indexing/modulo-by-variable in any function
/// reachable from a network-input decode entry point or a shard-worker
/// event handler. Malformed bytes must surface as
/// `NewtopError::Malformed`, never as a panic — and a panic *anywhere*
/// on the path takes the worker thread (and with it the node) down.
fn panic_free(graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let in_scope = |id: FnId| {
        let path = &graph.file(id).path;
        crate_of(path).is_some_and(|c| PANIC_FREE_CRATES.contains(&c)) && !path.contains("testkit")
    };
    let mut seeds = seeds_matching(graph, ENTRY_POINTS, in_scope);
    seeds.extend(seeds_matching(graph, WORKER_ENTRY_POINTS, in_scope));
    seeds.sort_unstable();
    seeds.dedup();
    let reachable = graph.reachable(&seeds, in_scope);

    for &id in &reachable {
        let file = graph.file(id);
        let item = graph.item(id);
        let toks = graph.body(id);
        for (i, t) in toks.iter().enumerate() {
            match t.kind {
                TokKind::Ident => {
                    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                    let after_dot = i > 0 && toks[i - 1].is_punct('.');
                    let hit = match t.text.as_str() {
                        "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => Some((
                            "panic-macro",
                            format!(
                                "{}! on a message path; return NewtopError::Malformed",
                                t.text
                            ),
                        )),
                        "unwrap" | "expect" if after_dot => Some((
                            "unwrap",
                            format!(
                                ".{}() on a message path; return NewtopError::Malformed",
                                t.text
                            ),
                        )),
                        _ => None,
                    };
                    if let Some((kind, m)) = hit {
                        out.push(finding(RULE_PANIC_FREE, file, item, t, kind, &m));
                    }
                }
                TokKind::Punct if t.text == "[" && i > 0 => {
                    let prev = &toks[i - 1];
                    let indexing = matches!(prev.kind, TokKind::Ident | TokKind::Lit)
                        && !is_keyword(&prev.text)
                        || prev.is_punct(')')
                        || prev.is_punct(']');
                    if indexing {
                        out.push(finding(
                            RULE_PANIC_FREE,
                            file,
                            item,
                            t,
                            "indexing",
                            "slice/map indexing on a message path can panic; use .get() and return NewtopError::Malformed",
                        ));
                    }
                }
                TokKind::Punct if t.text == "%" && i > 0 => {
                    // `x % var` panics when the divisor is zero; modulo
                    // by a literal is always fine. `%=` never lexes here
                    // (the next token would be `=`).
                    let next_is_var = toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Ident && !is_keyword(&n.text));
                    let prev_is_value = matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Lit)
                        || toks[i - 1].is_punct(')')
                        || toks[i - 1].is_punct(']');
                    if next_is_var && prev_is_value {
                        out.push(finding(
                            RULE_PANIC_FREE,
                            file,
                            item,
                            t,
                            "modulo",
                            "modulo by a non-constant on a message path panics when the divisor is zero; guard it and return NewtopError::Malformed",
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

fn is_keyword(s: &str) -> bool {
    // `let [a, b] = ...` and `ref`/`box` patterns start arrays, not
    // index expressions.
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "while"
            | "loop"
            | "mut"
            | "move"
            | "as"
            | "let"
            | "ref"
    )
}

/// Names invoked as `name(...)` or `.name(...)` inside a body (used by
/// the durability rule's crate-local reachability).
fn callee_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            names.insert(t.text.clone());
        }
    }
    names
}

// ---------------------------------------------------------------- rule 3

/// Boundedness: PR 4 replaced every unbounded channel with
/// `newtop_flow::queue`; this rule locks that in. Only `newtop-flow`
/// itself may construct unbounded channels.
fn bounded(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        if crate_of(&file.path) == Some(BOUNDED_EXEMPT_CRATE) {
            continue;
        }
        let toks = body(file, item);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if t.text == "unbounded" && call {
                out.push(finding(
                    RULE_BOUNDED,
                    file,
                    item,
                    t,
                    "unbounded",
                    "unbounded channel outside newtop-flow; use newtop_flow::queue::bounded",
                ));
            }
            if t.text == "channel"
                && call
                && i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks
                    .get(i.wrapping_sub(3))
                    .is_some_and(|p| p.kind == TokKind::Ident && p.text == "mpsc")
            {
                out.push(finding(
                    RULE_BOUNDED,
                    file,
                    item,
                    t,
                    "std-mpsc",
                    "std::sync::mpsc::channel is unbounded; use newtop_flow::queue::bounded",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- rule 4

/// Lock hygiene: a `Mutex`/`RwLock` guard bound with `let` must be
/// dropped before any transport send or queue hand-off in the same
/// block. Holding one across `send`/`write_all`/`connect`/… is the
/// deadlock and priority-inversion shape PR 4 removed from
/// `tcp.rs`/`channel.rs`.
fn lock_hygiene(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        let toks = body(file, item);
        let mut i = 0;
        while i < toks.len() {
            if let Some((guard, stmt_end)) = guard_binding(toks, i) {
                scan_guard_scope(file, item, toks, stmt_end, &guard, out);
                i = stmt_end + 1;
            } else {
                i += 1;
            }
        }
    }
}

/// Matches `let [mut] NAME = <expr containing .lock()/.read()/.write()>;`
/// starting at `i`; returns the guard name and the index of the `;`.
fn guard_binding(toks: &[Token], i: usize) -> Option<(String, usize)> {
    if !toks[i].is_ident("let") {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks
        .get(j)
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    // Scan the initializer to the statement's `;` at depth 0 and look
    // for a lock acquisition. Chained recovery like
    // `.lock().unwrap_or_else(|e| e.into_inner())` still binds a guard.
    let mut depth = 0i32;
    let mut acquires = false;
    let mut k = j + 2;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct if depth == 0 && t.text == ";" => {
                return if acquires { Some((name, k)) } else { None };
            }
            TokKind::Punct if matches!(t.text.as_str(), "(" | "[" | "{") => depth += 1,
            TokKind::Punct if matches!(t.text.as_str(), ")" | "]" | "}") => depth -= 1,
            // Depth 0 only: a lock taken inside a nested block/closure
            // in the initializer dies before the binding completes.
            TokKind::Ident
                if depth == 0
                    && matches!(t.text.as_str(), "lock" | "read" | "write")
                    && k >= 1
                    && toks[k - 1].is_punct('.')
                    && toks.get(k + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                acquires = true;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Scans from the end of a guard binding to the end of its enclosing
/// block (or an explicit `drop(guard)`), flagging send-like calls made
/// while the guard is live.
fn scan_guard_scope(
    file: &ParsedFile,
    item: &FnItem,
    toks: &[Token],
    stmt_end: usize,
    guard: &str,
    out: &mut Vec<Finding>,
) {
    let mut depth = 0i32;
    let mut i = stmt_end + 1;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => depth += 1,
            TokKind::Punct if t.text == "}" => {
                depth -= 1;
                if depth < 0 {
                    return; // guard's block closed; guard dropped
                }
            }
            // `drop(guard)` releases it early.
            TokKind::Ident
                if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident(guard))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct(')')) =>
            {
                return;
            }
            TokKind::Ident
                if SEND_LIKE.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(finding(
                    RULE_LOCK_HYGIENE,
                    file,
                    item,
                    t,
                    "held-across-send",
                    &format!(
                        "`{}` called while lock guard `{guard}` is held; drop the guard before the hand-off",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
        i += 1;
    }
}

/// Lock-hygiene extension (PR 6): cross-shard channel ownership. A
/// function that constructs channel endpoints while dealing in shards is
/// wiring a cross-shard hand-off, and only the `newtop-rt` shard-worker
/// pipeline — the functions that actually spawn the
/// `newtop-rt-shard{k}-{node}` threads — may own those channels.
/// Open-coding a shard fan-in/fan-out anywhere else bypasses the
/// runtime's bounded ingress discipline.
///
/// Token shape, over-approximate like the other families: a production
/// function body that mentions a `shard*` identifier AND calls
/// `bounded(...)`/`unbounded(...)` (turbofish included) is flagged
/// unless it lives in crate `rt` and also spawns a worker thread.
fn cross_shard_channels(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for (file, item) in production_fns(files) {
        // The analyzer's own rule plumbing names both shards and the
        // bounded() rule function; it is not protocol wiring.
        if crate_of(&file.path) == Some("analyze") {
            continue;
        }
        let toks = body(file, item);
        let mentions_shard = toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("shard"));
        if !mentions_shard {
            continue;
        }
        let spawns_worker = toks.iter().enumerate().any(|(i, t)| {
            t.kind == TokKind::Ident
                && t.text == "spawn"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        });
        if crate_of(&file.path) == Some("rt") && spawns_worker {
            continue;
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "bounded" | "unbounded")
                && channel_ctor_call(toks, i)
            {
                out.push(finding(
                    RULE_LOCK_HYGIENE,
                    file,
                    item,
                    t,
                    "cross-shard-channel",
                    "cross-shard channel constructed outside the newtop-rt shard workers; route shard fan-in/fan-out through the runtime's ingress pipeline",
                ));
            }
        }
    }
}

/// Matches `name(` or the turbofish form `name::<T>(` at `toks[i]`.
fn channel_ctor_call(toks: &[Token], i: usize) -> bool {
    if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return true;
    }
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
}

// ---------------------------------------------------------------- rule 5

/// The crate whose event handlers stage durable log writes (rule 5).
pub const DURABLE_CRATE: &str = "dir";

/// Event-handler entry points that acknowledge work by returning
/// (rule 5): the simulator / NSO callback surface. `on_restart` is
/// deliberately absent — a restart acknowledges nothing; it only
/// discards staged bytes.
pub const DURABLE_HANDLERS: &[&str] =
    &["on_event", "on_packet", "on_timer", "on_start", "on_output"];

/// Durability (PR 9): no buffered log write may be acknowledged before
/// its flush point. In the durable-log crate, an event handler whose
/// call closure stages a store append (an `.append(` method call) must
/// also reach a flush (a `.sync(` method call) before it returns —
/// otherwise the handler acknowledges a write that is still sitting in
/// the OS buffer, and a crash loses it. Reachability is the same
/// name-based over-approximation as rule 2. `DurableStore`'s own
/// internals frame onto plain buffers (`append_frame`; `Vec::append`
/// inside `sync`) and only enter a closure through the very `.sync(`
/// call that satisfies the rule, so they never trip it.
fn durability(files: &[ParsedFile], out: &mut Vec<Finding>) {
    // Name → function occurrences within the durable crate.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut handlers: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if crate_of(&file.path) != Some(DURABLE_CRATE) {
            continue;
        }
        for (ii, item) in file.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push((fi, ii));
            if DURABLE_HANDLERS.contains(&item.name.as_str()) {
                handlers.push((fi, ii));
            }
        }
    }
    for &handler in &handlers {
        let mut reachable: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut queue = vec![handler];
        reachable.insert(handler);
        while let Some((fi, ii)) = queue.pop() {
            let file = &files[fi];
            for callee in callee_names(body(file, &file.fns[ii])) {
                if let Some(targets) = by_name.get(callee.as_str()) {
                    for &t in targets {
                        if reachable.insert(t) {
                            queue.push(t);
                        }
                    }
                }
            }
        }
        // One pass over the closure: where the appends are staged, and
        // whether any flush is reachable at all.
        let mut appends: Vec<(usize, usize, usize)> = Vec::new();
        let mut flushed = false;
        for &(fi, ii) in &reachable {
            let file = &files[fi];
            let toks = body(file, &file.fns[ii]);
            for (i, t) in toks.iter().enumerate() {
                let method_call = t.kind == TokKind::Ident
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if !method_call {
                    continue;
                }
                match t.text.as_str() {
                    "append" => appends.push((fi, ii, i)),
                    "sync" => flushed = true,
                    _ => {}
                }
            }
        }
        if flushed || appends.is_empty() {
            continue;
        }
        let hname = files[handler.0].fns[handler.1].name.clone();
        for (fi, ii, i) in appends {
            let file = &files[fi];
            let item = &file.fns[ii];
            let tok = &body(file, item)[i];
            out.push(finding(
                RULE_DURABILITY,
                file,
                item,
                tok,
                "unsynced-append",
                &format!(
                    "durable append with no `sync` reachable before `{hname}` returns; a crash after the handler acknowledges loses the staged write"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- rule 6

/// Lock-order deadlock detection: build the workspace lock-acquisition
/// graph — an edge A → B wherever lock B is acquired (directly, or
/// transitively through any call edge) while lock A is held — and flag
/// every cycle. Two threads walking a cycle's edges in opposite orders
/// deadlock; the PR 9 durability audit caught two such sites by hand,
/// this rule catches them structurally.
///
/// Lock identity is the crate-qualified final path segment of the
/// receiver (`self.shared.conns.lock()` in `crates/net` → `net/conns`),
/// an over-approximation both ways: distinct instances with one name
/// alias (may over-flag), one instance reached through differently
/// named bindings splits (may under-flag; the self-test pins the
/// canonical shapes). Same-name re-acquisition (A while A) is skipped —
/// indistinguishable from two instances of one shape.
fn lock_order(graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    // (held, acquired) → first witness (fn id, line). Call-site edges
    // skip send-like callees: a lock held across a transport hand-off
    // is the lock-hygiene family's finding, not an acquisition order.
    let mut edges: BTreeMap<(String, String), (FnId, u32)> = BTreeMap::new();
    let acquires = graph.acquires_transitively();
    for (id, node) in graph.fns.iter().enumerate() {
        for acq in &node.locks {
            for h in &acq.held {
                if *h != acq.lock {
                    edges
                        .entry((h.clone(), acq.lock.clone()))
                        .or_insert((id, acq.line));
                }
            }
        }
        for &(callee, ci) in &graph.edges[id] {
            let site = &node.calls[ci];
            if site.locks_held.is_empty() || SEND_LIKE.contains(&site.name.as_str()) {
                continue;
            }
            for h in &site.locks_held {
                for a in &acquires[callee] {
                    if a != h {
                        edges
                            .entry((h.clone(), a.clone()))
                            .or_insert((id, site.line));
                    }
                }
            }
        }
    }

    // A deadlock needs a cycle; a cycle lives entirely inside one
    // strongly connected component of the lock graph. Enumerating every
    // elementary cycle of a dense component is combinatorial noise (one
    // bad cluster of five locks has dozens), so the finding unit is the
    // SCC: one report per mutually-reachable lock cluster, anchored at
    // the lexicographically first witness edge inside it. The graph is
    // tiny (one node per distinct lock name), so pairwise reachability
    // is plenty.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (h, a) in edges.keys() {
        adj.entry(h.as_str()).or_default().insert(a.as_str());
        adj.entry(a.as_str()).or_default();
    }
    let reach = |from: &str| -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for &next in adj.get(n).into_iter().flatten() {
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        seen
    };
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let reachable: BTreeMap<&str, BTreeSet<&str>> = nodes.iter().map(|&n| (n, reach(n))).collect();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        if assigned.contains(n) || !reachable[n].contains(n) {
            continue; // not on any cycle
        }
        let scc: Vec<&str> = nodes
            .iter()
            .copied()
            .filter(|&m| reachable[n].contains(m) && reachable[m].contains(n))
            .collect();
        assigned.extend(scc.iter().copied());
        // Witness: the first edge inside the component.
        let &(wid, wline) = edges
            .iter()
            .find(|((h, a), _)| scc.contains(&h.as_str()) && scc.contains(&a.as_str()))
            .map(|(_, w)| w)
            .expect("an SCC on a cycle has an internal edge");
        let file = graph.file(wid);
        let item = graph.item(wid);
        out.push(Finding {
            file: file.path.clone(),
            line: wline,
            rule: RULE_LOCK_ORDER,
            func: item.name.clone(),
            kind: "cycle",
            message: format!(
                "lock-order cycle among {{{}}}: two threads taking these locks in opposite orders deadlock; impose one acquisition order",
                scc.join(", ")
            ),
        });
    }
}

/// Lock-hygiene, made transitive: a call made while a guard is held,
/// whose callee *reaches* a transport send or queue hand-off any number
/// of calls down, holds that lock across the hand-off just as surely as
/// a direct send in the same body (which the per-body family already
/// flags; send-like callee names are skipped here to avoid
/// double-reporting).
fn transitive_send_under_lock(graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let reaches = graph.reaches_send();
    for (id, node) in graph.fns.iter().enumerate() {
        let mut flagged_sites: BTreeSet<usize> = BTreeSet::new();
        for &(callee, ci) in &graph.edges[id] {
            let site = &node.calls[ci];
            if site.locks_held.is_empty()
                || SEND_LIKE.contains(&site.name.as_str())
                || !reaches[callee]
                || !flagged_sites.insert(ci)
            {
                continue;
            }
            let file = graph.file(id);
            let item = graph.item(id);
            out.push(Finding {
                file: file.path.clone(),
                line: site.line,
                rule: RULE_LOCK_HYGIENE,
                func: item.name.clone(),
                kind: "transitive-send",
                message: format!(
                    "`{}` called while lock guard `{}` is held, and it transitively reaches a transport send/queue hand-off; drop the guard first",
                    site.name,
                    site.locks_held.join("`, `"),
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- rule 7

/// Determinism taint: wall-clock time, OS randomness, or unordered-map
/// state in *any* function reachable from a protocol or deterministic-
/// harness event handler — wherever that function lives. The per-body
/// determinism family polices the protocol crates; this closes the
/// laundering hole where a protocol handler calls a helper in `orb`,
/// `dir`, `workloads`, or the simulator and the helper reads the clock.
fn determinism_taint(graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let seed_scope = |id: FnId| {
        let path = &graph.file(id).path;
        crate_of(path).is_some_and(|c| TAINT_SEED_CRATES.contains(&c)) && !path.contains("testkit")
    };
    let patterns: Vec<(Option<&str>, Option<&str>)> =
        HANDLER_NAMES.iter().map(|n| (None, Some(*n))).collect();
    let seeds = seeds_matching(graph, &patterns, seed_scope);
    // Traversal crosses every crate except the wall-clock worlds; the
    // blessed transport/clock files terminate traversal too (whatever
    // they call is their business).
    let traverse = |id: FnId| {
        let path = &graph.file(id).path;
        !matches!(crate_of(path), Some("rt" | "bench" | "analyze"))
            && !TAINT_BLESSED_FILES.contains(&path.as_str())
            && !path.contains("testkit")
    };
    let reachable = graph.reachable(&seeds, traverse);
    for &id in &reachable {
        let file = graph.file(id);
        // The per-body family owns the protocol crates; report only the
        // laundering targets outside them.
        if is_protocol_crate(&file.path) {
            continue;
        }
        let item = graph.item(id);
        let toks = graph.body(id);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "Instant" if path_call(toks, i, "now") => Some((
                    "instant-now",
                    "Instant::now() reachable from a protocol handler; take SimTime/Clock as a parameter",
                )),
                "SystemTime" => Some((
                    "system-time",
                    "SystemTime reachable from a protocol handler; take SimTime/Clock as a parameter",
                )),
                "thread_rng" | "from_entropy" => Some((
                    "os-random",
                    "OS randomness reachable from a protocol handler; thread a seeded RNG through",
                )),
                "HashMap" | "HashSet" => Some((
                    "hash-iter",
                    "HashMap/HashSet reachable from a protocol handler can leak iteration order into protocol state; use BTreeMap/BTreeSet",
                )),
                _ => None,
            };
            if let Some((kind, m)) = hit {
                out.push(finding(RULE_TAINT, file, item, t, kind, m));
            }
        }
    }
}

// ---------------------------------------------------------------- rule 8

/// Blocking tokens for rule 8, as (kind, message) classifiers run over
/// each reachable body.
fn blocking_hit(toks: &[Token], i: usize) -> Option<(&'static str, String)> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let after_dot = i > 0 && toks[i - 1].is_punct('.');
    match t.text.as_str() {
        "sleep" if call => Some((
            "sleep",
            "thread sleep on a shard-worker path stalls every group on the shard".to_owned(),
        )),
        "File" | "OpenOptions" if path_call_any(toks, i) => Some((
            "file-io",
            format!("{} file I/O on a shard-worker path blocks the worker", t.text),
        )),
        "fs" if toks.get(i + 1).is_some_and(|n| n.is_punct(':')) => Some((
            "file-io",
            "std::fs file I/O on a shard-worker path blocks the worker".to_owned(),
        )),
        "sync_all" | "sync_data" if call && after_dot => Some((
            "file-io",
            format!("fsync (`{}`) on a shard-worker path blocks the worker", t.text),
        )),
        "wait" | "wait_timeout" | "park" if call && after_dot => Some((
            "wait",
            format!(
                "`{}` on a shard-worker path is an unbounded wait inside the event pipeline",
                t.text
            ),
        )),
        "recv" | "recv_timeout" if call && after_dot => Some((
            "blocking-recv",
            format!(
                "blocking `{}` on a shard-worker path; workers may only block on their own ingress queue",
                t.text
            ),
        )),
        // Thread join takes no arguments; `join("...")` on slices does.
        "join"
            if call
                && after_dot
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')')) =>
        {
            Some((
                "join",
                "thread join on a shard-worker path blocks the worker".to_owned(),
            ))
        }
        _ => None,
    }
}

/// `Ident::` shape (any method).
fn path_call_any(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
}

/// Blocking-in-shard-worker: no sleep, file I/O, fsync, condvar wait,
/// thread join, or foreign blocking recv anywhere reachable from the
/// shard-worker event handlers. The `newtop-rt` loops themselves block
/// on their own ingress queues by design — those loop bodies are not
/// seeds; the handlers they invoke are.
fn blocking_in_worker(graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    // Traversal stays inside the sans-IO protocol stack (the dependency
    // closure of the worker entry points' crates). The threaded
    // transports and the flow queue internals are the blocking
    // primitives' rightful owners — a worker reaches them only through
    // the loop scaffolding, which is not seeded.
    let in_scope = |id: FnId| {
        let path = &graph.file(id).path;
        matches!(
            crate_of(path),
            Some("core" | "gcs" | "orb" | "invocation" | "flow" | "net" | "rt" | "dir")
        ) && !path.contains("testkit")
            && !TAINT_BLESSED_FILES.contains(&path.as_str())
    };
    let seeds = seeds_matching(graph, WORKER_ENTRY_POINTS, in_scope);
    let reachable = graph.reachable(&seeds, in_scope);
    for &id in &reachable {
        let file = graph.file(id);
        let item = graph.item(id);
        let toks = graph.body(id);
        for i in 0..toks.len() {
            if let Some((kind, m)) = blocking_hit(toks, i) {
                out.push(finding(RULE_BLOCKING, file, item, &toks[i], kind, &m));
            }
        }
    }
}

fn finding(
    rule: &'static str,
    file: &ParsedFile,
    item: &FnItem,
    tok: &Token,
    kind: &'static str,
    message: &str,
) -> Finding {
    Finding {
        file: file.path.clone(),
        line: tok.line,
        rule,
        func: item.name.clone(),
        kind,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        run_all(&[parse_file(path, lex(src))])
    }

    fn check_files(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, lex(s))).collect();
        run_all(&parsed)
    }

    #[test]
    fn determinism_flags_wall_clock_in_protocol_crates() {
        let f = check(
            "crates/gcs/src/member.rs",
            "fn tick(&mut self) { let t = Instant::now(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_DETERMINISM);
    }

    #[test]
    fn determinism_ignores_net_and_tests() {
        assert!(check(
            "crates/net/src/tcp.rs",
            "fn tick() { let t = Instant::now(); }",
        )
        .is_empty());
        assert!(check(
            "crates/gcs/src/member.rs",
            "#[cfg(test)] mod tests { fn tick() { let t = Instant::now(); } }",
        )
        .is_empty());
    }

    #[test]
    fn determinism_flags_hash_maps() {
        let f = check(
            "crates/core/src/nso.rs",
            "fn route(&self) {\n let m: HashMap<u32, u32> =\n HashMap::new(); }",
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == RULE_DETERMINISM));
    }

    #[test]
    fn panic_free_reaches_through_calls() {
        let f = check(
            "crates/orb/src/cdr.rs",
            "impl CdrDecoder { fn read_u8(&mut self) -> u8 { helper(self) } }\n\
             fn helper(d: &mut CdrDecoder) -> u8 { d.buf[0] }\n\
             fn unrelated(v: &[u8]) -> u8 { v[0] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PANIC_FREE);
        assert_eq!(f[0].func, "helper");
    }

    #[test]
    fn panic_free_reaches_two_calls_deep_across_files() {
        // The PR 5 scanner only followed one level of names within a
        // file set; the graph follows arbitrary depth across files and
        // crates (orb → gcs helper here).
        let f = check_files(&[
            (
                "crates/orb/src/cdr.rs",
                "impl CdrDecoder { fn read_u8(&mut self) -> u8 { step_one(self) } }",
            ),
            (
                "crates/orb/src/giop.rs",
                "fn step_one(d: &mut CdrDecoder) -> u8 { step_two(d) }",
            ),
            (
                "crates/orb/src/ior.rs",
                "fn step_two(d: &mut CdrDecoder) -> u8 { d.buf.pop().unwrap() }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PANIC_FREE);
        assert_eq!(f[0].func, "step_two");
        assert_eq!(f[0].kind, "unwrap");
    }

    #[test]
    fn panic_free_covers_shard_worker_handlers() {
        // `Nso::on_packet` is a worker entry point; a panic reachable
        // from it through a gcs helper is flagged even though no decode
        // entry point reaches it.
        let f = check_files(&[
            (
                "crates/core/src/nso.rs",
                "impl Nso { fn on_packet(&mut self, pkt: &Packet) { route_packet(pkt); } }",
            ),
            (
                "crates/gcs/src/engine.rs",
                "fn route_packet(pkt: &Packet) { let r: Option<u8> = None; r.expect(\"route\"); }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PANIC_FREE);
        assert_eq!(f[0].func, "route_packet");
    }

    #[test]
    fn panic_free_covers_dir_recovery_behind_decode() {
        // `dir`'s log decode path was outside PR 5's crate scope; the
        // graph's `decode` entry points now reach its recovery helpers.
        let f = check_files(&[
            (
                "crates/dir/src/log.rs",
                "impl LogRecord { fn decode(b: &[u8]) -> LogRecord { replay_record(b) } }",
            ),
            (
                "crates/dir/src/recovery.rs",
                "fn replay_record(b: &[u8]) -> LogRecord { let r: Option<LogRecord> = None; r.expect(\"replay\") }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PANIC_FREE);
        assert_eq!(f[0].func, "replay_record");
    }

    #[test]
    fn panic_free_flags_unwrap_expect_and_macros() {
        let f = check(
            "crates/gcs/src/message.rs",
            "impl GcsMessage { fn from_cdr(d: &[u8]) -> Self { let x: Option<u8> = None; x.unwrap(); x.expect(\"x\"); panic!(\"no\"); Self }}",
        );
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn panic_free_flags_modulo_by_variable() {
        let f = check(
            "crates/gcs/src/message.rs",
            "impl GcsMessage { fn from_cdr(d: &[u8], n: usize) -> usize { d.len() % n } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "modulo");
        // Modulo by a literal is fine.
        assert!(check(
            "crates/gcs/src/message.rs",
            "impl GcsMessage { fn from_cdr(d: &[u8]) -> usize { d.len() % 4 } }",
        )
        .is_empty());
    }

    #[test]
    fn panic_free_ignores_array_literals_and_types() {
        let f = check(
            "crates/orb/src/cdr.rs",
            "impl CdrDecoder { fn pad(&mut self) -> [u8; 4] { let b = [0u8; 4]; b } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bounded_flags_unbounded_outside_flow() {
        let f = check(
            "crates/net/src/channel.rs",
            "fn mk() { let (tx, rx) = unbounded(); let p = mpsc::channel(); }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == RULE_BOUNDED));
        assert!(check(
            "crates/flow/src/queue.rs",
            "fn mk() { let (tx, rx) = unbounded(); }",
        )
        .is_empty());
    }

    #[test]
    fn lock_hygiene_flags_send_under_guard() {
        let f = check(
            "crates/net/src/tcp.rs",
            "fn send(&self) { let mut conns = self.shared.conns.lock(); conns.stream.write_all(&frame); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_HYGIENE);
    }

    #[test]
    fn lock_hygiene_respects_block_end_and_drop() {
        assert!(check(
            "crates/net/src/channel.rs",
            "fn a(&self) { { let g = self.registry.read(); let tx = g.tx.clone(); } tx.try_send(m); }",
        )
        .is_empty());
        assert!(check(
            "crates/net/src/channel.rs",
            "fn a(&self) { let g = self.registry.read(); let tx = g.tx.clone(); drop(g); tx.try_send(m); }",
        )
        .is_empty());
    }

    #[test]
    fn transitive_send_under_lock_follows_call_edges() {
        let f = check(
            "crates/net/src/channel.rs",
            "fn outer(&self) { let g = self.registry.read(); self.forward(m); }\n\
             fn forward(&self, m: Frame) { self.tx.try_send(m); }",
        );
        assert!(
            f.iter()
                .any(|x| x.rule == RULE_LOCK_HYGIENE && x.kind == "transitive-send"),
            "{f:?}"
        );
        // Dropping the guard before the call is clean.
        let g = check(
            "crates/net/src/channel.rs",
            "fn outer(&self) { { let g = self.registry.read(); } self.forward(m); }\n\
             fn forward(&self, m: Frame) { self.tx.try_send(m); }",
        );
        assert!(g.is_empty(), "{g:?}");
    }

    #[test]
    fn lock_order_cycles_are_flagged() {
        let f = check_files(&[
            (
                "crates/gcs/src/engine.rs",
                "fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            ),
            (
                "crates/gcs/src/member.rs",
                "fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
            ),
        ]);
        let cycles: Vec<&Finding> = f.iter().filter(|x| x.rule == RULE_LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(cycles[0].message.contains("gcs/alpha"), "{f:?}");
        assert!(cycles[0].message.contains("gcs/beta"), "{f:?}");
    }

    #[test]
    fn lock_order_cycle_through_call_edge() {
        // fn one holds A and calls helper which takes B; fn two holds B
        // and calls other_helper which takes A — a cycle with no single
        // body acquiring both.
        let f = check_files(&[
            (
                "crates/flow/src/lib.rs",
                "fn one(&self) { let a = self.alpha.lock(); self.take_beta(); }\n\
                 fn take_beta(&self) { let b = self.beta.lock(); }",
            ),
            (
                "crates/flow/src/queue.rs",
                "fn two(&self) { let b = self.beta.lock(); self.take_alpha(); }\n\
                 fn take_alpha(&self) { let a = self.alpha.lock(); }",
            ),
        ]);
        assert!(
            f.iter().any(|x| x.rule == RULE_LOCK_ORDER),
            "cycle through call edges must be found: {f:?}"
        );
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let f = check_files(&[
            (
                "crates/gcs/src/engine.rs",
                "fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            ),
            (
                "crates/gcs/src/member.rs",
                "fn ab2(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            ),
        ]);
        assert!(f.iter().all(|x| x.rule != RULE_LOCK_ORDER), "{f:?}");
    }

    #[test]
    fn taint_catches_laundering_through_helper_crates() {
        // A gcs handler calls an orb helper that reads the wall clock:
        // outside the per-body family's crates, inside the graph's
        // reach.
        let f = check_files(&[
            (
                "crates/gcs/src/member.rs",
                "impl GcsMember { fn on_timer(&mut self, tag: u64) { jitter_ms(); } }",
            ),
            (
                "crates/orb/src/poa.rs",
                "fn jitter_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            ),
        ]);
        assert!(
            f.iter()
                .any(|x| x.rule == RULE_TAINT && x.func == "jitter_ms"),
            "{f:?}"
        );
    }

    #[test]
    fn taint_ignores_blessed_clock_and_unreachable_helpers() {
        // The blessed transport files may use wall-clock freely...
        let f = check_files(&[
            (
                "crates/gcs/src/member.rs",
                "impl GcsMember { fn on_timer(&mut self, tag: u64) { poll(); } }",
            ),
            (
                "crates/net/src/tcp.rs",
                "fn poll() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            ),
        ]);
        assert!(f.iter().all(|x| x.rule != RULE_TAINT), "{f:?}");
        // ...and helpers nothing reaches are not taint findings.
        let g = check(
            "crates/workloads/src/apps.rs",
            "fn lonely() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
        );
        assert!(g.iter().all(|x| x.rule != RULE_TAINT), "{g:?}");
    }

    #[test]
    fn blocking_in_worker_flags_sleep_and_file_io() {
        let f = check_files(&[
            (
                "crates/core/src/nso.rs",
                "impl Nso { fn on_packet(&mut self, pkt: &Packet) { self.persist(pkt); } \
                 fn persist(&mut self, pkt: &Packet) { std::thread::sleep(d); let f = File::open(p); } }",
            ),
        ]);
        let kinds: BTreeSet<&str> = f
            .iter()
            .filter(|x| x.rule == RULE_BLOCKING)
            .map(|x| x.kind)
            .collect();
        assert!(kinds.contains("sleep"), "{f:?}");
        assert!(kinds.contains("file-io"), "{f:?}");
    }

    #[test]
    fn blocking_in_worker_ignores_rt_loop_scaffolding() {
        // The rt event loop blocks on its own ingress queue by design;
        // it is not a seed, so its recv is clean.
        let f = check(
            "crates/rt/src/lib.rs",
            "fn event_loop(ingress: &Receiver<Ingress>) { while let Ok(ev) = ingress.recv() { } }",
        );
        assert!(f.iter().all(|x| x.rule != RULE_BLOCKING), "{f:?}");
    }

    #[test]
    fn cross_shard_channels_flagged_outside_rt() {
        let f = check(
            "crates/bench/src/bin/loadgen.rs",
            "fn fan_out(n: usize) { let shards = n; let (tx, rx) = bounded::<Packet>(64); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_HYGIENE);
        assert!(f[0].message.contains("cross-shard"));
    }

    #[test]
    fn cross_shard_channels_flagged_in_rt_without_worker_spawn() {
        // Even inside newtop-rt, owning a cross-shard channel is reserved
        // for the functions that spawn the shard worker threads.
        let f = check(
            "crates/rt/src/lib.rs",
            "fn stash(&mut self) { let shard = self.next_shard; let (tx, rx) = bounded(8); self.queues.push(tx); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cross-shard"));
    }

    #[test]
    fn cross_shard_channels_allowed_for_rt_shard_workers() {
        assert!(check(
            "crates/rt/src/lib.rs",
            "fn spawn_ingress(n: usize) { let shards = n; for k in 0..shards { let (tx, rx) = bounded::<Packet>(64); } std::thread::Builder::new().spawn(move || {}); }",
        )
        .is_empty());
        // Channels with no shard involvement stay governed by the
        // boundedness rule alone.
        assert!(check(
            "crates/net/src/channel.rs",
            "fn mk(&self) { let (tx, rx) = bounded(self.inbox_capacity); }",
        )
        .is_empty());
    }

    #[test]
    fn durability_flags_append_without_reachable_sync() {
        let f = check(
            "crates/dir/src/harness.rs",
            "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage_one(ev); } \
             fn stage_one(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_DURABILITY);
        // The finding anchors at the staging site (the allowlist key),
        // with the acknowledging handler named in the message.
        assert_eq!(f[0].func, "stage_one");
        assert!(f[0].message.contains("on_event"), "{f:?}");
    }

    #[test]
    fn durability_clean_when_sync_reachable_through_commit_point() {
        assert!(check(
            "crates/dir/src/harness.rs",
            "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage_one(ev); self.commit(); } \
             fn stage_one(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } \
             fn commit(&mut self) { self.store.lock().unwrap().sync(self.id); } }",
        )
        .is_empty());
    }

    #[test]
    fn durability_scoped_to_durable_crate_and_handlers() {
        // The same unsynced shape outside the durable crate is not this
        // rule's business.
        let f = check(
            "crates/workloads/src/apps.rs",
            "impl ServerApp { fn on_timer(&mut self) { self.store.lock().unwrap().append(self.id, &rec); } }",
        );
        assert!(f.iter().all(|x| x.rule != RULE_DURABILITY), "{f:?}");
        // A helper nobody's handler reaches is not an acknowledgement
        // point — the store's own internals parse clean.
        assert!(check(
            "crates/dir/src/store.rs",
            "impl DurableStore { fn append(&mut self, node: NodeId, record: &LogRecord) { append_frame(&mut slot.staged, record); } }",
        )
        .is_empty());
    }

    #[test]
    fn lock_hygiene_overapproximates_value_bindings() {
        // `let n = ...lock().len();` binds a usize, not a guard, but the
        // token scan cannot see types: it IS flagged, documenting the
        // known over-approximation (allowlist if it ever appears).
        let f = check(
            "crates/net/src/tcp.rs",
            "fn a(&self) { let n = self.map.lock().len(); self.tx.try_send(n); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_LOCK_HYGIENE);
    }
}
