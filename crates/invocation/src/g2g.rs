//! Group-to-group invocation, client-group side (Fig. 6).
//!
//! Every member of a client group gx holds a [`G2gCaller`] attached to a
//! *client monitor group* gz = gx ∪ {request manager}. When the members
//! of gx decide to invoke the server group (each triggered by the same
//! totally-ordered event in gx, so their call counters agree), each
//! multicasts the request in gz; the manager filters the duplicates,
//! forwards one into the server group, and multicasts the collected
//! replies back in gz, where every gx member receives them atomically.

use std::collections::BTreeMap;

use bytes::Bytes;

use newtop_gcs::group::GroupId;
use newtop_net::site::NodeId;
use newtop_orb::cdr::CdrDecode;

use crate::api::{InvCommand, InvMessage, ReplyMode};
use crate::client::ClientError;

/// A completed group-to-group call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct G2gComplete {
    /// The origin (client) group.
    pub origin: GroupId,
    /// The origin group's call counter value.
    pub number: u64,
    /// `(server, result)` pairs.
    pub replies: Vec<(NodeId, Bytes)>,
}

/// The per-member client side of group-to-group invocation.
#[derive(Debug)]
pub struct G2gCaller {
    node: NodeId,
    origin: GroupId,
    monitor: GroupId,
    next_number: u64,
    pending: BTreeMap<u64, ()>,
    /// Replies that arrived before this member issued its own copy of the
    /// call (possible: the group reply may be totally ordered before a
    /// slow member's request copy).
    early: BTreeMap<u64, Vec<(NodeId, Bytes)>>,
    /// Admission bound on `pending` (and `early`); calls beyond it shed.
    max_pending: usize,
    /// Calls shed by the admission bound since creation.
    shed: u64,
}

impl G2gCaller {
    /// Creates the caller for a member of `origin` attached to the
    /// monitor group `monitor`, with the default pending-call bound from
    /// [`newtop_flow::FlowConfig`].
    #[must_use]
    pub fn new(node: NodeId, origin: GroupId, monitor: GroupId) -> Self {
        G2gCaller {
            node,
            origin,
            monitor,
            next_number: 1,
            pending: BTreeMap::new(),
            early: BTreeMap::new(),
            max_pending: newtop_flow::FlowConfig::default().max_pending_calls,
            shed: 0,
        }
    }

    /// Sets the most calls that may await replies at once (clamped to at
    /// least 1); further calls shed with [`ClientError::Overloaded`].
    #[must_use]
    pub fn with_max_pending_calls(mut self, max: usize) -> Self {
        self.max_pending = max.max(1);
        self
    }

    /// Calls shed by the pending-call bound since creation.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// The owning node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The origin (client) group.
    #[must_use]
    pub fn origin(&self) -> &GroupId {
        &self.origin
    }

    /// The monitor group this caller multicasts in.
    #[must_use]
    pub fn monitor(&self) -> &GroupId {
        &self.monitor
    }

    /// Call numbers awaiting replies.
    #[must_use]
    pub fn pending(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pending.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Issues the group's next call. All origin-group members must invoke
    /// in the same relative order (e.g. driven by a totally-ordered
    /// trigger in the origin group) so their counters agree.
    ///
    /// If the group's reply already arrived (another member's copy was
    /// forwarded and answered before this member invoked), the completion
    /// is returned immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] if the pending-call table is full. The
    /// call counter is *not* consumed, so the member stays in step with
    /// the rest of the origin group: the manager forwards another member's
    /// copy, the reply buffers here as an early arrival, and this member's
    /// retried invoke completes from the buffer.
    pub fn invoke(
        &mut self,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
    ) -> Result<(u64, Vec<InvCommand>, Option<G2gComplete>), ClientError> {
        if mode != ReplyMode::OneWay && self.pending.len() >= self.max_pending {
            self.shed += 1;
            return Err(ClientError::Overloaded(self.monitor.clone()));
        }
        let number = self.next_number;
        self.next_number += 1;
        let msg = InvMessage::G2gRequest {
            origin: self.origin.clone(),
            number,
            op: op.to_owned(),
            args,
            mode,
        };
        let commands = vec![InvCommand::multicast(self.monitor.clone(), &msg)];
        if mode == ReplyMode::OneWay {
            return Ok((number, commands, None));
        }
        if let Some(replies) = self.early.remove(&number) {
            return Ok((
                number,
                commands,
                Some(G2gComplete {
                    origin: self.origin.clone(),
                    number,
                    replies,
                }),
            ));
        }
        self.pending.insert(number, ());
        Ok((number, commands, None))
    }

    /// Feeds a message delivered in the monitor group. Returns the
    /// completion if this was the awaited reply.
    pub fn on_delivered(&mut self, group: &GroupId, payload: &[u8]) -> Option<G2gComplete> {
        if group != &self.monitor {
            return None;
        }
        let Ok(InvMessage::G2gReply {
            origin,
            number,
            replies,
        }) = InvMessage::from_cdr(payload)
        else {
            return None;
        };
        if origin != self.origin {
            return None;
        }
        if self.pending.remove(&number).is_none() {
            // Not yet invoked here (or a duplicate): buffer fresh replies
            // for numbers we have not issued, up to the same admission
            // bound as `pending`; drop true duplicates and overflow.
            if number >= self.next_number
                && !self.early.contains_key(&number)
                && self.early.len() < self.max_pending
            {
                self.early.insert(number, replies);
            }
            return None;
        }
        Some(G2gComplete {
            origin,
            number,
            replies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_orb::cdr::CdrEncode;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn caller() -> G2gCaller {
        G2gCaller::new(n(5), GroupId::new("gx"), GroupId::new("gz"))
    }

    #[test]
    fn invoke_numbers_are_sequential() {
        let mut c = caller();
        let (n1, cmds, _) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        let (n2, _, _) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        assert_eq!((n1, n2), (1, 2));
        assert_eq!(c.pending(), vec![1, 2]);
        let InvCommand::Multicast { group, .. } = &cmds[0] else {
            panic!()
        };
        assert_eq!(group, &GroupId::new("gz"));
    }

    #[test]
    fn one_way_does_not_wait() {
        let mut c = caller();
        let (_, cmds, _) = c.invoke("op", Bytes::new(), ReplyMode::OneWay).unwrap();
        assert_eq!(cmds.len(), 1);
        assert!(c.pending().is_empty());
    }

    #[test]
    fn reply_completes_exactly_once() {
        let mut c = caller();
        let (number, _, _) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        let reply = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number,
            replies: vec![(n(1), Bytes::from_static(b"r"))],
        };
        let payload = reply.to_cdr();
        let done = c.on_delivered(&GroupId::new("gz"), &payload).unwrap();
        assert_eq!(done.number, number);
        assert_eq!(done.replies.len(), 1);
        // Duplicate is ignored.
        assert!(c.on_delivered(&GroupId::new("gz"), &payload).is_none());
    }

    #[test]
    fn foreign_replies_are_ignored() {
        let mut c = caller();
        let (number, _, _) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        let wrong_origin = InvMessage::G2gReply {
            origin: GroupId::new("other"),
            number,
            replies: vec![],
        };
        assert!(c
            .on_delivered(&GroupId::new("gz"), &wrong_origin.to_cdr())
            .is_none());
        let wrong_group = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number,
            replies: vec![],
        };
        assert!(c
            .on_delivered(&GroupId::new("elsewhere"), &wrong_group.to_cdr())
            .is_none());
        assert_eq!(c.pending(), vec![number]);
    }

    #[test]
    fn early_reply_completes_at_invoke_time() {
        let mut c = caller();
        // The group's reply for call 1 arrives before this member invokes.
        let reply = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number: 1,
            replies: vec![(n(9), Bytes::from_static(b"r"))],
        };
        assert!(c
            .on_delivered(&GroupId::new("gz"), &reply.to_cdr())
            .is_none());
        let (number, _, done) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        assert_eq!(number, 1);
        let done = done.expect("buffered reply surfaces at invoke");
        assert_eq!(done.replies.len(), 1);
        assert!(c.pending().is_empty());
    }

    #[test]
    fn own_request_copies_are_not_replies() {
        let mut c = caller();
        let (_number, cmds, _) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        let InvCommand::Multicast { payload, .. } = &cmds[0] else {
            panic!()
        };
        // Seeing another member's (or our own) request copy does nothing.
        assert!(c.on_delivered(&GroupId::new("gz"), payload).is_none());
    }

    #[test]
    fn shed_call_keeps_the_counter_in_step() {
        let mut c = caller().with_max_pending_calls(1);
        c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        assert_eq!(
            c.invoke("op", Bytes::new(), ReplyMode::All),
            Err(ClientError::Overloaded(GroupId::new("gz")))
        );
        assert_eq!(c.shed_count(), 1);
        // The group meanwhile answered call 2 (the other members issued
        // it); the reply buffers as an early arrival because the counter
        // was not consumed by the shed...
        let reply = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number: 2,
            replies: vec![(n(9), Bytes::from_static(b"r"))],
        };
        assert!(c
            .on_delivered(&GroupId::new("gz"), &reply.to_cdr())
            .is_none());
        // ...and call 1 completing frees the slot, so the retried invoke
        // is number 2 and completes from the buffer.
        let one = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number: 1,
            replies: vec![],
        };
        assert!(c.on_delivered(&GroupId::new("gz"), &one.to_cdr()).is_some());
        let (number, _, done) = c.invoke("op", Bytes::new(), ReplyMode::All).unwrap();
        assert_eq!(number, 2);
        assert!(done.is_some());
    }
}
