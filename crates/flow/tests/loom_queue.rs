//! Model-checking tests for [`newtop_flow::queue`] under `--cfg loom`.
//!
//! Compiled (and run) only via
//! `RUSTFLAGS="--cfg loom" cargo test -p newtop-flow --release`
//! — the `--full` mode of `scripts/check.sh`. Under that cfg the queue
//! swaps its std lock and condvar for the loom harness's wrappers, so
//! every acquisition is a potential preemption point and each
//! `loom::model` iteration explores a different interleaving.
//!
//! The three properties checked are the ones a bounded backpressure
//! queue can silently lose under an unlucky schedule:
//!
//! 1. **No lost wakeups** — a blocking `send` into a full queue must
//!    complete once the consumer drains, and a blocked `recv` must see
//!    either a message or the disconnect; neither may sleep forever.
//! 2. **Shed accounting** — every `try_send` outcome is either a
//!    delivered message or a counted shed; none vanish.
//! 3. **Depth bound** — the queue never holds more than `capacity`
//!    messages, no matter how sends and receives interleave.

#![cfg(loom)]

use std::time::Duration;

use newtop_flow::queue::{bounded, RecvTimeoutError, TrySendError};

/// Property 1a: backpressured producers always finish once the consumer
/// drains — a lost `not_full` wakeup would deadlock this test.
#[test]
fn loom_no_lost_wakeup_on_full_queue() {
    loom::model(|| {
        let (tx, rx) = bounded(1);
        let producer = loom::thread::spawn(move || {
            for i in 0..3u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    });
}

/// Property 1b: a receiver blocked on an empty queue observes the
/// disconnect when the last sender drops — a lost wakeup on the
/// sender-drop path would hang `recv` forever.
#[test]
fn loom_receiver_wakes_on_sender_drop() {
    loom::model(|| {
        let (tx, rx) = bounded::<u32>(2);
        let producer = loom::thread::spawn(move || {
            tx.send(7).unwrap();
            // tx drops here; the receiver must wake and see Err after
            // draining the one message.
        });
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        producer.join().unwrap();
    });
}

/// Property 2: across two racing `try_send` producers, delivered
/// messages plus the shed counter account for every attempt.
#[test]
fn loom_shed_accounting_is_exact() {
    loom::model(|| {
        const PER_PRODUCER: u64 = 4;
        let (tx, rx) = bounded(2);
        let stats = rx.stats();
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let tx = tx.clone();
                loom::thread::spawn(move || {
                    let mut delivered = 0u64;
                    for i in 0..PER_PRODUCER {
                        match tx.try_send(i) {
                            Ok(()) => delivered += 1,
                            Err(TrySendError::Full(_)) => {}
                            Err(TrySendError::Disconnected(_)) => {
                                unreachable!("receiver lives until producers join")
                            }
                        }
                    }
                    delivered
                })
            })
            .collect();
        drop(tx);
        let delivered: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        let drained = rx.try_iter().count() as u64;
        assert_eq!(drained, delivered, "every accepted message is receivable");
        assert_eq!(
            delivered + stats.shed(),
            2 * PER_PRODUCER,
            "accepted + shed must cover every attempt"
        );
    });
}

/// Property 3: concurrent blocking producers and a consumer never push
/// the queue past its capacity (checked via the peak-depth stat, which
/// is updated under the queue lock).
#[test]
fn loom_depth_never_exceeds_capacity() {
    loom::model(|| {
        let (tx, rx) = bounded(2);
        let stats = rx.stats();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                loom::thread::spawn(move || {
                    for i in 0..3u32 {
                        tx.send(p * 10 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut n = 0;
        while rx.recv().is_ok() {
            n += 1;
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(n, 6);
        assert!(
            stats.peak_depth() <= 2,
            "depth {} exceeded capacity 2",
            stats.peak_depth()
        );
    });
}
