//! Fault-injection plans for deterministic campaigns.
//!
//! A [`FaultPlan`] is a declarative schedule of faults — crashes,
//! partition/heal pairs, drop bursts, delay spikes, duplication windows
//! and sequencer-targeted kills — expressed against *roster indices*
//! rather than concrete [`NodeId`]s, so the same plan applies to any
//! scenario with enough nodes. [`FaultPlan::apply`] translates the plan
//! onto a running [`Sim`] through the scheduled control hooks
//! ([`Sim::schedule_crash`], [`Sim::schedule_partition`],
//! [`Sim::schedule_set_drop`], …).
//!
//! Plans are data, not code: a plan prints as a single line (its
//! [`Display`](fmt::Display) form) so a failing campaign cell can emit the
//! exact seed + plan needed to reproduce the run byte-identically — the
//! FoundationDB/TigerBeetle style of simulation testing.
//!
//! Every preset plan is *quiescent*: all faults end (partitions heal,
//! probabilities return to zero, delay spikes clear) before
//! [`FaultPlan::quiesce_at`], so end-of-run invariants that need a calm
//! network (final-view agreement, delivery-set equality) can be checked
//! after that instant.

use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::Sim;
use crate::site::NodeId;

/// Which node a targeted fault hits, resolved against the roster at
/// [`FaultPlan::apply`] time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// The roster member at this index.
    Index(usize),
    /// The lowest-ranked roster member not already crashed by an earlier
    /// op of the same plan — the member NewTop ranks as the sequencer of
    /// the initial view (views rank members by id, lowest first).
    Sequencer,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Index(i) => write!(f, "n{i}"),
            FaultTarget::Sequencer => write!(f, "sequencer"),
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultOp {
    /// Crash-stop a node (the paper's failure model).
    Crash {
        /// When the node dies.
        at: Duration,
        /// Which node dies.
        target: FaultTarget,
    },
    /// Cold-restart a node crashed by an earlier op of the same plan: the
    /// node loses its volatile state, replays whatever it made durable,
    /// and rejoins its groups (crash-recovery, the extension of the
    /// paper's crash-stop model). Recovering a never-crashed target is a
    /// no-op.
    Recover {
        /// When the node comes back.
        at: Duration,
        /// Which node recovers. `Sequencer` resolves to the lowest-ranked
        /// index dead at that point.
        target: FaultTarget,
    },
    /// Split the roster into cells (roster indices), then heal. Roster
    /// members missing from every cell are isolated on their own.
    Partition {
        /// When the partition forms.
        at: Duration,
        /// When it heals.
        heal_at: Duration,
        /// The cells, as roster indices.
        cells: Vec<Vec<usize>>,
    },
    /// Raise the network-wide drop probability for a window.
    DropBurst {
        /// Window start.
        from: Duration,
        /// Window end (probability returns to zero).
        until: Duration,
        /// Drop probability inside the window.
        probability: f64,
    },
    /// Add fixed one-way latency to every packet for a window.
    DelaySpike {
        /// Window start.
        from: Duration,
        /// Window end.
        until: Duration,
        /// Extra one-way latency inside the window.
        extra: Duration,
    },
    /// Raise the network-wide duplication probability for a window.
    Duplication {
        /// Window start.
        from: Duration,
        /// Window end (probability returns to zero).
        until: Duration,
        /// Duplication probability inside the window.
        probability: f64,
    },
    /// Sustained overload: every node's CPU service costs are multiplied
    /// by `factor` inside the window (restored to nominal at `until`).
    /// Under the flow-control layer this drives send windows and bounded
    /// queues into shedding, which the invariants must survive.
    Saturate {
        /// Window start.
        from: Duration,
        /// Window end (service costs return to nominal).
        until: Duration,
        /// CPU cost multiplier inside the window (> 1 slows nodes down).
        factor: f64,
    },
    /// Scramble packet arrival order for a window: every non-loopback
    /// packet gets extra one-way latency drawn uniformly from
    /// `[0, window]`. Nothing is lost or duplicated — this isolates the
    /// protocols' tolerance of reordering from their tolerance of loss.
    Reorder {
        /// Window start.
        from: Duration,
        /// Window end (ordering returns to latency-only).
        until: Duration,
        /// Upper bound of the per-packet uniform extra delay.
        window: Duration,
    },
    /// Cap every link's bandwidth for a window: frames serialize at
    /// `bytes_per_sec` FIFO per directed link, restoring the simulation's
    /// configured bandwidth matrix at `until`.
    Throttle {
        /// Window start.
        from: Duration,
        /// Window end (the configured bandwidth matrix is restored).
        until: Duration,
        /// Link bandwidth inside the window, payload bytes per second.
        bytes_per_sec: u64,
    },
}

impl FaultOp {
    /// The last instant at which this op still disturbs the network.
    #[must_use]
    pub fn ends_at(&self) -> Duration {
        match self {
            FaultOp::Crash { at, .. } | FaultOp::Recover { at, .. } => *at,
            FaultOp::Partition { heal_at, .. } => *heal_at,
            FaultOp::DropBurst { until, .. }
            | FaultOp::DelaySpike { until, .. }
            | FaultOp::Duplication { until, .. }
            | FaultOp::Saturate { until, .. }
            | FaultOp::Reorder { until, .. }
            | FaultOp::Throttle { until, .. } => *until,
        }
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Crash { at, target } => write!(f, "crash {target}@{}ms", at.as_millis()),
            FaultOp::Recover { at, target } => write!(f, "recover {target}@{}ms", at.as_millis()),
            FaultOp::Partition { at, heal_at, cells } => {
                write!(f, "partition ")?;
                for (i, cell) in cells.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    for (j, m) in cell.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "n{m}")?;
                    }
                }
                write!(f, " [{}ms..{}ms]", at.as_millis(), heal_at.as_millis())
            }
            FaultOp::DropBurst {
                from,
                until,
                probability,
            } => write!(
                f,
                "drop {probability:.2} [{}ms..{}ms]",
                from.as_millis(),
                until.as_millis()
            ),
            FaultOp::DelaySpike { from, until, extra } => write!(
                f,
                "delay +{}ms [{}ms..{}ms]",
                extra.as_millis(),
                from.as_millis(),
                until.as_millis()
            ),
            FaultOp::Duplication {
                from,
                until,
                probability,
            } => write!(
                f,
                "dup {probability:.2} [{}ms..{}ms]",
                from.as_millis(),
                until.as_millis()
            ),
            FaultOp::Saturate {
                from,
                until,
                factor,
            } => write!(
                f,
                "saturate x{factor:.1} [{}ms..{}ms]",
                from.as_millis(),
                until.as_millis()
            ),
            FaultOp::Reorder {
                from,
                until,
                window,
            } => write!(
                f,
                "reorder {}ms [{}ms..{}ms]",
                window.as_millis(),
                from.as_millis(),
                until.as_millis()
            ),
            FaultOp::Throttle {
                from,
                until,
                bytes_per_sec,
            } => write!(
                f,
                "throttle {bytes_per_sec}B/s [{}ms..{}ms]",
                from.as_millis(),
                until.as_millis()
            ),
        }
    }
}

/// A named, ordered schedule of faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Short identifier used in campaign tables and repro lines.
    pub name: String,
    /// The faults, in the order they were added.
    pub ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// An empty plan (the fault-free control cell every campaign needs).
    #[must_use]
    pub fn calm() -> Self {
        FaultPlan {
            name: "calm".into(),
            ops: Vec::new(),
        }
    }

    /// Creates an empty named plan.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        FaultPlan {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Adds a crash of the roster member at `index`.
    #[must_use]
    pub fn crash(mut self, at: Duration, index: usize) -> Self {
        self.ops.push(FaultOp::Crash {
            at,
            target: FaultTarget::Index(index),
        });
        self
    }

    /// Adds a sequencer-targeted kill: crashes the lowest-ranked roster
    /// member still alive under this plan at that point.
    #[must_use]
    pub fn kill_sequencer(mut self, at: Duration) -> Self {
        self.ops.push(FaultOp::Crash {
            at,
            target: FaultTarget::Sequencer,
        });
        self
    }

    /// Adds a recovery of the roster member at `index`, which an earlier
    /// op of this plan must have crashed (otherwise the recovery is a
    /// no-op).
    #[must_use]
    pub fn recover(mut self, at: Duration, index: usize) -> Self {
        self.ops.push(FaultOp::Recover {
            at,
            target: FaultTarget::Index(index),
        });
        self
    }

    /// Adds a partition/heal pair. `cells` hold roster indices; indices
    /// absent from every cell end up isolated.
    #[must_use]
    pub fn partition(mut self, at: Duration, heal_at: Duration, cells: Vec<Vec<usize>>) -> Self {
        assert!(heal_at >= at, "partition must heal after it forms");
        self.ops.push(FaultOp::Partition { at, heal_at, cells });
        self
    }

    /// Adds a drop burst: the network-wide loss probability is
    /// `probability` inside `[from, until)` and zero after.
    #[must_use]
    pub fn drop_burst(mut self, from: Duration, until: Duration, probability: f64) -> Self {
        assert!(until >= from, "burst must end after it starts");
        self.ops.push(FaultOp::DropBurst {
            from,
            until,
            probability,
        });
        self
    }

    /// Adds a delay spike: `extra` one-way latency inside `[from, until)`.
    #[must_use]
    pub fn delay_spike(mut self, from: Duration, until: Duration, extra: Duration) -> Self {
        assert!(until >= from, "spike must end after it starts");
        self.ops.push(FaultOp::DelaySpike { from, until, extra });
        self
    }

    /// Adds a duplication window.
    #[must_use]
    pub fn duplication(mut self, from: Duration, until: Duration, probability: f64) -> Self {
        assert!(until >= from, "window must end after it starts");
        self.ops.push(FaultOp::Duplication {
            from,
            until,
            probability,
        });
        self
    }

    /// Adds a saturation window: every node's CPU costs are multiplied
    /// by `factor` inside `[from, until)` (sustained overload, restored
    /// to nominal after).
    #[must_use]
    pub fn saturate(mut self, from: Duration, until: Duration, factor: f64) -> Self {
        assert!(until >= from, "window must end after it starts");
        assert!(factor >= 1.0, "saturation slows nodes down");
        self.ops.push(FaultOp::Saturate {
            from,
            until,
            factor,
        });
        self
    }

    /// Adds a reordering window: every non-loopback packet inside
    /// `[from, until)` gets extra one-way latency uniform in
    /// `[0, window]`, scrambling arrival order without loss.
    #[must_use]
    pub fn reorder(mut self, from: Duration, until: Duration, window: Duration) -> Self {
        assert!(until >= from, "window must end after it starts");
        self.ops.push(FaultOp::Reorder {
            from,
            until,
            window,
        });
        self
    }

    /// Adds a bandwidth throttle: every link serializes frames at
    /// `bytes_per_sec` inside `[from, until)`, after which the
    /// simulation's configured bandwidth matrix is restored.
    #[must_use]
    pub fn throttle(mut self, from: Duration, until: Duration, bytes_per_sec: u64) -> Self {
        assert!(until >= from, "window must end after it starts");
        assert!(bytes_per_sec > 0, "a zero-bandwidth link never delivers");
        self.ops.push(FaultOp::Throttle {
            from,
            until,
            bytes_per_sec,
        });
        self
    }

    /// The saturation windows of this plan, as `(from, until, factor)`
    /// triples. Workload drivers use these to aim overload traffic at
    /// the windows where nodes are slow.
    #[must_use]
    pub fn saturate_windows(&self) -> Vec<(Duration, Duration, f64)> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                FaultOp::Saturate {
                    from,
                    until,
                    factor,
                } => Some((*from, *until, *factor)),
                _ => None,
            })
            .collect()
    }

    /// The instant by which every fault has ended: partitions healed,
    /// probabilities restored, spikes cleared, last crash done. Invariants
    /// that need a calm network should only consider state after this.
    #[must_use]
    pub fn quiesce_at(&self) -> Duration {
        self.ops
            .iter()
            .map(FaultOp::ends_at)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// The number of roster members this plan crashes.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, FaultOp::Crash { .. }))
            .count()
    }

    /// Resolves the roster indices this plan leaves crashed at its end,
    /// in crash order. Sequencer crash targets resolve to the lowest
    /// index not dead at that (time, then insertion order) point; a
    /// `recover` op removes its index from the dead set again.
    #[must_use]
    pub fn crashed_indices(&self, roster_len: usize) -> Vec<usize> {
        self.resolve_lifecycle(roster_len).into_iter().fold(
            Vec::new(),
            |mut dead, (_, idx, crash)| {
                if crash {
                    dead.push(idx);
                } else {
                    dead.retain(|&d| d != idx);
                }
                dead
            },
        )
    }

    /// Resolves every crash and recovery to `(at, roster index, is_crash)`
    /// in time (then insertion) order, tracking the dead set so sequencer
    /// targets and recoveries bind to the right member. Crashes of
    /// already-dead indices and recoveries of never-crashed indices are
    /// dropped here.
    fn resolve_lifecycle(&self, roster_len: usize) -> Vec<(Duration, usize, bool)> {
        let mut ordered: Vec<(Duration, usize, bool, &FaultTarget)> = self
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op {
                FaultOp::Crash { at, target } => Some((*at, i, true, target)),
                FaultOp::Recover { at, target } => Some((*at, i, false, target)),
                _ => None,
            })
            .collect();
        ordered.sort_by_key(|&(at, i, ..)| (at, i));
        let mut dead: Vec<usize> = Vec::new();
        let mut out = Vec::new();
        for (at, _, crash, target) in ordered {
            let idx = match (crash, target) {
                (_, FaultTarget::Index(i)) => *i,
                // A sequencer crash hits the lowest live index; a
                // sequencer recovery revives the lowest dead one.
                (true, FaultTarget::Sequencer) => {
                    match (0..roster_len).find(|i| !dead.contains(i)) {
                        Some(i) => i,
                        None => continue,
                    }
                }
                (false, FaultTarget::Sequencer) => match dead.iter().copied().min() {
                    Some(i) => i,
                    None => continue,
                },
            };
            if idx >= roster_len || dead.contains(&idx) == crash {
                continue;
            }
            if crash {
                dead.push(idx);
            } else {
                dead.retain(|&d| d != idx);
            }
            out.push((at, idx, crash));
        }
        out
    }

    /// Schedules every op of the plan onto `sim`, resolving roster
    /// indices against `roster`. Indices beyond the roster are ignored,
    /// so a plan written for five nodes degrades gracefully on three.
    pub fn apply(&self, sim: &mut Sim, roster: &[NodeId]) {
        let base = sim.now();
        // Resolve targeted kills and recoveries first, in time order, so
        // "sequencer" means the lowest-ranked member still alive at that
        // point and recoveries bind to members an earlier op crashed.
        for (at, idx, crash) in self.resolve_lifecycle(roster.len()) {
            if crash {
                sim.schedule_crash(base + at, roster[idx]);
            } else {
                sim.schedule_restart(base + at, roster[idx]);
            }
        }
        for op in &self.ops {
            match op {
                FaultOp::Crash { .. } | FaultOp::Recover { .. } => {}
                FaultOp::Partition { at, heal_at, cells } => {
                    let cells: Vec<Vec<NodeId>> = cells
                        .iter()
                        .map(|cell| {
                            cell.iter()
                                .filter(|&&i| i < roster.len())
                                .map(|&i| roster[i])
                                .collect()
                        })
                        .collect();
                    sim.schedule_partition(base + *at, cells);
                    sim.schedule_heal(base + *heal_at);
                }
                FaultOp::DropBurst {
                    from,
                    until,
                    probability,
                } => {
                    sim.schedule_set_drop(base + *from, *probability);
                    sim.schedule_set_drop(base + *until, 0.0);
                }
                FaultOp::DelaySpike { from, until, extra } => {
                    sim.schedule_set_extra_delay(base + *from, *extra);
                    sim.schedule_set_extra_delay(base + *until, Duration::ZERO);
                }
                FaultOp::Duplication {
                    from,
                    until,
                    probability,
                } => {
                    sim.schedule_set_duplicate(base + *from, *probability);
                    sim.schedule_set_duplicate(base + *until, 0.0);
                }
                FaultOp::Saturate {
                    from,
                    until,
                    factor,
                } => {
                    sim.schedule_set_service_factor(base + *from, None, *factor);
                    sim.schedule_set_service_factor(base + *until, None, 1.0);
                }
                FaultOp::Reorder {
                    from,
                    until,
                    window,
                } => {
                    sim.schedule_set_reorder(base + *from, *window);
                    sim.schedule_set_reorder(base + *until, Duration::ZERO);
                }
                FaultOp::Throttle {
                    from,
                    until,
                    bytes_per_sec,
                } => {
                    sim.schedule_set_bandwidth(base + *from, Some(*bytes_per_sec));
                    sim.schedule_set_bandwidth(base + *until, None);
                }
            }
        }
    }

    /// The standing campaign library: one plan per fault class plus a
    /// combined "chaos" plan, all quiescent by 1.5 s, written against a
    /// roster of `n` nodes (n ≥ 3 keeps a surviving majority).
    #[must_use]
    pub fn presets(n: usize) -> Vec<FaultPlan> {
        let ms = Duration::from_millis;
        let mut plans = vec![
            FaultPlan::calm(),
            FaultPlan::named("crash-one").crash(ms(120), n - 1),
            FaultPlan::named("seq-kill").kill_sequencer(ms(150)),
            FaultPlan::named("drop-burst").drop_burst(ms(100), ms(500), 0.25),
            FaultPlan::named("delay-spike").delay_spike(ms(100), ms(600), ms(15)),
            FaultPlan::named("dup-window").duplication(ms(80), ms(600), 0.3),
            FaultPlan::named("saturate").saturate(ms(100), ms(700), 3.0),
            FaultPlan::named("reorder").reorder(ms(80), ms(600), ms(5)),
            FaultPlan::named("bandwidth").throttle(ms(100), ms(700), 200_000),
            FaultPlan::named("saturate-loss")
                .saturate(ms(100), ms(800), 4.0)
                .drop_burst(ms(300), ms(600), 0.15),
            FaultPlan::named("chaos")
                .drop_burst(ms(60), ms(400), 0.15)
                .duplication(ms(200), ms(700), 0.2)
                .delay_spike(ms(450), ms(900), ms(8))
                .kill_sequencer(ms(300)),
        ];
        if n >= 5 {
            // Two successive sequencer kills still leave a majority.
            plans.push(
                FaultPlan::named("seq-kill-twice")
                    .kill_sequencer(ms(150))
                    .kill_sequencer(ms(700)),
            );
        }
        if n >= 4 {
            let left: Vec<usize> = (0..n / 2).collect();
            let right: Vec<usize> = (n / 2..n).collect();
            plans.push(FaultPlan::named("partition-heal").partition(
                ms(150),
                ms(800),
                vec![left.clone(), right.clone()],
            ));
            plans.push(
                FaultPlan::named("partition-loss")
                    .partition(ms(150), ms(700), vec![left, right])
                    .drop_burst(ms(750), ms(1100), 0.2),
            );
        }
        plans
    }

    /// Generates one seeded random plan: 1–3 ops drawn from every fault
    /// class, quiescent by 1.5 s. Equal seeds generate equal plans.
    #[must_use]
    pub fn random(seed: u64, n: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_91a4);
        let ms = Duration::from_millis;
        let mut plan = FaultPlan::named(format!("rand-{seed}"));
        let ops = rng.gen_range(1u32..4);
        for _ in 0..ops {
            let from = ms(rng.gen_range(50u64..600));
            let until = from + ms(rng.gen_range(100u64..500));
            match rng.gen_range(0u32..5) {
                0 if plan.crash_count() + 1 < n.div_ceil(2) => {
                    plan = plan.kill_sequencer(from);
                }
                1 if n >= 4 => {
                    let split = rng.gen_range(1usize..n);
                    let left: Vec<usize> = (0..split).collect();
                    let right: Vec<usize> = (split..n).collect();
                    plan = plan.partition(from, until.min(ms(1400)), vec![left, right]);
                }
                2 => plan = plan.drop_burst(from, until, rng.gen_range(0.05f64..0.3)),
                3 => plan = plan.delay_spike(from, until, ms(rng.gen_range(2u64..20))),
                _ => plan = plan.duplication(from, until, rng.gen_range(0.05f64..0.3)),
            }
        }
        plan
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan \"{}\":", self.name)?;
        if self.ops.is_empty() {
            return write!(f, " (no faults)");
        }
        for (i, op) in self.ops.iter().enumerate() {
            write!(f, "{} {op}", if i > 0 { ";" } else { "" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use crate::sim::{NodeEvent, Outbox, SimNode};
    use crate::site::Site;
    use crate::time::SimTime;
    use bytes::Bytes;

    struct Chatter {
        peers: Vec<NodeId>,
        heard: u32,
    }
    impl SimNode for Chatter {
        fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
            match ev {
                NodeEvent::Start | NodeEvent::Timer(..) => {
                    for &p in &self.peers {
                        out.send(p, Bytes::from_static(b"x"));
                    }
                    out.set_timer(Duration::from_millis(20), 0);
                }
                NodeEvent::Packet(_) => self.heard += 1,
            }
        }
    }

    fn chatter_sim(n: usize, seed: u64) -> (Sim, Vec<NodeId>) {
        let mut sim = Sim::new(SimConfig::lan(seed));
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId::from_index(i as u32)).collect();
        for &id in &ids {
            let peers = ids.iter().copied().filter(|&p| p != id).collect();
            let added = sim.add_node(Site::Lan, Box::new(Chatter { peers, heard: 0 }));
            assert_eq!(added, id);
        }
        (sim, ids)
    }

    #[test]
    fn sequencer_kills_resolve_in_rank_order() {
        let plan = FaultPlan::named("p")
            .kill_sequencer(Duration::from_millis(10))
            .kill_sequencer(Duration::from_millis(20));
        assert_eq!(plan.crashed_indices(4), vec![0, 1]);
        // An explicit kill of n0 shifts the sequencer target to n1.
        let plan = FaultPlan::named("p")
            .crash(Duration::from_millis(5), 0)
            .kill_sequencer(Duration::from_millis(20));
        assert_eq!(plan.crashed_indices(4), vec![0, 1]);
    }

    #[test]
    fn apply_crashes_the_resolved_targets() {
        let (mut sim, ids) = chatter_sim(3, 7);
        FaultPlan::named("p")
            .kill_sequencer(Duration::from_millis(10))
            .apply(&mut sim, &ids);
        sim.run_until(SimTime::from_millis(100));
        assert!(!sim.is_alive(ids[0]));
        assert!(sim.is_alive(ids[1]) && sim.is_alive(ids[2]));
    }

    #[test]
    fn partition_op_splits_and_heals() {
        let (mut sim, ids) = chatter_sim(4, 8);
        FaultPlan::named("p")
            .partition(
                Duration::from_millis(0),
                Duration::from_millis(200),
                vec![vec![0, 1], vec![2, 3]],
            )
            .apply(&mut sim, &ids);
        sim.run_until(SimTime::from_millis(150));
        let heard_mid = sim.node_ref::<Chatter>(ids[0]).unwrap().heard;
        sim.run_until(SimTime::from_millis(400));
        let heard_end = sim.node_ref::<Chatter>(ids[0]).unwrap().heard;
        // While split, n0 hears only n1 (one peer); after healing it hears
        // all three again, so the rate must more than double.
        assert!(heard_end > heard_mid * 2, "{heard_mid} -> {heard_end}");
    }

    #[test]
    fn recover_revives_the_crashed_index() {
        let ms = Duration::from_millis;
        let plan = FaultPlan::named("p").crash(ms(100), 2).recover(ms(400), 2);
        // The dead set at plan end is empty: n2 came back.
        assert_eq!(plan.crashed_indices(5), Vec::<usize>::new());
        // A recovery of a never-crashed index is dropped at resolution.
        let plan = FaultPlan::named("p").recover(ms(400), 1);
        assert_eq!(plan.crashed_indices(5), Vec::<usize>::new());
        // Sequencer kills after a recovery see the revived member again:
        // kill n0, revive n0, kill "sequencer" → n0 dies again.
        let plan = FaultPlan::named("p")
            .kill_sequencer(ms(100))
            .recover(ms(300), 0)
            .kill_sequencer(ms(500));
        assert_eq!(plan.crashed_indices(5), vec![0]);
    }

    #[test]
    fn recover_op_restarts_the_node_in_the_sim() {
        let (mut sim, ids) = chatter_sim(3, 9);
        FaultPlan::named("p")
            .crash(Duration::from_millis(50), 1)
            .recover(Duration::from_millis(200), 1)
            .apply(&mut sim, &ids);
        sim.run_until(SimTime::from_millis(100));
        assert!(!sim.is_alive(ids[1]));
        sim.run_until(SimTime::from_millis(400));
        assert!(sim.is_alive(ids[1]));
    }

    #[test]
    fn recover_prints_in_the_repro_line() {
        let plan = FaultPlan::named("kr")
            .crash(Duration::from_millis(120), 2)
            .recover(Duration::from_millis(400), 2);
        assert_eq!(
            plan.to_string(),
            "plan \"kr\": crash n2@120ms; recover n2@400ms"
        );
        assert_eq!(plan.quiesce_at(), Duration::from_millis(400));
    }

    #[test]
    fn plans_print_reproducibly() {
        let plan = FaultPlan::named("mix")
            .kill_sequencer(Duration::from_millis(150))
            .drop_burst(Duration::from_millis(100), Duration::from_millis(500), 0.25)
            .partition(
                Duration::from_millis(200),
                Duration::from_millis(600),
                vec![vec![0, 1], vec![2]],
            );
        assert_eq!(
            plan.to_string(),
            "plan \"mix\": crash sequencer@150ms; drop 0.25 [100ms..500ms]; \
             partition n0,n1|n2 [200ms..600ms]"
        );
        assert_eq!(FaultPlan::calm().to_string(), "plan \"calm\": (no faults)");
        let plan = FaultPlan::named("hot").saturate(
            Duration::from_millis(100),
            Duration::from_millis(700),
            3.0,
        );
        assert_eq!(
            plan.to_string(),
            "plan \"hot\": saturate x3.0 [100ms..700ms]"
        );
        assert_eq!(
            plan.saturate_windows(),
            vec![(Duration::from_millis(100), Duration::from_millis(700), 3.0)]
        );
        let plan = FaultPlan::named("wire")
            .reorder(
                Duration::from_millis(80),
                Duration::from_millis(600),
                Duration::from_millis(5),
            )
            .throttle(
                Duration::from_millis(100),
                Duration::from_millis(700),
                200_000,
            );
        assert_eq!(
            plan.to_string(),
            "plan \"wire\": reorder 5ms [80ms..600ms]; throttle 200000B/s [100ms..700ms]"
        );
        assert_eq!(plan.quiesce_at(), Duration::from_millis(700));
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_quiescent() {
        for seed in 0..50 {
            let a = FaultPlan::random(seed, 5);
            let b = FaultPlan::random(seed, 5);
            assert_eq!(a, b);
            assert!(!a.ops.is_empty());
            assert!(a.quiesce_at() <= Duration::from_millis(1500), "{a}");
            assert!(a.crash_count() < 3, "random plans keep a majority: {a}");
        }
        assert_ne!(FaultPlan::random(1, 5), FaultPlan::random(2, 5));
    }

    #[test]
    fn presets_are_quiescent_and_keep_survivors() {
        for n in [3usize, 5] {
            for plan in FaultPlan::presets(n) {
                assert!(
                    plan.quiesce_at() <= Duration::from_millis(1500),
                    "{plan} quiesces late"
                );
                assert!(
                    plan.crashed_indices(n).len() <= n / 2,
                    "{plan} kills a majority of {n}"
                );
            }
        }
    }
}
