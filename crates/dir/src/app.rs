//! Hosting the directory on simulated nodes.
//!
//! [`DirectoryApp`] is the [`NsoApp`] that turns a node into a directory
//! member: it answers [`DIR_OPERATION`] requests from a plain ORB
//! servant, replicates staged registrations through the directory's own
//! peer group with total order, and applies records in delivery order so
//! every member's table converges identically.
//!
//! [`register_service`] is the server-side half: one plain invocation
//! carrying a [`DirRequest::Register`] for the service's current view.

use std::time::Duration;

use bytes::Bytes;

use newtop::directory::{DirRequest, GroupRecord, DIR_OBJECT_KEY, DIR_OPERATION};
use newtop::nso::{GroupHandle, Nso, NsoOutput};
use newtop::simnode::NsoApp;
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecode, CdrEncode};
use newtop_orb::ior::ObjectRef;
use newtop_orb::orb::RequestId;
use newtop_orb::servant::ServantError;

use crate::directory::SharedDirectory;

/// The directory group's well-known name. The `#` prefix keeps it out of
/// the service namespace (service names become their group ids).
pub const DIR_GROUP: &str = "#dir";

/// Timer tag for the replication pump.
const PUMP_TAG: u64 = tags::APP_BASE + 7;

/// One directory member: plain-ORB front end, peer-group replication.
pub struct DirectoryApp {
    /// Every directory member (the bootstrap set clients are given).
    pub members: Vec<NodeId>,
    /// The directory group's configuration (total order required).
    pub config: GroupConfig,
    /// The record table, shared with the servant closure.
    pub state: SharedDirectory,
    /// How often staged registrations are flushed into the group.
    pub pump: Duration,
    peer: Option<GroupHandle>,
}

impl DirectoryApp {
    /// Creates a directory member over `members` with a 5 ms pump.
    #[must_use]
    pub fn new(members: Vec<NodeId>, state: SharedDirectory) -> Self {
        DirectoryApp {
            members,
            config: GroupConfig::peer(),
            state,
            pump: Duration::from_millis(5),
            peer: None,
        }
    }

    fn flush_staged(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let Some(peer) = self.peer.clone() else {
            return;
        };
        let staged = {
            let mut state = self.state.lock().expect("directory lock");
            state.take_staged()
        };
        for record in staged {
            let _ = peer.send(nso, record.to_cdr(), DeliveryOrder::Total, now, out);
        }
    }
}

impl NsoApp for DirectoryApp {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let state = self.state.clone();
        nso.register_plain_servant(
            DIR_OBJECT_KEY,
            Box::new(move |op: &str, args: &[u8]| {
                if op != DIR_OPERATION {
                    return Err(ServantError::BadOperation(op.to_owned()));
                }
                state
                    .lock()
                    .expect("directory lock")
                    .handle_raw(args)
                    .map_err(|_| ServantError::User(Bytes::from_static(b"malformed dir request")))
            }),
        );
        let peer = nso
            .create_peer_group(
                GroupId::new(DIR_GROUP),
                self.members.clone(),
                self.config.clone(),
                now,
                out,
            )
            .expect("directory group creation");
        self.peer = Some(peer);
        out.set_timer(self.pump, PUMP_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag == PUMP_TAG {
            self.flush_staged(nso, now, out);
            out.set_timer(self.pump, PUMP_TAG);
        }
    }

    fn on_output(&mut self, _nso: &mut Nso, output: NsoOutput, _now: SimTime, _out: &mut Outbox) {
        if let NsoOutput::PeerDeliver { group, payload, .. } = output {
            if group.as_str() != DIR_GROUP {
                return;
            }
            if let Ok(record) = GroupRecord::from_cdr(&payload) {
                self.state.lock().expect("directory lock").apply(record);
            }
        }
    }
}

/// Registers (or re-registers) a service with the directory: one plain
/// invocation carrying the record to `contact`, any directory member.
/// The reply surfaces as [`NsoOutput::PlainReply`]; callers that care
/// can match the returned [`RequestId`], but registration is idempotent
/// (stale views lose on apply) so fire-and-forget is the normal mode.
pub fn register_service(
    nso: &mut Nso,
    contact: NodeId,
    record: GroupRecord,
    out: &mut Outbox,
) -> RequestId {
    let body = DirRequest::Register { record }.to_cdr();
    nso.plain_invoke(
        &ObjectRef::new(contact, DIR_OBJECT_KEY),
        DIR_OPERATION,
        body,
        out,
    )
}
