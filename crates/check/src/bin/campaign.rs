//! Seeded fault-injection campaign runner.
//!
//! Sweeps seeds × fault plans × {symmetric, asymmetric} ordering ×
//! {open, closed} binding. Each cell runs two scenarios:
//!
//! * the overlapping-group GCS scenario
//!   ([`newtop_check::scenario::GcsScenario`]), checked against the five
//!   protocol invariants;
//! * a request-reply NSO run with the same fault plan applied, checked
//!   for exactly-once semantics (no duplicate completions, no double
//!   executions) and post-fault progress.
//!
//! Prints a pass/fail table with per-invariant assertion counts. On
//! failure it emits the exact seed, cell and plan for a byte-identical
//! rerun, plus the narrowed repro command line.
//!
//! `--mutate KIND` flips the polarity: the extracted logs are perturbed
//! the way a protocol bug would perturb them, and the campaign succeeds
//! only if the checker catches every mutated run (the "does the alarm
//! actually ring" test, recorded in EXPERIMENTS.md).

use std::process::ExitCode;
use std::time::Duration;

use newtop_check::recovery::RecoveryScenario;
use newtop_check::scenario::{delivery_divergence, GcsScenario, ScenarioRun, NODES};
use newtop_check::{Invariant, InvariantChecker, InvariantCounts, Mutation};
use newtop_gcs::group::OrderProtocol;
use newtop_net::faults::{FaultOp, FaultPlan};
use newtop_net::time::SimTime;
use newtop_workloads::scenario::{
    run_request_reply, BindingPolicy, Placement, RequestReplyScenario,
};

const USAGE: &str = "\
campaign — seeded fault-injection sweep with protocol invariant checking

USAGE: campaign [OPTIONS]

OPTIONS:
  --seeds N          seeds per cell (default 25)
  --start-seed S     first seed (default 1)
  --plan NAME        run only the named plan (presets, or rand-<k>)
  --random-plans K   add K seeded random plans to the preset set
  --ordering KIND    sym | asym (default: both)
  --binding KIND     open | closed (default: both)
  --shards N         per-node shard engines for the GCS scenario
                     (default 4; each seed is also replayed at shards=1
                     and the delivery logs must match)
  --gcs-only         skip the request-reply (NSO) scenario
  --nso-only         skip the GCS scenario
  --recovery         run the crash-recovery campaign instead: each cell
                     kills a member mid-stream, recovers it from its
                     durable log + snapshot via `recover(node@t)`, and
                     checks the five invariants plus the recovery
                     obligations (replay byte-identity, delta < full
                     history, post-recovery convergence)
  --mutate KIND      swap-order | dup-delivery | drop-delivery | drop-view:
                     perturb the logs and require the checker to object
  --quiet            print only the summary table and failures
  -h, --help         this text
";

struct Options {
    seeds: u64,
    start_seed: u64,
    plan_filter: Option<String>,
    random_plans: u64,
    orderings: Vec<OrderProtocol>,
    bindings: Vec<bool>,
    gcs: bool,
    nso: bool,
    shards: usize,
    mutate: Option<Mutation>,
    recovery: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: 25,
        start_seed: 1,
        plan_filter: None,
        random_plans: 0,
        orderings: vec![OrderProtocol::Symmetric, OrderProtocol::Asymmetric],
        bindings: vec![false, true],
        gcs: true,
        nso: true,
        shards: 4,
        mutate: None,
        recovery: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--seeds" => opts.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--start-seed" => {
                opts.start_seed = value("--start-seed")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--plan" => opts.plan_filter = Some(value("--plan")?),
            "--random-plans" => {
                opts.random_plans = value("--random-plans")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--ordering" => {
                opts.orderings = match value("--ordering")?.as_str() {
                    "sym" => vec![OrderProtocol::Symmetric],
                    "asym" => vec![OrderProtocol::Asymmetric],
                    other => return Err(format!("unknown ordering {other}\n\n{USAGE}")),
                };
            }
            "--binding" => {
                opts.bindings = match value("--binding")?.as_str() {
                    "open" => vec![true],
                    "closed" => vec![false],
                    other => return Err(format!("unknown binding {other}\n\n{USAGE}")),
                };
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse::<usize>()
                    .map_err(|e| format!("{e}"))?
                    .max(1);
            }
            "--gcs-only" => opts.nso = false,
            "--nso-only" => opts.gcs = false,
            "--recovery" => opts.recovery = true,
            "--mutate" => {
                let kind = value("--mutate")?;
                opts.mutate = Some(
                    Mutation::parse(&kind)
                        .ok_or_else(|| format!("unknown mutation {kind}\n\n{USAGE}"))?,
                );
            }
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn ordering_label(o: OrderProtocol) -> &'static str {
    match o {
        OrderProtocol::Symmetric => "sym",
        OrderProtocol::Asymmetric => "asym",
    }
}

fn binding_label(open: bool) -> &'static str {
    if open {
        "open"
    } else {
        "closed"
    }
}

/// One row of the summary table: a (plan, ordering, binding) cell
/// aggregated over all its seeds.
struct CellStats {
    plan: String,
    ordering: OrderProtocol,
    open: bool,
    runs: u64,
    counts: InvariantCounts,
    nso_runs: u64,
    nso_failures: u64,
    failures: Vec<String>,
}

impl CellStats {
    fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn has_partition(plan: &FaultPlan) -> bool {
    plan.ops
        .iter()
        .any(|op| matches!(op, FaultOp::Partition { .. }))
}

/// Runs the request-reply scenario under the plan and returns failure
/// descriptions (empty = clean).
fn run_nso_cell(seed: u64, ordering: OrderProtocol, open: bool, plan: &FaultPlan) -> Vec<String> {
    let duration = plan.quiesce_at() + Duration::from_secs(2);
    let scenario = RequestReplyScenario {
        binding: if open {
            BindingPolicy::OpenAnyServer
        } else {
            BindingPolicy::Closed
        },
        ordering,
        duration,
        faults: Some(plan.clone()),
        ..RequestReplyScenario::paper_default(Placement::AllLan, 2, seed)
    };
    let r = run_request_reply(&scenario);
    let mut failures = Vec::new();
    if r.duplicated > 0 {
        failures.push(format!(
            "nso: {} duplicate client completions (exactly-once broken)",
            r.duplicated
        ));
    }
    if r.double_executions > 0 {
        failures.push(format!(
            "nso: {} double executions (reply cache failed to dedup)",
            r.double_executions
        ));
    }
    // Progress after the last fault cleared. Partitions can legitimately
    // strand an in-flight call on the minority side, so the liveness
    // assertion applies only to partition-free plans.
    if !has_partition(plan) {
        let horizon = SimTime::ZERO + plan.quiesce_at() + Duration::from_millis(500);
        if r.last_completion_at < horizon {
            failures.push(format!(
                "nso: no completion after faults quiesced (last at {}, horizon {})",
                r.last_completion_at, horizon
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut plans = FaultPlan::presets(NODES);
    for k in 0..opts.random_plans {
        plans.push(FaultPlan::random(opts.start_seed + k, NODES));
    }
    if let Some(filter) = &opts.plan_filter {
        plans.retain(|p| &p.name == filter);
        if plans.is_empty() {
            eprintln!("no plan named {filter}");
            return ExitCode::from(2);
        }
    }

    if opts.recovery {
        return run_recovery_campaign(&opts);
    }

    if let Some(mutation) = opts.mutate {
        return run_mutation_campaign(&opts, &plans, mutation);
    }

    let mut cells: Vec<CellStats> = Vec::new();
    for plan in &plans {
        for &ordering in &opts.orderings {
            for &open in &opts.bindings {
                let mut cell = CellStats {
                    plan: plan.name.clone(),
                    ordering,
                    open,
                    runs: 0,
                    counts: InvariantCounts::default(),
                    nso_runs: 0,
                    nso_failures: 0,
                    failures: Vec::new(),
                };
                for seed in opts.start_seed..opts.start_seed + opts.seeds {
                    let repro = format!(
                        "seed={seed} ordering={} binding={} {plan}",
                        ordering_label(ordering),
                        binding_label(open),
                    );
                    if opts.gcs {
                        let scenario = GcsScenario::new(seed, ordering, open, plan.clone())
                            .with_shards(opts.shards);
                        let run = scenario.run();
                        let report = run.check();
                        cell.runs += 1;
                        cell.counts.merge(&report.counts);
                        for v in &report.violations {
                            cell.failures.push(format!("{repro}: {v}"));
                        }
                        // Shard determinism: the same seeded cell replayed
                        // on a single engine must deliver the exact same
                        // per-group sequences the sharded node delivered.
                        if opts.shards > 1 {
                            let baseline = GcsScenario::new(seed, ordering, open, plan.clone())
                                .with_shards(1)
                                .run();
                            if let Some(diff) = delivery_divergence(&baseline, &run) {
                                cell.failures.push(format!(
                                    "{repro}: shards=1 vs shards={} delivery logs diverged: {diff}",
                                    opts.shards
                                ));
                            }
                        }
                    }
                    if opts.nso {
                        cell.nso_runs += 1;
                        let nso_failures = run_nso_cell(seed, ordering, open, plan);
                        if !nso_failures.is_empty() {
                            cell.nso_failures += 1;
                        }
                        for f in nso_failures {
                            cell.failures.push(format!("{repro}: {f}"));
                        }
                    }
                }
                if !opts.quiet {
                    let status = if cell.passed() { "ok" } else { "FAIL" };
                    eprintln!(
                        "  {:<16} {:<4} {:<6} {status}",
                        cell.plan,
                        ordering_label(ordering),
                        binding_label(open),
                    );
                }
                cells.push(cell);
            }
        }
    }

    print_table(&cells, &opts);

    let failed: Vec<&CellStats> = cells.iter().filter(|c| !c.passed()).collect();
    if failed.is_empty() {
        println!(
            "\nPASS: {} cells x {} seeds, all invariants held",
            cells.len(),
            opts.seeds
        );
        ExitCode::SUCCESS
    } else {
        println!("\nFAILURES:");
        for cell in &failed {
            for f in &cell.failures {
                println!("  FAIL {f}");
            }
            // A narrowed command that replays exactly the failing cell.
            println!(
                "  repro: campaign --seeds {} --start-seed <seed above> --plan {} \
                 --ordering {} --binding {}{}",
                1,
                cell.plan,
                ordering_label(cell.ordering),
                binding_label(cell.open),
                if opts.random_plans > 0 {
                    format!(
                        " --random-plans {} (with --start-seed {})",
                        opts.random_plans, opts.start_seed
                    )
                } else {
                    String::new()
                },
            );
        }
        println!(
            "\nFAIL: {}/{} cells violated invariants",
            failed.len(),
            cells.len()
        );
        ExitCode::FAILURE
    }
}

fn print_table(cells: &[CellStats], opts: &Options) {
    println!(
        "\n{:<16} {:<4} {:<6} {:>5}  {}  {:>9}  result",
        "plan",
        "ord",
        "bind",
        "seeds",
        Invariant::ALL
            .iter()
            .map(|i| format!("{:>11}", i.label()))
            .collect::<Vec<_>>()
            .join(" "),
        "nso",
    );
    for cell in cells {
        let per_invariant = (0..5)
            .map(|i| {
                format!(
                    "{:>11}",
                    format!(
                        "{}/{}",
                        cell.counts.checks[i] - cell.counts.violations[i],
                        cell.counts.checks[i]
                    )
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<16} {:<4} {:<6} {:>5}  {}  {:>9}  {}",
            cell.plan,
            ordering_label(cell.ordering),
            binding_label(cell.open),
            opts.seeds,
            per_invariant,
            format!("{}/{}", cell.nso_runs - cell.nso_failures, cell.nso_runs),
            if cell.passed() { "ok" } else { "FAIL" },
        );
    }
}

/// Recovery campaign: every cell kills a member of both overlapping
/// groups mid-stream and later recovers it (`recover(node@t)`); the
/// five standing invariants must hold on the post-recovery logs and the
/// recovery obligations must hold on the durable evidence. Each seed is
/// also replayed at shards=1 and the delivery logs must match.
fn run_recovery_campaign(opts: &Options) -> ExitCode {
    let mut counts = InvariantCounts::default();
    let mut runs = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for &ordering in &opts.orderings {
        for seed in opts.start_seed..opts.start_seed + opts.seeds {
            let scenario = RecoveryScenario::new(seed, ordering).with_shards(opts.shards);
            let repro = scenario.repro();
            let run = scenario.run();
            runs += 1;
            let report = run.check();
            counts.merge(&report.counts);
            for v in &report.violations {
                failures.push(format!("{repro}: {v}"));
            }
            for v in run.recovery_violations() {
                failures.push(format!("{repro}: recovery: {v}"));
            }
            if opts.shards > 1 {
                let baseline = RecoveryScenario::new(seed, ordering).with_shards(1).run();
                let a = ScenarioRun {
                    repro: baseline.repro.clone(),
                    logs: baseline.logs,
                    sent: baseline.sent,
                };
                let b = ScenarioRun {
                    repro: run.repro.clone(),
                    logs: run.logs,
                    sent: run.sent,
                };
                if let Some(diff) = delivery_divergence(&a, &b) {
                    failures.push(format!(
                        "{repro}: shards=1 vs shards={} delivery logs diverged: {diff}",
                        opts.shards
                    ));
                }
            }
        }
    }
    println!(
        "\nrecovery campaign: {} runs ({} orderings x {} seeds)",
        runs,
        opts.orderings.len(),
        opts.seeds
    );
    for (i, inv) in Invariant::ALL.iter().enumerate() {
        println!(
            "  {:<14} {}/{} checks clean",
            inv.label(),
            counts.checks[i] - counts.violations[i],
            counts.checks[i]
        );
    }
    if failures.is_empty() {
        println!("\nPASS: every member recovered from its durable log + snapshot cleanly");
        ExitCode::SUCCESS
    } else {
        println!("\nFAILURES:");
        for f in &failures {
            println!("  FAIL {f}");
        }
        println!(
            "\nFAIL: {} violations across {} recovery runs",
            failures.len(),
            runs
        );
        ExitCode::FAILURE
    }
}

/// Mutation campaign: every run's logs are perturbed the way a protocol
/// bug would perturb them; the checker must object every time.
fn run_mutation_campaign(opts: &Options, plans: &[FaultPlan], mutation: Mutation) -> ExitCode {
    let mut caught = 0u64;
    let mut applied = 0u64;
    let mut missed: Vec<String> = Vec::new();
    for plan in plans {
        for &ordering in &opts.orderings {
            for seed in opts.start_seed..opts.start_seed + opts.seeds {
                let scenario =
                    GcsScenario::new(seed, ordering, false, plan.clone()).with_shards(opts.shards);
                let run = scenario.run();
                let mut logs = run.logs;
                if !mutation.apply(&mut logs) {
                    continue; // run too quiet to host this mutation
                }
                applied += 1;
                let report = InvariantChecker::new(logs, run.sent).check();
                if report.passed() {
                    missed.push(format!(
                        "seed={seed} ordering={} {plan}: mutation {} went undetected",
                        ordering_label(ordering),
                        mutation.name(),
                        plan = plan,
                    ));
                } else {
                    caught += 1;
                }
            }
        }
    }
    println!(
        "mutation {}: {caught}/{applied} mutated runs caught by the checker",
        mutation.name()
    );
    if applied == 0 {
        println!("FAIL: mutation never applicable (runs produced no material)");
        return ExitCode::FAILURE;
    }
    if missed.is_empty() {
        println!("PASS: every injected bug was detected");
        ExitCode::SUCCESS
    } else {
        for m in &missed {
            println!("  MISSED {m}");
        }
        println!("FAIL: {} mutated runs slipped through", missed.len());
        ExitCode::FAILURE
    }
}
