/root/repo/target/debug/deps/table1_plain_corba-ea61cc845d3b8d2d.d: crates/bench/benches/table1_plain_corba.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_plain_corba-ea61cc845d3b8d2d.rmeta: crates/bench/benches/table1_plain_corba.rs Cargo.toml

crates/bench/benches/table1_plain_corba.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
