//! Passive replication with the §4.2 optimisations: a key-value store
//! whose primary is the restricted-group request manager (and, under the
//! asymmetric protocol, the sequencer). Writes are answered by the
//! primary alone and forwarded one-way to the backups, which log them.
//! When the primary crashes, a backup is promoted, replays its backlog,
//! and the client rebinds and retries — without losing or duplicating any
//! write.
//!
//! ```text
//! cargo run -p newtop-examples --bin passive_store
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn service() -> GroupId {
    GroupId::new("kv-store")
}

struct StoreReplica {
    members: Vec<NodeId>,
}

impl NsoApp for StoreReplica {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            service(),
            self.members.clone(),
            Replication::Passive,
            OpenOptimisation::AsyncForwarding,
            GroupConfig::request_reply(),
            now,
            out,
        )
        .expect("server group");
        let mut data: BTreeMap<String, String> = BTreeMap::new();
        nso.register_group_servant(
            service(),
            Box::new(move |op: &str, args: &[u8]| {
                let text = String::from_utf8_lossy(args).into_owned();
                match op {
                    "put" => {
                        if let Some((k, v)) = text.split_once('=') {
                            data.insert(k.to_owned(), v.to_owned());
                        }
                        Bytes::from_static(b"ok")
                    }
                    "get" => {
                        Bytes::from(data.get(&text).cloned().unwrap_or_else(|| "<none>".into()))
                    }
                    "dump" => Bytes::from(
                        data.iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                    _ => Bytes::new(),
                }
            }),
        );
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, _now: SimTime, _out: &mut Outbox) {
        if let NsoOutput::Promoted { replayed, .. } = output {
            println!(
                "  [t] replica {} promoted to primary, replayed {replayed} logged writes",
                nso.node()
            );
        }
    }
}

struct StoreClient {
    servers: Vec<NodeId>,
    manager_index: usize,
    writes: Vec<&'static str>,
    step: usize,
    binding: Option<GroupHandle>,
    pending: Option<u64>,
    final_dump: Option<String>,
    log: Vec<String>,
}

impl StoreClient {
    fn next(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let Some(binding) = self.binding.clone() else {
            return;
        };
        let (op, args) = if self.step < self.writes.len() {
            ("put", Bytes::from(self.writes[self.step]))
        } else if self.step == self.writes.len() {
            ("dump", Bytes::new())
        } else {
            return;
        };
        // The binding may race away between a completion and the next
        // call; the rebind path re-drives us via BindingReady.
        match binding.invoke(nso, op, args, ReplyMode::First, now, out) {
            Ok(call) => self.pending = Some(call.number),
            Err(_) => self.pending = None,
        }
    }
}

impl NsoApp for StoreClient {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(Duration::from_millis(5), tags::APP_BASE);
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        // Bind to the designated manager (restricted group): the lowest
        // surviving server.
        let manager = self.servers[self.manager_index % self.servers.len()];
        nso.bind(service(), BindOptions::open(manager), now, out)
            .expect("bind");
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                match self.pending {
                    // Retry the interrupted write with its original call
                    // number; the promoted primary deduplicates.
                    Some(number) => {
                        let _ = binding.retry(nso, number, now, out);
                    }
                    None => self.next(nso, now, out),
                }
            }
            NsoOutput::BindFailed { .. } | NsoOutput::BindingBroken { .. } => {
                if matches!(output, NsoOutput::BindingBroken { .. }) {
                    self.log
                        .push("binding broken: rebinding to a backup".into());
                }
                self.binding = None;
                self.manager_index += 1;
                self.on_timer(nso, tags::APP_BASE, now, out);
            }
            NsoOutput::InvocationComplete { replies, .. } => {
                self.pending = None;
                if self.step < self.writes.len() {
                    self.log.push(format!(
                        "put {:<12} -> {}",
                        self.writes[self.step],
                        String::from_utf8_lossy(&replies[0].1)
                    ));
                } else {
                    self.final_dump = Some(String::from_utf8_lossy(&replies[0].1).into_owned());
                }
                self.step += 1;
                self.next(nso, now, out);
            }
            _ => {}
        }
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::lan(11));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(StoreReplica {
                    members: servers.clone(),
                }),
            )),
        );
    }
    let client_id = NodeId::from_index(3);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client_id,
            Box::new(StoreClient {
                servers: servers.clone(),
                manager_index: 0,
                writes: vec!["a=1", "b=2", "c=3", "d=4", "e=5", "f=6"],
                step: 0,
                binding: None,
                pending: None,
                final_dump: None,
                log: Vec::new(),
            }),
        )),
    );

    println!("passive replication: primary = request manager = sequencer (replica n0)");
    // Crash the primary mid-stream.
    sim.schedule_crash(SimTime::from_millis(15), servers[0]);
    println!("  [t] primary n0 crashed at t=15ms\n");
    sim.run_until(SimTime::from_secs(10));

    let client = sim
        .node_ref::<NsoNode>(client_id)
        .unwrap()
        .app_ref::<StoreClient>()
        .unwrap();
    for line in &client.log {
        println!("  {line}");
    }
    let dump = client.final_dump.clone().expect("final dump");
    println!("\nfinal store at the promoted primary: {dump}");
    assert_eq!(
        dump, "a=1,b=2,c=3,d=4,e=5,f=6",
        "no write lost or duplicated"
    );
    println!("all six writes survived the primary crash exactly once");
}
