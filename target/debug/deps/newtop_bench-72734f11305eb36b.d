/root/repo/target/debug/deps/newtop_bench-72734f11305eb36b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_bench-72734f11305eb36b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
