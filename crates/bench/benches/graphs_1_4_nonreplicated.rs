//! **Graphs 1–4** — a non-replicated server accessed via the NewTop
//! service: response time and throughput vs client count, on the LAN
//! (graphs 1–2) and with distant clients (graphs 3–4), plus the plain
//! CORBA reference the §5.1.1 discussion compares against (the ≈2.5×
//! single-client overhead).

use newtop_bench::{bench_seed, CLIENT_SWEEP};
use newtop_net::stats::TextTable;
use newtop_workloads::figures::{graphs_1_4_nonreplicated, plain_corba_sweep};

fn main() {
    let seed = bench_seed();
    for (wan, label) in [
        (false, "Graphs 1-2: LAN"),
        (true, "Graphs 3-4: distant clients"),
    ] {
        let (ms, rps) = graphs_1_4_nonreplicated(wan, CLIENT_SWEEP, seed);
        let table = TextTable::from_series(
            format!("{label} — non-replicated server via NewTop"),
            "clients",
            &[ms, rps],
        );
        println!("{table}");
    }
    let (newtop_ms, _) = graphs_1_4_nonreplicated(false, &[1], seed);
    let (plain_ms, _) = plain_corba_sweep(false, &[1], seed);
    let ratio = newtop_ms.y_at(1.0).unwrap_or(0.0) / plain_ms.y_at(1.0).unwrap_or(1.0);
    println!(
        "single-client LAN cost: NewTop {:.2} ms vs plain CORBA {:.2} ms -> {ratio:.2}x \
         (paper: around 2.5x)",
        newtop_ms.y_at(1.0).unwrap_or(0.0),
        plain_ms.y_at(1.0).unwrap_or(0.0),
    );
    println!(
        "paper shape: a single LAN client nearly saturates the server (throughput \
         plateaus, response time grows); over the WAN throughput scales with \
         client count at near-flat response times."
    );
}
