//! Dynamic membership through the public API: joining and leaving peer
//! groups at runtime, and causal-order delivery.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn room() -> GroupId {
    GroupId::new("dyn-room")
}

fn config() -> GroupConfig {
    GroupConfig::peer().with_time_silence(Duration::from_millis(15))
}

/// A founder: creates the group and chats periodically.
struct Founder {
    members: Vec<NodeId>,
    delivered: Vec<(NodeId, Bytes)>,
    sent: u32,
}

impl NsoApp for Founder {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_peer_group(room(), self.members.clone(), config(), now, out)
            .expect("create");
        out.set_timer(Duration::from_millis(20), tags::APP_BASE);
    }
    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        self.sent += 1;
        if let Some(peer) = nso.handle_for(&room()) {
            let _ = peer.send(
                nso,
                Bytes::from(format!("{}#{}", nso.node(), self.sent)),
                DeliveryOrder::Total,
                now,
                out,
            );
        }
        out.set_timer(Duration::from_millis(25), tags::APP_BASE);
    }
    fn on_output(&mut self, _: &mut Nso, output: NsoOutput, _: SimTime, _: &mut Outbox) {
        if let NsoOutput::PeerDeliver {
            sender, payload, ..
        } = output
        {
            self.delivered.push((sender, payload));
        }
    }
}

/// A latecomer: joins through a contact at a scheduled time, chats, then
/// (optionally) leaves.
struct Latecomer {
    contact: NodeId,
    join_at: Duration,
    leave_after: Option<Duration>,
    joined_view: Option<usize>,
    delivered: Vec<(NodeId, Bytes)>,
    sent: u32,
    left: bool,
}

const JOIN_TAG: u64 = tags::APP_BASE;
const CHAT_TAG: u64 = tags::APP_BASE + 1;
const LEAVE_TAG: u64 = tags::APP_BASE + 2;

impl NsoApp for Latecomer {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(self.join_at, JOIN_TAG);
    }
    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        match tag {
            JOIN_TAG => {
                nso.join_peer_group(room(), config(), self.contact, now, out)
                    .expect("join");
            }
            CHAT_TAG => {
                if self.left {
                    return;
                }
                self.sent += 1;
                if let Some(peer) = nso.handle_for(&room()) {
                    let _ = peer.send(
                        nso,
                        Bytes::from(format!("{}#{}", nso.node(), self.sent)),
                        DeliveryOrder::Total,
                        now,
                        out,
                    );
                }
                out.set_timer(Duration::from_millis(25), CHAT_TAG);
            }
            LEAVE_TAG => {
                nso.leave_peer_group(&room(), now, out).expect("leave");
                self.left = true;
            }
            _ => {}
        }
    }
    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, _: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::ViewChanged { group, view }
                if group == room() && view.contains(nso.node()) && self.joined_view.is_none() =>
            {
                self.joined_view = Some(view.len());
                out.set_timer(Duration::from_millis(5), CHAT_TAG);
                if let Some(after) = self.leave_after {
                    out.set_timer(after, LEAVE_TAG);
                }
            }
            NsoOutput::PeerDeliver {
                sender, payload, ..
            } => {
                self.delivered.push((sender, payload));
            }
            _ => {}
        }
    }
}

#[test]
fn latecomer_joins_chats_and_leaves() {
    let mut sim = Sim::new(SimConfig::lan(81));
    let founders: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    for &f in &founders {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                f,
                Box::new(Founder {
                    members: founders.clone(),
                    delivered: Vec::new(),
                    sent: 0,
                }),
            )),
        );
    }
    let late = NodeId::from_index(2);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            late,
            Box::new(Latecomer {
                contact: founders[0],
                join_at: Duration::from_millis(150),
                leave_after: Some(Duration::from_millis(600)),
                joined_view: None,
                delivered: Vec::new(),
                sent: 0,
                left: false,
            }),
        )),
    );
    sim.run_until(SimTime::from_secs(5));

    let late_app = sim
        .node_ref::<NsoNode>(late)
        .unwrap()
        .app_ref::<Latecomer>()
        .unwrap();
    assert_eq!(late_app.joined_view, Some(3), "joined a 3-member view");
    assert!(late_app.sent > 5, "chatted while a member");
    assert!(late_app.left, "left gracefully");
    assert!(
        late_app.delivered.iter().any(|(s, _)| *s == founders[1]),
        "saw the founders' messages while in"
    );

    // The founders' final view excludes the leaver, and they received the
    // latecomer's messages.
    for &f in &founders {
        let node = sim.node_ref::<NsoNode>(f).unwrap();
        let view = node.nso().view_of(&room()).expect("view");
        assert_eq!(view.members(), &founders[..], "back to the founding pair");
        let app = node.app_ref::<Founder>().unwrap();
        let from_late = app.delivered.iter().filter(|(s, _)| *s == late).count();
        assert!(from_late > 3, "founder {f} delivered the latecomer's chat");
    }

    // Virtual synchrony across the join and leave: both founders saw the
    // identical delivery sequence.
    let seqs: Vec<Vec<(NodeId, Bytes)>> = founders
        .iter()
        .map(|&f| {
            sim.node_ref::<NsoNode>(f)
                .unwrap()
                .app_ref::<Founder>()
                .unwrap()
                .delivered
                .clone()
        })
        .collect();
    assert_eq!(seqs[0], seqs[1]);
}

#[test]
fn causal_one_way_sends_preserve_sender_fifo() {
    struct CausalPeer {
        members: Vec<NodeId>,
        delivered: Vec<(NodeId, Bytes)>,
        to_send: u32,
        sent: u32,
    }
    impl NsoApp for CausalPeer {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            nso.create_peer_group(room(), self.members.clone(), config(), now, out)
                .expect("create");
            out.set_timer(Duration::from_millis(10), tags::APP_BASE);
        }
        fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
            if self.sent < self.to_send {
                self.sent += 1;
                if let Some(peer) = nso.handle_for(&room()) {
                    let _ = peer.send(
                        nso,
                        Bytes::from(format!("{}:{}", nso.node(), self.sent)),
                        DeliveryOrder::Causal,
                        now,
                        out,
                    );
                }
                out.set_timer(Duration::from_millis(8), tags::APP_BASE);
            }
        }
        fn on_output(&mut self, _: &mut Nso, output: NsoOutput, _: SimTime, _: &mut Outbox) {
            if let NsoOutput::PeerDeliver {
                sender, payload, ..
            } = output
            {
                self.delivered.push((sender, payload));
            }
        }
    }

    let mut sim = Sim::new(SimConfig::lan(82));
    let members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for &m in &members {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                m,
                Box::new(CausalPeer {
                    members: members.clone(),
                    delivered: Vec::new(),
                    to_send: 10,
                    sent: 0,
                }),
            )),
        );
    }
    sim.run_until(SimTime::from_secs(3));
    for &m in &members {
        let app = sim
            .node_ref::<NsoNode>(m)
            .unwrap()
            .app_ref::<CausalPeer>()
            .unwrap();
        assert_eq!(
            app.delivered.len(),
            30,
            "all causal multicasts delivered at {m}"
        );
        // Per-sender FIFO (a consequence of causal order).
        for &q in &members {
            let from_q: Vec<String> = app
                .delivered
                .iter()
                .filter(|(s, _)| *s == q)
                .map(|(_, p)| String::from_utf8_lossy(p).into_owned())
                .collect();
            let expect: Vec<String> = (1..=10).map(|i| format!("{q}:{i}")).collect();
            assert_eq!(from_q, expect, "sender {q} FIFO at {m}");
        }
    }
}
