//! Group-to-group invocation (Fig. 6 of the paper): a replicated *client*
//! group gx invokes a replicated *server* group gy through a shared
//! request manager and a client monitor group gz = gx ∪ {manager}.
//!
//! Every member of gx issues its copy of the call; the manager filters
//! the duplicates, forwards one into gy, and multicasts the collected
//! replies in gz so all of gx receives them atomically.
//!
//! ```text
//! cargo run -p newtop-examples --bin group_to_group
//! ```

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gy() -> GroupId {
    GroupId::new("gy")
}
fn gx() -> GroupId {
    GroupId::new("gx")
}
fn gz() -> GroupId {
    GroupId::new("gz")
}

struct Server {
    gy_members: Vec<NodeId>,
    gz_members: Vec<NodeId>,
    manager: NodeId,
}

impl NsoApp for Server {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gy(),
            self.gy_members.clone(),
            Replication::Active,
            OpenOptimisation::None,
            GroupConfig::request_reply(),
            now,
            out,
        )
        .expect("gy");
        let me = nso.node();
        nso.register_group_servant(
            gy(),
            Box::new(move |op: &str, args: &[u8]| {
                Bytes::from(format!("{op}[{}] by {me}", String::from_utf8_lossy(args)))
            }),
        );
        if nso.node() == self.manager {
            nso.setup_monitor_group(
                gz(),
                gx(),
                self.manager,
                gy(),
                self.gz_members.clone(),
                GroupConfig::request_reply(),
                now,
                out,
            )
            .expect("gz");
        }
    }

    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

struct ClientMember {
    gx_members: Vec<NodeId>,
    gz_members: Vec<NodeId>,
    manager: NodeId,
    trigger: bool,
    results: Vec<(u64, Vec<(NodeId, Bytes)>)>,
}

impl NsoApp for ClientMember {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_peer_group(
            gx(),
            self.gx_members.clone(),
            GroupConfig::peer().with_time_silence(Duration::from_millis(15)),
            now,
            out,
        )
        .expect("gx");
        nso.setup_monitor_group(
            gz(),
            gx(),
            self.manager,
            gy(),
            self.gz_members.clone(),
            GroupConfig::request_reply(),
            now,
            out,
        )
        .expect("gz");
        if self.trigger {
            out.set_timer(Duration::from_millis(20), tags::APP_BASE);
        }
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        // Totally-ordered trigger in gx keeps every member's group-call
        // counter aligned.
        if let Some(peer) = nso.handle_for(&gx()) {
            let _ = peer.send(
                nso,
                Bytes::from_static(b"query"),
                DeliveryOrder::Total,
                now,
                out,
            );
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::PeerDeliver { group, payload, .. } if group == gx() => {
                let _ = nso.g2g_invoke(&gz(), "survey", payload, ReplyMode::All, now, out);
            }
            NsoOutput::G2gComplete {
                number, replies, ..
            } => {
                self.results.push((number, replies));
            }
            _ => {}
        }
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::lan(13));
    let gy_members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let gx_members: Vec<NodeId> = (3..6).map(NodeId::from_index).collect();
    let manager = gy_members[0];
    let mut gz_members = gx_members.clone();
    gz_members.push(manager);

    for &s in &gy_members {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(Server {
                    gy_members: gy_members.clone(),
                    gz_members: gz_members.clone(),
                    manager,
                }),
            )),
        );
    }
    for (i, &m) in gx_members.iter().enumerate() {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                m,
                Box::new(ClientMember {
                    gx_members: gx_members.clone(),
                    gz_members: gz_members.clone(),
                    manager,
                    trigger: i == 0,
                    results: Vec::new(),
                }),
            )),
        );
    }
    sim.run_until(SimTime::from_secs(5));

    println!(
        "group-to-group: client group gx{:?} -> server group gy{:?}",
        [3, 4, 5],
        [0, 1, 2]
    );
    println!("request manager {manager}; monitor group gz = gx + manager\n");
    let all: Vec<_> = gx_members
        .iter()
        .map(|&m| {
            sim.node_ref::<NsoNode>(m)
                .unwrap()
                .app_ref::<ClientMember>()
                .unwrap()
                .results
                .clone()
        })
        .collect();
    let reference = &all[0];
    assert!(!reference.is_empty(), "the group call completed");
    for (i, r) in all.iter().enumerate() {
        assert_eq!(r, reference, "gx member {i} diverged");
    }
    for (number, replies) in reference {
        println!("group call #{number} — replies delivered atomically to all of gx:");
        for (server, body) in replies {
            println!("  {server}: {}", String::from_utf8_lossy(body));
        }
    }
    println!(
        "\nall {} gx members received identical reply sets ({} gy replies each)",
        gx_members.len(),
        reference[0].1.len()
    );
}
