/root/repo/target/debug/deps/partitions-5ee782d96b59a64f.d: tests/tests/partitions.rs

/root/repo/target/debug/deps/partitions-5ee782d96b59a64f: tests/tests/partitions.rs

tests/tests/partitions.rs:
