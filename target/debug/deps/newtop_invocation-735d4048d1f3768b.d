/root/repo/target/debug/deps/newtop_invocation-735d4048d1f3768b.d: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

/root/repo/target/debug/deps/newtop_invocation-735d4048d1f3768b: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs

crates/invocation/src/lib.rs:
crates/invocation/src/api.rs:
crates/invocation/src/client.rs:
crates/invocation/src/g2g.rs:
crates/invocation/src/server.rs:
