/root/repo/target/debug/deps/interactions-a757190f4fce1031.d: tests/tests/interactions.rs

/root/repo/target/debug/deps/interactions-a757190f4fce1031: tests/tests/interactions.rs

tests/tests/interactions.rs:
