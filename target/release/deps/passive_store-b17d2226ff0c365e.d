/root/repo/target/release/deps/passive_store-b17d2226ff0c365e.d: examples/src/bin/passive_store.rs

/root/repo/target/release/deps/passive_store-b17d2226ff0c365e: examples/src/bin/passive_store.rs

examples/src/bin/passive_store.rs:
