//! Simulator harness for the group communication service.
//!
//! Hosts a [`GcsMember`] plus its [`OrbCore`] on each simulated node and
//! lets tests script group operations at chosen virtual times. Used by
//! this crate's integration tests and by downstream crates' tests; it is
//! not part of the production API surface.
//!
//! Scripted operations are injected as special control packets (the
//! simulator's only scheduling primitive), marked with a magic prefix
//! that cannot collide with GIOP traffic.

use std::collections::VecDeque;

use bytes::Bytes;

use newtop_net::sim::{NodeEvent, Outbox, Sim, SimConfig, SimNode};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};
use newtop_orb::orb::{OrbCore, OrbIncoming};

use crate::group::{DeliveryOrder, GroupConfig, GroupId};
use crate::member::{GcsNet, GcsOutput};
use crate::messages::GcsMessage;
use crate::shard::ShardedGcs;
use crate::view::View;
use crate::GCS_OPERATION;

const CTRL_MAGIC: &[u8; 6] = b"NTCTRL";

/// A scripted group operation.
#[derive(Clone, Debug)]
pub enum Command {
    /// Statically create a group with known membership.
    Create {
        /// Group to create.
        group: GroupId,
        /// Its configuration.
        config: GroupConfig,
        /// Full initial membership.
        members: Vec<NodeId>,
    },
    /// Join an existing group through a contact member.
    Join {
        /// Group to join.
        group: GroupId,
        /// Configuration (must match the group's).
        config: GroupConfig,
        /// A current member to contact.
        contact: NodeId,
    },
    /// Leave a group.
    Leave {
        /// Group to leave.
        group: GroupId,
    },
    /// Multicast a payload.
    Multicast {
        /// Destination group.
        group: GroupId,
        /// Requested guarantee.
        order: DeliveryOrder,
        /// Payload.
        payload: Bytes,
    },
}

fn encode_config(enc: &mut CdrEncoder, c: &GroupConfig) {
    c.encode(enc);
}

fn decode_config(dec: &mut CdrDecoder<'_>) -> Result<GroupConfig, CdrError> {
    GroupConfig::decode(dec)
}

/// Encodes a scripted command as a magic-prefixed control packet
/// payload. Public so downstream harnesses (the durable-recovery
/// harness in `newtop-dir`) can script the same operations.
#[must_use]
pub fn encode_command(cmd: &Command) -> Bytes {
    let mut enc = CdrEncoder::new();
    for b in CTRL_MAGIC {
        enc.write_u8(*b);
    }
    match cmd {
        Command::Create {
            group,
            config,
            members,
        } => {
            enc.write_u8(0);
            group.encode(&mut enc);
            encode_config(&mut enc, config);
            members.encode(&mut enc);
        }
        Command::Join {
            group,
            config,
            contact,
        } => {
            enc.write_u8(1);
            group.encode(&mut enc);
            encode_config(&mut enc, config);
            contact.encode(&mut enc);
        }
        Command::Leave { group } => {
            enc.write_u8(2);
            group.encode(&mut enc);
        }
        Command::Multicast {
            group,
            order,
            payload,
        } => {
            enc.write_u8(3);
            group.encode(&mut enc);
            enc.write_u8(match order {
                DeliveryOrder::Causal => 0,
                DeliveryOrder::Total => 1,
            });
            enc.write_bytes(payload);
        }
    }
    enc.finish()
}

/// Decodes a scripted command from a packet payload, or `None` when the
/// payload is not a magic-prefixed control packet.
#[must_use]
pub fn decode_command(payload: &[u8]) -> Option<Command> {
    if payload.len() < CTRL_MAGIC.len() || &payload[..CTRL_MAGIC.len()] != CTRL_MAGIC {
        return None;
    }
    // Decode over the full frame (consuming the magic through the
    // decoder) so CDR alignment matches the encoder's absolute offsets.
    let mut dec = CdrDecoder::new(payload);
    for _ in 0..CTRL_MAGIC.len() {
        dec.read_u8().ok()?;
    }
    let cmd = match dec.read_u8().ok()? {
        0 => Command::Create {
            group: GroupId::decode(&mut dec).ok()?,
            config: decode_config(&mut dec).ok()?,
            members: Vec::decode(&mut dec).ok()?,
        },
        1 => Command::Join {
            group: GroupId::decode(&mut dec).ok()?,
            config: decode_config(&mut dec).ok()?,
            contact: NodeId::decode(&mut dec).ok()?,
        },
        2 => Command::Leave {
            group: GroupId::decode(&mut dec).ok()?,
        },
        3 => Command::Multicast {
            group: GroupId::decode(&mut dec).ok()?,
            order: match dec.read_u8().ok()? {
                0 => DeliveryOrder::Causal,
                _ => DeliveryOrder::Total,
            },
            payload: Bytes::from(dec.read_bytes().ok()?),
        },
        _ => return None,
    };
    Some(cmd)
}

/// A simulated node hosting its GCS shard engines and ORB.
pub struct GcsNode {
    gcs: ShardedGcs,
    orb: OrbCore,
    /// Every output the member produced, stamped with virtual time.
    pub outputs: Vec<(SimTime, GcsOutput)>,
}

impl GcsNode {
    /// Creates the node state for `id` with a single shard engine (the
    /// pre-sharding baseline).
    #[must_use]
    pub fn new(id: NodeId) -> Self {
        Self::with_shards(id, 1)
    }

    /// Creates the node state for `id` with `shards` parallel shard
    /// engines; groups are placed by the [`ShardedGcs`] rule (overlapping
    /// groups pin to a common shard).
    #[must_use]
    pub fn with_shards(id: NodeId, shards: usize) -> Self {
        GcsNode {
            gcs: ShardedGcs::new(id, 1 << 40, shards),
            orb: OrbCore::new(id),
            outputs: Vec::new(),
        }
    }

    /// The sharded engine set under test.
    #[must_use]
    pub fn gcs(&self) -> &ShardedGcs {
        &self.gcs
    }

    /// Delivered payloads for one group, in delivery order.
    #[must_use]
    pub fn delivered(&self, group: &GroupId) -> Vec<(NodeId, Bytes)> {
        self.outputs
            .iter()
            .filter_map(|(_, o)| match o {
                GcsOutput::Delivered {
                    group: g,
                    sender,
                    payload,
                    ..
                } if g == group => Some((*sender, payload.clone())),
                _ => None,
            })
            .collect()
    }

    /// Views installed for one group, in installation order.
    #[must_use]
    pub fn views(&self, group: &GroupId) -> Vec<View> {
        self.outputs
            .iter()
            .filter_map(|(_, o)| match o {
                GcsOutput::ViewInstalled { group: g, view, .. } if g == group => Some(view.clone()),
                _ => None,
            })
            .collect()
    }
}

impl SimNode for GcsNode {
    fn on_event(&mut self, now: SimTime, ev: NodeEvent, out: &mut Outbox) {
        match ev {
            NodeEvent::Start => {}
            NodeEvent::Packet(pkt) => {
                if let Some(cmd) = decode_command(&pkt.payload) {
                    let mut net = GcsNet::new(&mut self.orb, out);
                    let outputs = match cmd {
                        Command::Create {
                            group,
                            config,
                            members,
                        } => self
                            .gcs
                            .create_group(group, config, members, now, &mut net)
                            .unwrap_or_default(),
                        Command::Join {
                            group,
                            config,
                            contact,
                        } => {
                            let _ = self.gcs.join_group(group, config, contact, now, &mut net);
                            Vec::new()
                        }
                        Command::Leave { group } => self
                            .gcs
                            .leave_group(&group, now, &mut net)
                            .unwrap_or_default(),
                        Command::Multicast {
                            group,
                            order,
                            payload,
                        } => {
                            let _ = self.gcs.multicast(&group, order, payload, now, &mut net);
                            Vec::new()
                        }
                    };
                    self.outputs.extend(outputs.into_iter().map(|o| (now, o)));
                    return;
                }
                let incoming = self.orb.handle_packet(&pkt, out);
                if let Some(OrbIncoming::Upcall {
                    operation, body, ..
                }) = incoming
                {
                    if operation == GCS_OPERATION {
                        if let Ok(msg) = GcsMessage::from_cdr(&body) {
                            let mut net = GcsNet::new(&mut self.orb, out);
                            let outputs = self.gcs.on_message(msg, now, &mut net);
                            self.outputs.extend(outputs.into_iter().map(|o| (now, o)));
                        }
                    }
                }
            }
            NodeEvent::Timer(_, tag) => {
                if self.gcs.owns_tag(tag) {
                    let mut net = GcsNet::new(&mut self.orb, out);
                    let outputs = self.gcs.on_timer(tag, now, &mut net);
                    self.outputs.extend(outputs.into_iter().map(|o| (now, o)));
                }
            }
        }
    }
}

/// A scripted multi-node GCS scenario on the simulator.
pub struct GcsHarness {
    /// The underlying simulator (exposed for fault injection and custom
    /// scheduling).
    pub sim: Sim,
    nodes: Vec<NodeId>,
    /// Shard engines per node added from here on.
    shards: usize,
    /// Commands queued before their injection time.
    queued: VecDeque<()>,
}

impl GcsHarness {
    /// Creates a harness over a fresh simulator. Nodes host a single
    /// shard engine unless [`Self::with_shards`] raises the count.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        GcsHarness {
            sim: Sim::new(cfg),
            nodes: Vec::new(),
            shards: 1,
            queued: VecDeque::new(),
        }
    }

    /// Sets the shard-engine count for nodes added after this call.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The simulator seed, for reproduction messages: a failing run is
    /// re-created byte-for-byte by re-running with the same seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.sim.seed()
    }

    /// Adds `count` nodes at `site`, returning their ids.
    pub fn add_nodes(&mut self, site: Site, count: usize) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            // Two-phase: the node needs its own id.
            let id = NodeId::from_index(self.next_index());
            let node = GcsNode::with_shards(id, self.shards);
            let actual = self.sim.add_node(site, Box::new(node));
            assert_eq!(actual, id, "node id allocation must be dense");
            self.nodes.push(id);
            ids.push(id);
        }
        ids
    }

    fn next_index(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Schedules a command on one node at virtual time `at`.
    pub fn command(&mut self, at: SimTime, node: NodeId, cmd: &Command) {
        let payload = encode_command(cmd);
        self.sim.schedule_packet(
            at,
            newtop_net::sim::Packet {
                src: node,
                dst: node,
                payload,
            },
        );
        let _ = &self.queued;
    }

    /// Schedules group creation on every listed member at `at`.
    pub fn create_group(
        &mut self,
        at: SimTime,
        group: &GroupId,
        config: &GroupConfig,
        members: &[NodeId],
    ) {
        for &m in members {
            self.command(
                at,
                m,
                &Command::Create {
                    group: group.clone(),
                    config: config.clone(),
                    members: members.to_vec(),
                },
            );
        }
    }

    /// Schedules a multicast from `node` at `at`.
    pub fn multicast(
        &mut self,
        at: SimTime,
        node: NodeId,
        group: &GroupId,
        order: DeliveryOrder,
        payload: impl Into<Bytes>,
    ) {
        self.command(
            at,
            node,
            &Command::Multicast {
                group: group.clone(),
                order,
                payload: payload.into(),
            },
        );
    }

    /// Schedules a join at `at`.
    pub fn join(
        &mut self,
        at: SimTime,
        node: NodeId,
        group: &GroupId,
        config: &GroupConfig,
        contact: NodeId,
    ) {
        self.command(
            at,
            node,
            &Command::Join {
                group: group.clone(),
                config: config.clone(),
                contact,
            },
        );
    }

    /// Schedules a graceful leave at `at`.
    pub fn leave(&mut self, at: SimTime, node: NodeId, group: &GroupId) {
        self.command(
            at,
            node,
            &Command::Leave {
                group: group.clone(),
            },
        );
    }

    /// Runs the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Access to a node's recorded state.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not added through this harness.
    #[must_use]
    pub fn node(&self, node: NodeId) -> &GcsNode {
        self.sim
            .node_ref::<GcsNode>(node)
            .expect("node exists and is a GcsNode")
    }

    /// Delivered `(sender, payload)` pairs at `node` for `group`.
    #[must_use]
    pub fn delivered(&self, node: NodeId, group: &GroupId) -> Vec<(NodeId, Bytes)> {
        self.node(node).delivered(group)
    }

    /// Views installed at `node` for `group`.
    #[must_use]
    pub fn views(&self, node: NodeId, group: &GroupId) -> Vec<View> {
        self.node(node).views(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_encoding_round_trips() {
        let cmds = [
            Command::Create {
                group: GroupId::new("g"),
                config: GroupConfig::peer(),
                members: vec![NodeId::from_index(0), NodeId::from_index(1)],
            },
            Command::Join {
                group: GroupId::new("g"),
                config: GroupConfig::request_reply(),
                contact: NodeId::from_index(2),
            },
            Command::Leave {
                group: GroupId::new("g"),
            },
            Command::Multicast {
                group: GroupId::new("g"),
                order: DeliveryOrder::Total,
                payload: Bytes::from_static(b"hello"),
            },
        ];
        for cmd in &cmds {
            let encoded = encode_command(cmd);
            let decoded = decode_command(&encoded).expect("decodes");
            // Compare the round trip by re-encoding.
            assert_eq!(encode_command(&decoded), encoded);
        }
    }

    #[test]
    fn giop_frames_are_not_commands() {
        assert!(decode_command(b"GIOP frame bytes").is_none());
        assert!(decode_command(b"").is_none());
    }
}
