//! `--self-test`: proves each rule family still fires.
//!
//! Same detectability discipline as PR 3's `--mutate`: for every rule we
//! inject a known-bad snippet (under a virtual protocol-crate path) and
//! assert the rule catches it, plus a known-good twin that must produce
//! zero findings. A regressed rule therefore fails the `check.sh` gate
//! even if the workspace itself happens to be clean.

use crate::items::parse_file;
use crate::lexer::lex;
use crate::rules::{self, Finding};

struct Case {
    name: &'static str,
    /// Rule expected to fire on `bad` (`None` for good twins).
    expect: Option<&'static str>,
    /// Virtual workspace path the snippet pretends to live at.
    path: &'static str,
    src: &'static str,
}

const CASES: &[Case] = &[
    // rule 1 — determinism
    Case {
        name: "determinism/instant-now",
        expect: Some(rules::RULE_DETERMINISM),
        path: "crates/gcs/src/selftest.rs",
        src: "impl GcsMember { fn on_timer(&mut self) { let deadline = Instant::now(); } }",
    },
    Case {
        name: "determinism/system-time",
        expect: Some(rules::RULE_DETERMINISM),
        path: "crates/invocation/src/selftest.rs",
        src: "fn stamp() -> u64 { SystemTime::now().elapsed().as_secs() }",
    },
    Case {
        name: "determinism/thread-rng",
        expect: Some(rules::RULE_DETERMINISM),
        path: "crates/check/src/selftest.rs",
        src: "fn jitter() -> u64 { thread_rng().gen() }",
    },
    Case {
        name: "determinism/hashmap-iteration",
        expect: Some(rules::RULE_DETERMINISM),
        path: "crates/core/src/selftest.rs",
        src: "fn pick(&self) { for (k, v) in self.routes { } let m: HashMap<u32, u32> = Default::default(); }",
    },
    Case {
        name: "determinism/good-sim-time",
        expect: None,
        path: "crates/gcs/src/selftest.rs",
        src: "fn on_timer(&mut self, now: SimTime) { let deadline = now + self.timeout; let m: BTreeMap<u32, u32> = BTreeMap::new(); }",
    },
    // rule 2 — panic-freedom on message paths
    Case {
        name: "panic-free/unwrap-in-decode",
        expect: Some(rules::RULE_PANIC_FREE),
        path: "crates/orb/src/selftest.rs",
        src: "impl CdrDecoder { fn read_u32(&mut self) -> u32 { let b: Option<u32> = None; b.unwrap() } }",
    },
    Case {
        name: "panic-free/indexing-reachable-from-ingest",
        expect: Some(rules::RULE_PANIC_FREE),
        path: "crates/gcs/src/selftest.rs",
        src: "impl GcsMember { fn on_message(&mut self, b: &[u8]) { helper(b); } }\n\
              fn helper(b: &[u8]) -> u8 { b[0] }",
    },
    Case {
        name: "panic-free/panic-macro-in-from-cdr",
        expect: Some(rules::RULE_PANIC_FREE),
        path: "crates/gcs/src/selftest.rs",
        src: "impl GcsMessage { fn from_cdr(d: &mut CdrDecoder) -> Self { panic!(\"bad tag\") } }",
    },
    Case {
        name: "panic-free/good-typed-error",
        expect: None,
        path: "crates/orb/src/selftest.rs",
        src: "impl CdrDecoder { fn read_u32(&mut self) -> Result<u32, CdrError> { self.bytes.get(0).copied().ok_or(CdrError::Truncated) } }",
    },
    // rule 3 — boundedness
    Case {
        name: "bounded/unbounded-channel",
        expect: Some(rules::RULE_BOUNDED),
        path: "crates/net/src/selftest.rs",
        src: "fn mk() { let (tx, rx) = crossbeam_channel::unbounded(); }",
    },
    Case {
        name: "bounded/std-mpsc",
        expect: Some(rules::RULE_BOUNDED),
        path: "crates/rt/src/selftest.rs",
        src: "fn mk() { let (tx, rx) = std::sync::mpsc::channel(); }",
    },
    Case {
        name: "bounded/good-flow-queue",
        expect: None,
        path: "crates/net/src/selftest.rs",
        src: "fn mk() { let (tx, rx) = newtop_flow::queue::bounded(64, Discipline::Backpressure); }",
    },
    // rule 4 — lock hygiene
    Case {
        name: "lock-hygiene/send-under-guard",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        path: "crates/net/src/selftest.rs",
        src: "fn fwd(&self) { let reg = self.registry.read(); reg.tx.try_send(frame); }",
    },
    Case {
        name: "lock-hygiene/write-all-under-guard",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        path: "crates/net/src/selftest.rs",
        src: "fn fwd(&self) { let mut conns = self.conns.lock(); conns.stream.write_all(&frame); }",
    },
    Case {
        name: "lock-hygiene/good-clone-then-send",
        expect: None,
        path: "crates/net/src/selftest.rs",
        src: "fn fwd(&self) { let tx = { let reg = self.registry.read(); reg.tx.clone() }; tx.try_send(frame); }",
    },
    // rule 4 extension — cross-shard channel ownership
    Case {
        name: "lock-hygiene/cross-shard-channel-outside-rt",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        path: "crates/workloads/src/selftest.rs",
        src: "fn fan_in(n: usize) { let shards = n; let (tx, rx) = bounded::<Frame>(64); }",
    },
    Case {
        name: "lock-hygiene/good-rt-shard-worker-channel",
        expect: None,
        path: "crates/rt/src/selftest.rs",
        src: "fn spawn_ingress(n: usize) { let shards = n; let (tx, rx) = bounded::<Frame>(64); std::thread::Builder::new().spawn(move || {}); }",
    },
    // rule 5 — durability (append acknowledged without reachable sync)
    Case {
        name: "durability/append-without-sync",
        expect: Some(rules::RULE_DURABILITY),
        path: "crates/dir/src/selftest.rs",
        src: "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage(ev); } \
              fn stage(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } }",
    },
    Case {
        name: "durability/good-synced-commit-point",
        expect: None,
        path: "crates/dir/src/selftest.rs",
        src: "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage(ev); self.commit(); } \
              fn stage(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } \
              fn commit(&mut self) { self.store.lock().unwrap().sync(self.id); } }",
    },
];

/// Runs the injected-violation suite. Returns a human-readable report;
/// `Err` lists every case whose outcome differed from its expectation.
pub fn run() -> Result<String, String> {
    let mut report = String::new();
    let mut failures = Vec::new();
    for case in CASES {
        let parsed = parse_file(case.path, lex(case.src));
        let findings: Vec<Finding> = rules::run_all(std::slice::from_ref(&parsed));
        let outcome = match case.expect {
            Some(rule) => {
                if findings.iter().any(|f| f.rule == rule) {
                    "caught"
                } else {
                    failures.push(format!(
                        "{}: expected rule `{rule}` to fire, findings: {findings:?}",
                        case.name
                    ));
                    "MISSED"
                }
            }
            None => {
                if findings.is_empty() {
                    "clean"
                } else {
                    failures.push(format!(
                        "{}: expected no findings, got: {findings:?}",
                        case.name
                    ));
                    "FALSE-POSITIVE"
                }
            }
        };
        report.push_str(&format!("self-test {:<44} {outcome}\n", case.name));
    }
    let injected = CASES.iter().filter(|c| c.expect.is_some()).count();
    report.push_str(&format!(
        "self-test: {injected} injected violations, {} good twins, {} failures\n",
        CASES.len() - injected,
        failures.len()
    ));
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\n{}", failures.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        if let Err(e) = super::run() {
            panic!("self-test failed:\n{e}");
        }
    }
}
