//! The group-communication wire protocol.
//!
//! Every [`GcsMessage`] travels between NewTop service objects as a oneway
//! ORB invocation (operation [`crate::GCS_OPERATION`] on the peer's
//! [`crate::NSO_OBJECT_KEY`] endpoint), marshalled with the mini-ORB's
//! CDR. This is the paper's architecture: since ORBs only provide
//! one-to-one communication, a multicast is implemented as a series of
//! per-member ORB invocations (§2.2).

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

use crate::clock::DepsVector;
use crate::group::{DeliveryOrder, GroupId};
use crate::view::{View, ViewId};

/// A per-sender contiguously-received vector `(sender, highest prefix
/// seq)` — piggybacked for stability tracking and exchanged during view
/// agreement.
pub type ContigVector = Vec<(NodeId, u64)>;

/// An application data message within a group and view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataMsg {
    /// Destination group.
    pub group: GroupId,
    /// The view the message was sent in.
    pub view: ViewId,
    /// The multicasting member.
    pub sender: NodeId,
    /// The sender's per-view FIFO sequence number (starting at 1).
    pub seq: u64,
    /// Lamport timestamp at send time (shared across the sender's groups).
    pub lamport: u64,
    /// Requested delivery guarantee.
    pub order: DeliveryOrder,
    /// Causal requirements: per-sender delivered prefixes at send time.
    pub deps: DepsVector,
    /// Piggybacked acknowledgement vector (receiver stability input).
    pub acks: ContigVector,
    /// Application payload.
    pub payload: Bytes,
}

impl DataMsg {
    /// The message's unique identity within its view.
    #[must_use]
    pub fn msg_id(&self) -> (NodeId, u64) {
        (self.sender, self.seq)
    }
}

/// An "I am alive" time-silence message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NullMsg {
    /// Destination group.
    pub group: GroupId,
    /// The sender's current view.
    pub view: ViewId,
    /// The silent-but-alive member.
    pub sender: NodeId,
    /// Lamport timestamp (advances symmetric-order delivery).
    pub lamport: u64,
    /// The sender's last data sequence number in this view. A receiver
    /// may only let this null's timestamp advance symmetric-order
    /// delivery once it holds all the sender's data up to `last_seq`
    /// (otherwise a null racing ahead of a lost data message could break
    /// total order).
    pub last_seq: u64,
    /// Piggybacked acknowledgement vector.
    pub acks: ContigVector,
}

/// All messages exchanged by the group communication service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcsMessage {
    /// Application data (multicast to all view members, including the
    /// sender itself via loopback). Refcounted so retransmissions,
    /// buffered copies, and view-change unions share one allocation; the
    /// wire representation is unchanged (`Arc<T>` marshals as `T`).
    Data(Arc<DataMsg>),
    /// Time-silence heartbeat.
    Null(NullMsg),
    /// Retransmission request: `from` is missing `sender`'s messages with
    /// sequences in `from_seq..=to_seq`.
    Nack {
        /// Group concerned.
        group: GroupId,
        /// View concerned.
        view: ViewId,
        /// The requesting member.
        from: NodeId,
        /// The original sender whose messages are missing.
        sender: NodeId,
        /// First missing sequence.
        from_seq: u64,
        /// Last missing sequence.
        to_seq: u64,
    },
    /// Sequencer ordering records (asymmetric protocol): global positions
    /// `start, start+1, ...` are assigned to the listed `(sender, seq)`
    /// data messages.
    SeqOrder {
        /// Group concerned.
        group: GroupId,
        /// View concerned.
        view: ViewId,
        /// The sequencer (for liveness accounting).
        sender: NodeId,
        /// The sequencer's Lamport timestamp.
        lamport: u64,
        /// Global position of the first entry.
        start: u64,
        /// Ordered message ids.
        entries: Vec<(NodeId, u64)>,
    },
    /// A member is missing ordering records from `from_order_seq` onwards.
    OrderNack {
        /// Group concerned.
        group: GroupId,
        /// View concerned.
        view: ViewId,
        /// The requesting member.
        from: NodeId,
        /// First missing global position.
        from_order_seq: u64,
    },
    /// A node asks a current member to bring it into the group.
    Join {
        /// Group to join.
        group: GroupId,
        /// The joining node.
        joiner: NodeId,
    },
    /// A member announces its graceful departure.
    Leave {
        /// Group being left.
        group: GroupId,
        /// The leaver's current view.
        view: ViewId,
        /// The departing member.
        leaver: NodeId,
    },
    /// A member reports suspicions/joiners to the would-be coordinator of
    /// the next view change.
    Suspect {
        /// Group concerned.
        group: GroupId,
        /// The reporter's current view.
        view: ViewId,
        /// The reporting member.
        from: NodeId,
        /// Members it suspects have crashed.
        suspects: Vec<NodeId>,
        /// Nodes it knows want to join.
        joiners: Vec<NodeId>,
    },
    /// View agreement, phase 1: the coordinator proposes a candidate
    /// membership and asks for state.
    Propose {
        /// Group concerned.
        group: GroupId,
        /// Agreement attempt number (monotonic per group).
        attempt: u64,
        /// The coordinating member.
        coordinator: NodeId,
        /// Proposed membership of the next view.
        candidates: Vec<NodeId>,
        /// The view being replaced.
        old_view: ViewId,
        /// The coordinator's contiguously-received vector, so responders
        /// only ship messages the coordinator lacks.
        coord_contig: ContigVector,
    },
    /// View agreement, phase 1 response: a candidate's received state and
    /// the messages the coordinator was missing.
    StateResp {
        /// Group concerned.
        group: GroupId,
        /// Attempt this responds to.
        attempt: u64,
        /// The responding candidate.
        from: NodeId,
        /// The responder's contiguously-received vector.
        contig: ContigVector,
        /// Messages the responder holds beyond the coordinator's vector.
        msgs: Vec<Arc<DataMsg>>,
    },
    /// View agreement, phase 2: flush-and-install. Carries the union
    /// messages so every survivor can deliver the same set (virtual
    /// synchrony) before installing the new view.
    Install {
        /// Group concerned.
        group: GroupId,
        /// Attempt being installed.
        attempt: u64,
        /// The new view.
        view: View,
        /// Messages some members may be missing.
        msgs: Vec<Arc<DataMsg>>,
    },
    /// A batch envelope: several small messages bound for one destination
    /// packed into a single GIOP frame per send-path flush. Constituents
    /// may target different groups (the batch is per destination, not per
    /// group); receivers unpack and route each constituent independently.
    /// Nested and empty batches are wire errors.
    Batch(Vec<GcsMessage>),
}

impl GcsMessage {
    /// The group this message concerns; `None` for a [`GcsMessage::Batch`]
    /// envelope, whose constituents may span groups.
    #[must_use]
    pub fn group(&self) -> Option<&GroupId> {
        match self {
            GcsMessage::Data(d) => Some(&d.group),
            GcsMessage::Null(n) => Some(&n.group),
            GcsMessage::Nack { group, .. }
            | GcsMessage::SeqOrder { group, .. }
            | GcsMessage::OrderNack { group, .. }
            | GcsMessage::Join { group, .. }
            | GcsMessage::Leave { group, .. }
            | GcsMessage::Suspect { group, .. }
            | GcsMessage::Propose { group, .. }
            | GcsMessage::StateResp { group, .. }
            | GcsMessage::Install { group, .. } => Some(group),
            GcsMessage::Batch(_) => None,
        }
    }

    /// A short tag for tracing.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            GcsMessage::Data(_) => "data",
            GcsMessage::Null(_) => "null",
            GcsMessage::Nack { .. } => "nack",
            GcsMessage::SeqOrder { .. } => "seq-order",
            GcsMessage::OrderNack { .. } => "order-nack",
            GcsMessage::Join { .. } => "join",
            GcsMessage::Leave { .. } => "leave",
            GcsMessage::Suspect { .. } => "suspect",
            GcsMessage::Propose { .. } => "propose",
            GcsMessage::StateResp { .. } => "state-resp",
            GcsMessage::Install { .. } => "install",
            GcsMessage::Batch(_) => "batch",
        }
    }
}

impl fmt::Display for GcsMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.group() {
            Some(g) => write!(f, "{}[{}]", self.kind(), g),
            None => match self {
                GcsMessage::Batch(msgs) => write!(f, "batch[{}]", msgs.len()),
                _ => write!(f, "{}[]", self.kind()),
            },
        }
    }
}

// --- CDR ---------------------------------------------------------------

fn write_deps(enc: &mut CdrEncoder, deps: &DepsVector) {
    enc.write_seq_len(deps.len());
    for (n, s) in deps.iter() {
        n.encode(enc);
        enc.write_u64(s);
    }
}

fn read_deps(dec: &mut CdrDecoder<'_>) -> Result<DepsVector, CdrError> {
    let len = dec.read_seq_len()?;
    let mut v = DepsVector::new();
    for _ in 0..len {
        let n = NodeId::decode(dec)?;
        let s = dec.read_u64()?;
        v.set(n, s);
    }
    Ok(v)
}

impl CdrEncode for DataMsg {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.group.encode(enc);
        self.view.encode(enc);
        self.sender.encode(enc);
        enc.write_u64(self.seq);
        enc.write_u64(self.lamport);
        enc.write_u8(self.order.code());
        write_deps(enc, &self.deps);
        self.acks.encode(enc);
        enc.write_bytes(&self.payload);
    }
}

impl CdrDecode for DataMsg {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(DataMsg {
            group: GroupId::decode(dec)?,
            view: ViewId::decode(dec)?,
            sender: NodeId::decode(dec)?,
            seq: dec.read_u64()?,
            lamport: dec.read_u64()?,
            order: DeliveryOrder::from_code(dec.read_u8()?)?,
            deps: read_deps(dec)?,
            acks: ContigVector::decode(dec)?,
            payload: Bytes::decode(dec)?,
        })
    }
}

impl CdrEncode for NullMsg {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.group.encode(enc);
        self.view.encode(enc);
        self.sender.encode(enc);
        enc.write_u64(self.lamport);
        enc.write_u64(self.last_seq);
        self.acks.encode(enc);
    }
}

impl CdrDecode for NullMsg {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(NullMsg {
            group: GroupId::decode(dec)?,
            view: ViewId::decode(dec)?,
            sender: NodeId::decode(dec)?,
            lamport: dec.read_u64()?,
            last_seq: dec.read_u64()?,
            acks: ContigVector::decode(dec)?,
        })
    }
}

const TAG_DATA: u8 = 0;
const TAG_NULL: u8 = 1;
const TAG_NACK: u8 = 2;
const TAG_SEQ_ORDER: u8 = 3;
const TAG_ORDER_NACK: u8 = 4;
const TAG_JOIN: u8 = 5;
const TAG_LEAVE: u8 = 6;
const TAG_SUSPECT: u8 = 7;
const TAG_PROPOSE: u8 = 8;
const TAG_STATE_RESP: u8 = 9;
const TAG_INSTALL: u8 = 10;
const TAG_BATCH: u8 = 11;

/// Most constituents a decoded batch may carry: a flush only packs the
/// handful of rounds accumulated between two drive steps, so anything
/// huge is hostile input, not a real batch.
pub const MAX_BATCH_LEN: usize = 1024;

impl CdrEncode for GcsMessage {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            GcsMessage::Data(d) => {
                enc.write_u8(TAG_DATA);
                d.encode(enc);
            }
            GcsMessage::Null(n) => {
                enc.write_u8(TAG_NULL);
                n.encode(enc);
            }
            GcsMessage::Nack {
                group,
                view,
                from,
                sender,
                from_seq,
                to_seq,
            } => {
                enc.write_u8(TAG_NACK);
                group.encode(enc);
                view.encode(enc);
                from.encode(enc);
                sender.encode(enc);
                enc.write_u64(*from_seq);
                enc.write_u64(*to_seq);
            }
            GcsMessage::SeqOrder {
                group,
                view,
                sender,
                lamport,
                start,
                entries,
            } => {
                enc.write_u8(TAG_SEQ_ORDER);
                group.encode(enc);
                view.encode(enc);
                sender.encode(enc);
                enc.write_u64(*lamport);
                enc.write_u64(*start);
                entries.encode(enc);
            }
            GcsMessage::OrderNack {
                group,
                view,
                from,
                from_order_seq,
            } => {
                enc.write_u8(TAG_ORDER_NACK);
                group.encode(enc);
                view.encode(enc);
                from.encode(enc);
                enc.write_u64(*from_order_seq);
            }
            GcsMessage::Join { group, joiner } => {
                enc.write_u8(TAG_JOIN);
                group.encode(enc);
                joiner.encode(enc);
            }
            GcsMessage::Leave {
                group,
                view,
                leaver,
            } => {
                enc.write_u8(TAG_LEAVE);
                group.encode(enc);
                view.encode(enc);
                leaver.encode(enc);
            }
            GcsMessage::Suspect {
                group,
                view,
                from,
                suspects,
                joiners,
            } => {
                enc.write_u8(TAG_SUSPECT);
                group.encode(enc);
                view.encode(enc);
                from.encode(enc);
                suspects.encode(enc);
                joiners.encode(enc);
            }
            GcsMessage::Propose {
                group,
                attempt,
                coordinator,
                candidates,
                old_view,
                coord_contig,
            } => {
                enc.write_u8(TAG_PROPOSE);
                group.encode(enc);
                enc.write_u64(*attempt);
                coordinator.encode(enc);
                candidates.encode(enc);
                old_view.encode(enc);
                coord_contig.encode(enc);
            }
            GcsMessage::StateResp {
                group,
                attempt,
                from,
                contig,
                msgs,
            } => {
                enc.write_u8(TAG_STATE_RESP);
                group.encode(enc);
                enc.write_u64(*attempt);
                from.encode(enc);
                contig.encode(enc);
                msgs.encode(enc);
            }
            GcsMessage::Install {
                group,
                attempt,
                view,
                msgs,
            } => {
                enc.write_u8(TAG_INSTALL);
                group.encode(enc);
                enc.write_u64(*attempt);
                view.encode(enc);
                msgs.encode(enc);
            }
            GcsMessage::Batch(msgs) => {
                enc.write_u8(TAG_BATCH);
                enc.write_seq_len(msgs.len());
                for m in msgs {
                    m.encode(enc);
                }
            }
        }
    }
}

impl CdrDecode for GcsMessage {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let tag = dec.read_u8()?;
        Ok(match tag {
            TAG_DATA => GcsMessage::Data(Arc::new(DataMsg::decode(dec)?)),
            TAG_NULL => GcsMessage::Null(NullMsg::decode(dec)?),
            TAG_NACK => GcsMessage::Nack {
                group: GroupId::decode(dec)?,
                view: ViewId::decode(dec)?,
                from: NodeId::decode(dec)?,
                sender: NodeId::decode(dec)?,
                from_seq: dec.read_u64()?,
                to_seq: dec.read_u64()?,
            },
            TAG_SEQ_ORDER => GcsMessage::SeqOrder {
                group: GroupId::decode(dec)?,
                view: ViewId::decode(dec)?,
                sender: NodeId::decode(dec)?,
                lamport: dec.read_u64()?,
                start: dec.read_u64()?,
                entries: Vec::decode(dec)?,
            },
            TAG_ORDER_NACK => GcsMessage::OrderNack {
                group: GroupId::decode(dec)?,
                view: ViewId::decode(dec)?,
                from: NodeId::decode(dec)?,
                from_order_seq: dec.read_u64()?,
            },
            TAG_JOIN => GcsMessage::Join {
                group: GroupId::decode(dec)?,
                joiner: NodeId::decode(dec)?,
            },
            TAG_LEAVE => GcsMessage::Leave {
                group: GroupId::decode(dec)?,
                view: ViewId::decode(dec)?,
                leaver: NodeId::decode(dec)?,
            },
            TAG_SUSPECT => GcsMessage::Suspect {
                group: GroupId::decode(dec)?,
                view: ViewId::decode(dec)?,
                from: NodeId::decode(dec)?,
                suspects: Vec::decode(dec)?,
                joiners: Vec::decode(dec)?,
            },
            TAG_PROPOSE => GcsMessage::Propose {
                group: GroupId::decode(dec)?,
                attempt: dec.read_u64()?,
                coordinator: NodeId::decode(dec)?,
                candidates: Vec::decode(dec)?,
                old_view: ViewId::decode(dec)?,
                coord_contig: ContigVector::decode(dec)?,
            },
            TAG_STATE_RESP => GcsMessage::StateResp {
                group: GroupId::decode(dec)?,
                attempt: dec.read_u64()?,
                from: NodeId::decode(dec)?,
                contig: ContigVector::decode(dec)?,
                msgs: Vec::decode(dec)?,
            },
            TAG_INSTALL => GcsMessage::Install {
                group: GroupId::decode(dec)?,
                attempt: dec.read_u64()?,
                view: View::decode(dec)?,
                msgs: Vec::decode(dec)?,
            },
            TAG_BATCH => {
                let len = dec.read_seq_len()?;
                // An empty or oversized batch never leaves a well-behaved
                // sender; treat both as malformed frames.
                if len == 0 || len > MAX_BATCH_LEN {
                    return Err(CdrError::BadDiscriminant(u32::from(TAG_BATCH)));
                }
                let mut msgs = Vec::with_capacity(len.min(64));
                for _ in 0..len {
                    let m = GcsMessage::decode(dec)?;
                    // Nesting would allow unbounded recursion on hostile
                    // input; one level is all the send path produces.
                    if matches!(m, GcsMessage::Batch(_)) {
                        return Err(CdrError::BadDiscriminant(u32::from(TAG_BATCH)));
                    }
                    msgs.push(m);
                }
                GcsMessage::Batch(msgs)
            }
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn sample_data() -> DataMsg {
        DataMsg {
            group: GroupId::new("g"),
            view: ViewId(3),
            sender: n(2),
            seq: 17,
            lamport: 99,
            order: DeliveryOrder::Total,
            deps: DepsVector::from_pairs([(n(1), 4), (n(3), 2)]),
            acks: vec![(n(1), 4), (n(2), 17)],
            payload: Bytes::from_static(b"body"),
        }
    }

    #[test]
    fn data_msg_round_trip() {
        let d = sample_data();
        assert_eq!(DataMsg::from_cdr(&d.to_cdr()).unwrap(), d);
    }

    #[test]
    fn all_variants_round_trip() {
        let g = GroupId::new("grp");
        let v = ViewId(5);
        let msgs = vec![
            GcsMessage::Data(Arc::new(sample_data())),
            GcsMessage::Null(NullMsg {
                group: g.clone(),
                view: v,
                sender: n(1),
                lamport: 7,
                last_seq: 4,
                acks: vec![(n(2), 3)],
            }),
            GcsMessage::Nack {
                group: g.clone(),
                view: v,
                from: n(1),
                sender: n(2),
                from_seq: 3,
                to_seq: 6,
            },
            GcsMessage::SeqOrder {
                group: g.clone(),
                view: v,
                sender: n(0),
                lamport: 12,
                start: 8,
                entries: vec![(n(1), 4), (n(2), 2)],
            },
            GcsMessage::OrderNack {
                group: g.clone(),
                view: v,
                from: n(3),
                from_order_seq: 5,
            },
            GcsMessage::Join {
                group: g.clone(),
                joiner: n(9),
            },
            GcsMessage::Leave {
                group: g.clone(),
                view: v,
                leaver: n(4),
            },
            GcsMessage::Suspect {
                group: g.clone(),
                view: v,
                from: n(1),
                suspects: vec![n(2)],
                joiners: vec![n(9)],
            },
            GcsMessage::Propose {
                group: g.clone(),
                attempt: 2,
                coordinator: n(0),
                candidates: vec![n(0), n(1)],
                old_view: v,
                coord_contig: vec![(n(0), 9)],
            },
            GcsMessage::StateResp {
                group: g.clone(),
                attempt: 2,
                from: n(1),
                contig: vec![(n(0), 9), (n(1), 2)],
                msgs: vec![Arc::new(sample_data())],
            },
            GcsMessage::Install {
                group: g.clone(),
                attempt: 2,
                view: View::new(g.clone(), ViewId(6), vec![n(0), n(1)]),
                msgs: vec![Arc::new(sample_data())],
            },
        ];
        for m in msgs {
            let b = m.to_cdr();
            assert_eq!(GcsMessage::from_cdr(&b).unwrap(), m, "variant {}", m.kind());
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut enc = CdrEncoder::new();
        enc.write_u8(200);
        assert!(GcsMessage::from_cdr(&enc.finish()).is_err());
    }

    #[test]
    fn batch_round_trips_and_spans_groups() {
        let b = GcsMessage::Batch(vec![
            GcsMessage::Data(Arc::new(sample_data())),
            GcsMessage::Null(NullMsg {
                group: GroupId::new("other"),
                view: ViewId(2),
                sender: n(4),
                lamport: 8,
                last_seq: 1,
                acks: vec![],
            }),
        ]);
        assert_eq!(GcsMessage::from_cdr(&b.to_cdr()).unwrap(), b);
        assert_eq!(b.group(), None);
        assert_eq!(b.kind(), "batch");
    }

    #[test]
    fn empty_and_nested_batches_are_rejected() {
        let empty = GcsMessage::Batch(vec![]);
        assert!(GcsMessage::from_cdr(&empty.to_cdr()).is_err());
        let nested = GcsMessage::Batch(vec![GcsMessage::Batch(vec![GcsMessage::Data(Arc::new(
            sample_data(),
        ))])]);
        assert!(GcsMessage::from_cdr(&nested.to_cdr()).is_err());
    }

    #[test]
    fn oversized_batch_length_is_rejected() {
        let mut enc = CdrEncoder::new();
        enc.write_u8(11);
        enc.write_seq_len(MAX_BATCH_LEN + 1);
        assert!(GcsMessage::from_cdr(&enc.finish()).is_err());
    }

    proptest! {
        #[test]
        fn prop_data_round_trip(
            seq in 1u64..1_000_000,
            lamport in 0u64..1_000_000,
            total in any::<bool>(),
            deps in proptest::collection::vec((0u32..16, 1u64..100), 0..8),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let d = DataMsg {
                group: GroupId::new("p"),
                view: ViewId(1),
                sender: n(0),
                seq,
                lamport,
                order: if total { DeliveryOrder::Total } else { DeliveryOrder::Causal },
                deps: DepsVector::from_pairs(deps.iter().map(|&(i, s)| (n(i), s))),
                acks: vec![],
                payload: Bytes::from(payload),
            };
            prop_assert_eq!(DataMsg::from_cdr(&d.to_cdr()).unwrap(), d);
        }

        #[test]
        fn prop_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = GcsMessage::from_cdr(&bytes);
        }
    }
}
