//! Group-to-group invocation, client-group side (Fig. 6).
//!
//! Every member of a client group gx holds a [`G2gCaller`] attached to a
//! *client monitor group* gz = gx ∪ {request manager}. When the members
//! of gx decide to invoke the server group (each triggered by the same
//! totally-ordered event in gx, so their call counters agree), each
//! multicasts the request in gz; the manager filters the duplicates,
//! forwards one into the server group, and multicasts the collected
//! replies back in gz, where every gx member receives them atomically.

use std::collections::HashMap;

use bytes::Bytes;

use newtop_gcs::group::GroupId;
use newtop_net::site::NodeId;
use newtop_orb::cdr::CdrDecode;

use crate::api::{InvCommand, InvMessage, ReplyMode};

/// A completed group-to-group call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct G2gComplete {
    /// The origin (client) group.
    pub origin: GroupId,
    /// The origin group's call counter value.
    pub number: u64,
    /// `(server, result)` pairs.
    pub replies: Vec<(NodeId, Bytes)>,
}

/// The per-member client side of group-to-group invocation.
#[derive(Debug)]
pub struct G2gCaller {
    node: NodeId,
    origin: GroupId,
    monitor: GroupId,
    next_number: u64,
    pending: HashMap<u64, ()>,
    /// Replies that arrived before this member issued its own copy of the
    /// call (possible: the group reply may be totally ordered before a
    /// slow member's request copy).
    early: HashMap<u64, Vec<(NodeId, Bytes)>>,
}

impl G2gCaller {
    /// Creates the caller for a member of `origin` attached to the
    /// monitor group `monitor`.
    #[must_use]
    pub fn new(node: NodeId, origin: GroupId, monitor: GroupId) -> Self {
        G2gCaller {
            node,
            origin,
            monitor,
            next_number: 1,
            pending: HashMap::new(),
            early: HashMap::new(),
        }
    }

    /// The owning node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The origin (client) group.
    #[must_use]
    pub fn origin(&self) -> &GroupId {
        &self.origin
    }

    /// The monitor group this caller multicasts in.
    #[must_use]
    pub fn monitor(&self) -> &GroupId {
        &self.monitor
    }

    /// Call numbers awaiting replies.
    #[must_use]
    pub fn pending(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pending.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Issues the group's next call. All origin-group members must invoke
    /// in the same relative order (e.g. driven by a totally-ordered
    /// trigger in the origin group) so their counters agree.
    ///
    /// If the group's reply already arrived (another member's copy was
    /// forwarded and answered before this member invoked), the completion
    /// is returned immediately.
    pub fn invoke(
        &mut self,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
    ) -> (u64, Vec<InvCommand>, Option<G2gComplete>) {
        let number = self.next_number;
        self.next_number += 1;
        let msg = InvMessage::G2gRequest {
            origin: self.origin.clone(),
            number,
            op: op.to_owned(),
            args,
            mode,
        };
        let commands = vec![InvCommand::multicast(self.monitor.clone(), &msg)];
        if mode == ReplyMode::OneWay {
            return (number, commands, None);
        }
        if let Some(replies) = self.early.remove(&number) {
            return (
                number,
                commands,
                Some(G2gComplete {
                    origin: self.origin.clone(),
                    number,
                    replies,
                }),
            );
        }
        self.pending.insert(number, ());
        (number, commands, None)
    }

    /// Feeds a message delivered in the monitor group. Returns the
    /// completion if this was the awaited reply.
    pub fn on_delivered(&mut self, group: &GroupId, payload: &[u8]) -> Option<G2gComplete> {
        if group != &self.monitor {
            return None;
        }
        let Ok(InvMessage::G2gReply {
            origin,
            number,
            replies,
        }) = InvMessage::from_cdr(payload)
        else {
            return None;
        };
        if origin != self.origin {
            return None;
        }
        if self.pending.remove(&number).is_none() {
            // Not yet invoked here (or a duplicate): buffer fresh replies
            // for numbers we have not issued; drop true duplicates.
            if number >= self.next_number && !self.early.contains_key(&number) {
                self.early.insert(number, replies);
            }
            return None;
        }
        Some(G2gComplete {
            origin,
            number,
            replies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_orb::cdr::CdrEncode;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn caller() -> G2gCaller {
        G2gCaller::new(n(5), GroupId::new("gx"), GroupId::new("gz"))
    }

    #[test]
    fn invoke_numbers_are_sequential() {
        let mut c = caller();
        let (n1, cmds, _) = c.invoke("op", Bytes::new(), ReplyMode::All);
        let (n2, _, _) = c.invoke("op", Bytes::new(), ReplyMode::All);
        assert_eq!((n1, n2), (1, 2));
        assert_eq!(c.pending(), vec![1, 2]);
        let InvCommand::Multicast { group, .. } = &cmds[0] else {
            panic!()
        };
        assert_eq!(group, &GroupId::new("gz"));
    }

    #[test]
    fn one_way_does_not_wait() {
        let mut c = caller();
        let (_, cmds, _) = c.invoke("op", Bytes::new(), ReplyMode::OneWay);
        assert_eq!(cmds.len(), 1);
        assert!(c.pending().is_empty());
    }

    #[test]
    fn reply_completes_exactly_once() {
        let mut c = caller();
        let (number, _, _) = c.invoke("op", Bytes::new(), ReplyMode::All);
        let reply = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number,
            replies: vec![(n(1), Bytes::from_static(b"r"))],
        };
        let payload = reply.to_cdr();
        let done = c.on_delivered(&GroupId::new("gz"), &payload).unwrap();
        assert_eq!(done.number, number);
        assert_eq!(done.replies.len(), 1);
        // Duplicate is ignored.
        assert!(c.on_delivered(&GroupId::new("gz"), &payload).is_none());
    }

    #[test]
    fn foreign_replies_are_ignored() {
        let mut c = caller();
        let (number, _, _) = c.invoke("op", Bytes::new(), ReplyMode::All);
        let wrong_origin = InvMessage::G2gReply {
            origin: GroupId::new("other"),
            number,
            replies: vec![],
        };
        assert!(c
            .on_delivered(&GroupId::new("gz"), &wrong_origin.to_cdr())
            .is_none());
        let wrong_group = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number,
            replies: vec![],
        };
        assert!(c
            .on_delivered(&GroupId::new("elsewhere"), &wrong_group.to_cdr())
            .is_none());
        assert_eq!(c.pending(), vec![number]);
    }

    #[test]
    fn early_reply_completes_at_invoke_time() {
        let mut c = caller();
        // The group's reply for call 1 arrives before this member invokes.
        let reply = InvMessage::G2gReply {
            origin: GroupId::new("gx"),
            number: 1,
            replies: vec![(n(9), Bytes::from_static(b"r"))],
        };
        assert!(c
            .on_delivered(&GroupId::new("gz"), &reply.to_cdr())
            .is_none());
        let (number, _, done) = c.invoke("op", Bytes::new(), ReplyMode::All);
        assert_eq!(number, 1);
        let done = done.expect("buffered reply surfaces at invoke");
        assert_eq!(done.replies.len(), 1);
        assert!(c.pending().is_empty());
    }

    #[test]
    fn own_request_copies_are_not_replies() {
        let mut c = caller();
        let (_number, cmds, _) = c.invoke("op", Bytes::new(), ReplyMode::All);
        let InvCommand::Multicast { payload, .. } = &cmds[0] else {
            panic!()
        };
        // Seeing another member's (or our own) request copy does nothing.
        assert!(c.on_delivered(&GroupId::new("gz"), payload).is_none());
    }
}
