//! The analyzer must hold itself to its own rules: analyzing the
//! workspace may not produce findings inside `crates/analyze`, and the
//! committed allowlist must account for everything else so the tree
//! stays clean (the baseline in `analyze.baseline.json` is empty).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn the_analyzer_passes_the_analyzer() {
    let root = workspace_root();
    let findings = newtop_analyze::analyze_workspace(&root).expect("analysis runs");
    let own: Vec<String> = findings
        .iter()
        .filter(|f| f.file.starts_with("crates/analyze/"))
        .map(|f| format!("[{}] {}:{} in {}", f.rule, f.file, f.line, f.func))
        .collect();
    assert!(
        own.is_empty(),
        "the analyzer's own crate violates its rules:\n{}",
        own.join("\n")
    );
}

#[test]
fn every_workspace_finding_is_allowlisted() {
    let root = workspace_root();
    let findings = newtop_analyze::analyze_workspace(&root).expect("analysis runs");
    let text = std::fs::read_to_string(root.join("analyze.allow")).expect("analyze.allow");
    let entries = newtop_analyze::allow::parse(&text).expect("allowlist parses");
    let (_, surviving) =
        newtop_analyze::allow::apply(findings, &entries).expect("no stale entries");
    let left: Vec<String> = surviving
        .iter()
        .map(|f| {
            format!(
                "[{}] {}:{} in {}: {}",
                f.rule, f.file, f.line, f.func, f.message
            )
        })
        .collect();
    assert!(
        left.is_empty(),
        "unallowlisted findings in the tree (fix them or regenerate the baseline):\n{}",
        left.join("\n")
    );
}
