/root/repo/target/debug/deps/interactions-b8b82b3237d69b30.d: tests/tests/interactions.rs Cargo.toml

/root/repo/target/debug/deps/libinteractions-b8b82b3237d69b30.rmeta: tests/tests/interactions.rs Cargo.toml

tests/tests/interactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
