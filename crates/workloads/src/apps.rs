//! NSO applications driving the paper's workloads.
//!
//! * [`ServerApp`] — one replica of the random-number service.
//! * [`ClientApp`] — a closed-loop request-reply client (open or closed
//!   binding), with §4.1 rebind-and-retry on a broken binding.
//! * [`PeerApp`] — a peer-participation member multicasting 100-character
//!   strings as fast as its own deliveries come back.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;

use newtop::directory::GroupRecord;
use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput, ResolveStyle};
use newtop::simnode::NsoApp;
use newtop::tags;
use newtop_dir::app::register_service;
use newtop_gcs::group::{DeliveryOrder, FanoutMode, GroupConfig, GroupId, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::Outbox;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecoder, CdrEncoder};

use crate::plain::RandomServant;

/// One replica of the replicated random-number service.
pub struct ServerApp {
    /// The server group's id.
    pub group: GroupId,
    /// Full membership (every replica runs this app with the same list).
    pub members: Vec<NodeId>,
    /// Replication discipline.
    pub replication: Replication,
    /// Open-group optimisation policy.
    pub optimisation: OpenOptimisation,
    /// Group configuration (ordering protocol, liveness, time-silence).
    pub config: GroupConfig,
    /// Servant seed.
    pub seed: u64,
    /// Directory members to register the service with (empty = the
    /// service is not published; clients bind with explicit targets).
    /// Every replica re-registers on every view change — registration is
    /// idempotent and stale views lose on apply, so redundancy is free.
    pub directory: Vec<NodeId>,
}

impl NsoApp for ServerApp {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            self.group.clone(),
            self.members.clone(),
            self.replication,
            self.optimisation,
            self.config.clone(),
            now,
            out,
        )
        .expect("server group creation");
        let mut servant = RandomServant::new(self.seed ^ u64::from(nso.node().index()));
        nso.register_group_servant(
            self.group.clone(),
            Box::new(move |op: &str, _args: &[u8]| servant.run(op).unwrap_or_default()),
        );
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, _now: SimTime, out: &mut Outbox) {
        if self.directory.is_empty() {
            return;
        }
        if let NsoOutput::ViewChanged { group, view } = output {
            if group != self.group {
                return;
            }
            let record = GroupRecord::from_view(self.group.as_str(), self.config.clone(), &view);
            for &contact in &self.directory {
                let _ = register_service(nso, contact, record.clone(), out);
            }
        }
    }
}

/// How a [`ClientApp`] binds to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientStyle {
    /// Closed client/server group containing every server.
    Closed,
    /// Open binding to the given server (an index into the server list).
    Open {
        /// Which server acts as this client's request manager.
        manager_index: usize,
    },
    /// Name-based binding through the replicated directory: the server
    /// group id doubles as the service name, resolved against the listed
    /// directory members and shaped per `style`.
    Directory {
        /// The directory members to consult.
        directory: Vec<NodeId>,
        /// The binding shape built from the resolved record.
        style: ResolveStyle,
    },
}

/// A closed-loop request-reply client: issues the next request the moment
/// the previous reply completes (the paper's measurement client).
pub struct ClientApp {
    /// The server group to bind to.
    pub server_group: GroupId,
    /// The service's replicas (for binding and rebinding).
    pub servers: Vec<NodeId>,
    /// Binding style.
    pub style: ClientStyle,
    /// Reply-collection primitive.
    pub mode: ReplyMode,
    /// Ordering protocol for the client/server group.
    pub ordering: OrderProtocol,
    /// Stagger before binding.
    pub start_delay: Duration,
    /// `(completion time, response time)` per completed call.
    pub completions: Vec<(SimTime, Duration)>,
    /// Times a binding broke and the client rebound.
    pub rebinds: u32,
    /// Completions for calls that had already completed — a reply
    /// surfaced twice to the application. Exactly-once delivery requires
    /// this to stay zero even across rebind + retry.
    pub duplicate_completions: u32,
    /// How long a call may stay unanswered before it is re-issued with
    /// the same number (§4.1 retry; the server reply cache deduplicates,
    /// so a spurious retry costs bandwidth, never correctness). Chosen
    /// far above any fault-free response time so it only fires when a
    /// request or reply was actually lost.
    pub retry_after: Duration,
    /// Calls re-issued by the retry timer.
    pub retries: u32,
    binding: Option<GroupHandle>,
    issued_at: HashMap<u64, SimTime>,
    current_manager_index: usize,
}

/// Timer tag for the call-retry check ([`ClientApp::retry_after`]).
const RETRY_TAG: u64 = tags::APP_BASE + 1;

impl ClientApp {
    /// Creates a client for the standard sweep.
    #[must_use]
    pub fn new(
        server_group: GroupId,
        servers: Vec<NodeId>,
        style: ClientStyle,
        mode: ReplyMode,
        ordering: OrderProtocol,
        start_delay: Duration,
    ) -> Self {
        let current_manager_index = match &style {
            ClientStyle::Open { manager_index } => *manager_index,
            ClientStyle::Closed | ClientStyle::Directory { .. } => 0,
        };
        ClientApp {
            server_group,
            servers,
            style,
            mode,
            ordering,
            start_delay,
            completions: Vec::new(),
            rebinds: 0,
            duplicate_completions: 0,
            retry_after: Duration::from_millis(100),
            retries: 0,
            binding: None,
            issued_at: HashMap::new(),
            current_manager_index,
        }
    }

    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let opts = match &self.style {
            ClientStyle::Closed => BindOptions::closed(self.servers.clone()),
            ClientStyle::Open { .. } => {
                let manager = self.servers[self.current_manager_index % self.servers.len()];
                BindOptions::open(manager)
            }
            ClientStyle::Directory { directory, style } => {
                // A rebind rotates the open rank, mirroring the
                // explicit styles' next-server behaviour; the fresh
                // resolution also drops any member the directory has
                // already learned is gone.
                let style = match *style {
                    ResolveStyle::Open { rank } => ResolveStyle::Open {
                        rank: rank + self.current_manager_index,
                    },
                    other => other,
                };
                BindOptions::resolve(self.server_group.as_str(), directory.clone())
                    .with_resolve_style(style)
            }
        }
        .with_ordering(self.ordering);
        nso.bind(self.server_group.clone(), opts, now, out)
            .expect("bind");
    }

    fn issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let Some(binding) = self.binding.clone() else {
            return;
        };
        match binding.invoke(nso, "rand", Bytes::new(), self.mode, now, out) {
            Ok(call) => {
                self.issued_at.insert(call.number, now);
                out.set_timer(self.retry_after, RETRY_TAG);
            }
            Err(_) => {
                // Binding raced away; a rebind is in flight.
            }
        }
    }

    /// Re-issues calls that have been pending longer than `retry_after`.
    /// This is what recovers a lost request *or* reply: the group may
    /// look quiet to everyone else, so no other layer will.
    fn check_retries(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let Some(binding) = self.binding.clone() else {
            // A rebind is in flight; `BindingReady` re-issues pending
            // calls itself.
            return;
        };
        let mut stale: Vec<u64> = self
            .issued_at
            .iter()
            .filter(|&(_, &at)| now - at >= self.retry_after)
            .map(|(&n, _)| n)
            .collect();
        stale.sort_unstable();
        for number in stale {
            if binding.retry(nso, number, now, out).is_ok() {
                self.retries += 1;
            }
        }
        if !self.issued_at.is_empty() {
            out.set_timer(self.retry_after, RETRY_TAG);
        }
    }
}

impl NsoApp for ClientApp {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(self.start_delay, tags::APP_BASE);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag == RETRY_TAG {
            self.check_retries(nso, now, out);
        } else {
            self.bind(nso, now, out);
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                // Rebind-and-retry (§4.1): re-issue whatever is still
                // pending with the original call numbers; only start fresh
                // traffic when nothing is outstanding.
                let pending: Vec<u64> = self.issued_at.keys().copied().collect();
                if pending.is_empty() {
                    self.issue(nso, now, out);
                }
                for number in pending {
                    let _ = binding.retry(nso, number, now, out);
                }
            }
            NsoOutput::BindFailed { .. } => {
                // Try the next server.
                self.current_manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::BindingBroken { .. } => {
                self.rebinds += 1;
                self.binding = None;
                self.current_manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { call, .. } => {
                if let Some(at) = self.issued_at.remove(&call.number) {
                    self.completions.push((now, now - at));
                } else {
                    self.duplicate_completions += 1;
                }
                self.issue(nso, now, out);
            }
            _ => {}
        }
    }
}

/// A peer-participation member: multicasts fixed-size payloads "as
/// frequently as possible" (§5.2) — open-loop sends paced by the ORB's
/// per-invocation cost, with a small outstanding cap so an overloaded
/// group applies backpressure instead of flooding unboundedly.
pub struct PeerApp {
    /// The peer group.
    pub group: GroupId,
    /// Full membership.
    pub members: Vec<NodeId>,
    /// Group configuration (the peer experiments sweep the ordering
    /// protocol; liveness is lively).
    pub config: GroupConfig,
    /// Payload size in bytes (the paper used 100-character strings).
    pub payload_len: usize,
    /// Interval between send attempts (models the ORB's asynchronous
    /// invocation issue rate).
    pub pace: Duration,
    /// Maximum own multicasts in flight (sent but not yet self-delivered)
    /// before the sender holds off.
    pub max_outstanding: u64,
    /// Stagger before the first send.
    pub start_delay: Duration,
    /// When each of this member's multicasts was issued, by index.
    pub sent_at: HashMap<u64, SimTime>,
    /// Every delivery observed here: `(sender, index, delivery time)`.
    pub deliveries: Vec<(NodeId, u64, SimTime)>,
    next_index: u64,
    own_delivered: u64,
    peer: Option<GroupHandle>,
}

impl PeerApp {
    /// Creates a peer member.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        group: GroupId,
        members: Vec<NodeId>,
        config: GroupConfig,
        payload_len: usize,
        pace: Duration,
        max_outstanding: u64,
        start_delay: Duration,
    ) -> Self {
        PeerApp {
            group,
            members,
            config,
            payload_len,
            pace,
            max_outstanding,
            start_delay,
            sent_at: HashMap::new(),
            deliveries: Vec::new(),
            next_index: 1,
            own_delivered: 0,
            peer: None,
        }
    }

    fn send_next(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let idx = self.next_index;
        self.next_index += 1;
        let mut enc = CdrEncoder::new();
        enc.write_u32(nso.node().index());
        enc.write_u64(idx);
        let body = "x".repeat(self.payload_len.saturating_sub(12));
        enc.write_string(&body);
        self.sent_at.insert(idx, now);
        if let Some(peer) = self.peer.clone() {
            let _ = peer.send(nso, enc.finish(), DeliveryOrder::Total, now, out);
        }
    }

    /// Decodes a peer payload into `(sender index, message index)`.
    fn decode(payload: &[u8]) -> Option<(u32, u64)> {
        let mut dec = CdrDecoder::new(payload);
        let sender = dec.read_u32().ok()?;
        let idx = dec.read_u64().ok()?;
        Some((sender, idx))
    }
}

impl NsoApp for PeerApp {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let peer = nso
            .create_peer_group(
                self.group.clone(),
                self.members.clone(),
                self.config.clone(),
                now,
                out,
            )
            .expect("peer group creation");
        self.peer = Some(peer);
        out.set_timer(self.start_delay, tags::APP_BASE);
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        let outstanding = (self.next_index - 1).saturating_sub(self.own_delivered);
        if outstanding < self.max_outstanding {
            self.send_next(nso, now, out);
        }
        out.set_timer(self.pace, tags::APP_BASE);
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, _out: &mut Outbox) {
        if let NsoOutput::PeerDeliver {
            group,
            sender,
            payload,
        } = output
        {
            if group != self.group {
                return;
            }
            if let Some((sender_idx, msg_idx)) = PeerApp::decode(&payload) {
                debug_assert_eq!(sender_idx, sender.index());
                self.deliveries.push((sender, msg_idx, now));
                if sender == nso.node() {
                    self.own_delivered = self.own_delivered.max(msg_idx);
                }
            }
        }
    }
}

/// One service a [`HubApp`] talks to: its group, replicas, and the
/// hub's closed-loop state for it.
struct HubSlot {
    service: GroupId,
    servers: Vec<NodeId>,
    binding: Option<GroupHandle>,
    /// The binding group id returned by `bind`, used to route
    /// `BindingReady` back to this slot before the handle is live.
    bound_as: Option<GroupId>,
    /// `(call number, issued at)` of the outstanding call, if any.
    outstanding: Option<(u64, SimTime)>,
}

/// A multi-service client hub: binds to several independent services at
/// once and runs a closed loop (one outstanding call) against each.
///
/// This is the workload the sharded engine partitions: the hub's
/// bindings share no member but the hub itself, so each client/server
/// group lands on its own shard, and the hub's protocol work for
/// independent services proceeds on independent engines.
pub struct HubApp {
    /// Reply-collection primitive for every call.
    pub mode: ReplyMode,
    /// Ordering protocol for the client/server groups.
    pub ordering: OrderProtocol,
    /// Stagger before binding.
    pub start_delay: Duration,
    /// `(completion time, response time)` per completed call, across all
    /// services.
    pub completions: Vec<(SimTime, Duration)>,
    /// Completions that surfaced twice — must stay zero.
    pub duplicate_completions: u32,
    /// How long a call may stay unanswered before it is re-issued with
    /// the same number (the server reply cache deduplicates).
    pub retry_after: Duration,
    slots: Vec<HubSlot>,
    /// Outstanding call number → slot index.
    in_flight: HashMap<u64, usize>,
}

/// Timer tag for the hub's retry check.
const HUB_RETRY_TAG: u64 = tags::APP_BASE + 2;

impl HubApp {
    /// Creates a hub bound to every listed `(service group, replicas)`.
    #[must_use]
    pub fn new(
        services: Vec<(GroupId, Vec<NodeId>)>,
        mode: ReplyMode,
        ordering: OrderProtocol,
        start_delay: Duration,
    ) -> Self {
        HubApp {
            mode,
            ordering,
            start_delay,
            completions: Vec::new(),
            duplicate_completions: 0,
            retry_after: Duration::from_millis(150),
            slots: services
                .into_iter()
                .map(|(service, servers)| HubSlot {
                    service,
                    servers,
                    binding: None,
                    bound_as: None,
                    outstanding: None,
                })
                .collect(),
            in_flight: HashMap::new(),
        }
    }

    fn bind_slot(&mut self, idx: usize, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let slot = &mut self.slots[idx];
        let opts = BindOptions::closed(slot.servers.clone())
            .with_ordering(self.ordering)
            // Asynchronous fan-outs let the data path batch: the data
            // multicast, its acks and the piggybacked order records can
            // share a frame per destination.
            .with_fanout(FanoutMode::Asynchronous);
        match nso.bind(slot.service.clone(), opts, now, out) {
            Ok(handle) => slot.bound_as = Some(handle.id().clone()),
            Err(_) => {
                // The previous binding group is still tearing down; the
                // retry timer re-attempts.
            }
        }
    }

    fn issue(&mut self, idx: usize, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let slot = &mut self.slots[idx];
        let Some(binding) = slot.binding.clone() else {
            return;
        };
        if let Ok(call) = binding.invoke(nso, "rand", Bytes::new(), self.mode, now, out) {
            slot.outstanding = Some((call.number, now));
            self.in_flight.insert(call.number, idx);
        }
    }

    fn check_retries(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        for idx in 0..self.slots.len() {
            let slot = &self.slots[idx];
            match (&slot.binding, slot.bound_as.is_some(), slot.outstanding) {
                (Some(binding), _, Some((number, at))) if now - at >= self.retry_after => {
                    let _ = binding.clone().retry(nso, number, now, out);
                }
                (None, false, _) => self.bind_slot(idx, nso, now, out),
                _ => {}
            }
        }
        out.set_timer(self.retry_after, HUB_RETRY_TAG);
    }
}

impl NsoApp for HubApp {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(self.start_delay, tags::APP_BASE);
        out.set_timer(self.start_delay + self.retry_after, HUB_RETRY_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        if tag == HUB_RETRY_TAG {
            self.check_retries(nso, now, out);
        } else {
            // Stagger the binds slightly so control traffic doesn't burst.
            for idx in 0..self.slots.len() {
                self.bind_slot(idx, nso, now, out);
            }
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(idx) = self
                    .slots
                    .iter()
                    .position(|s| s.bound_as.as_ref() == Some(&group))
                else {
                    return;
                };
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.slots[idx].binding = Some(binding.clone());
                match self.slots[idx].outstanding {
                    Some((number, _)) => {
                        let _ = binding.retry(nso, number, now, out);
                    }
                    None => self.issue(idx, nso, now, out),
                }
            }
            NsoOutput::BindFailed { group } | NsoOutput::BindingBroken { group, .. } => {
                if let Some(idx) = self
                    .slots
                    .iter()
                    .position(|s| s.bound_as.as_ref() == Some(&group))
                {
                    self.slots[idx].binding = None;
                    self.slots[idx].bound_as = None;
                    self.bind_slot(idx, nso, now, out);
                }
            }
            NsoOutput::InvocationComplete { call, .. } => {
                let Some(idx) = self.in_flight.remove(&call.number) else {
                    self.duplicate_completions += 1;
                    return;
                };
                if let Some((number, at)) = self.slots[idx].outstanding.take() {
                    debug_assert_eq!(number, call.number);
                    self.completions.push((now, now - at));
                }
                self.issue(idx, nso, now, out);
            }
            _ => {}
        }
    }
}
