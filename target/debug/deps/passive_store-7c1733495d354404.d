/root/repo/target/debug/deps/passive_store-7c1733495d354404.d: examples/src/bin/passive_store.rs

/root/repo/target/debug/deps/passive_store-7c1733495d354404: examples/src/bin/passive_store.rs

examples/src/bin/passive_store.rs:
