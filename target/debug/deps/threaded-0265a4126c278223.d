/root/repo/target/debug/deps/threaded-0265a4126c278223.d: tests/tests/threaded.rs

/root/repo/target/debug/deps/threaded-0265a4126c278223: tests/tests/threaded.rs

tests/tests/threaded.rs:
