/root/repo/target/debug/deps/newtop_gcs-f4b72963d5aa475f.d: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

/root/repo/target/debug/deps/libnewtop_gcs-f4b72963d5aa475f.rlib: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

/root/repo/target/debug/deps/libnewtop_gcs-f4b72963d5aa475f.rmeta: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

crates/gcs/src/lib.rs:
crates/gcs/src/clock.rs:
crates/gcs/src/engine.rs:
crates/gcs/src/group.rs:
crates/gcs/src/member.rs:
crates/gcs/src/messages.rs:
crates/gcs/src/testkit.rs:
crates/gcs/src/view.rs:
