/root/repo/target/debug/deps/newtop_bench-62ad6a84feca11c8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/newtop_bench-62ad6a84feca11c8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
