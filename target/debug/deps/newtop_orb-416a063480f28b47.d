/root/repo/target/debug/deps/newtop_orb-416a063480f28b47.d: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

/root/repo/target/debug/deps/newtop_orb-416a063480f28b47: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

crates/orb/src/lib.rs:
crates/orb/src/cdr.rs:
crates/orb/src/giop.rs:
crates/orb/src/ior.rs:
crates/orb/src/naming.rs:
crates/orb/src/orb.rs:
crates/orb/src/servant.rs:
