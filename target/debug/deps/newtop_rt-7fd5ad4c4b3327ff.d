/root/repo/target/debug/deps/newtop_rt-7fd5ad4c4b3327ff.d: crates/rt/src/lib.rs

/root/repo/target/debug/deps/libnewtop_rt-7fd5ad4c4b3327ff.rlib: crates/rt/src/lib.rs

/root/repo/target/debug/deps/libnewtop_rt-7fd5ad4c4b3327ff.rmeta: crates/rt/src/lib.rs

crates/rt/src/lib.rs:
