/root/repo/target/debug/deps/newtop_rt-321ba83327156abd.d: crates/rt/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_rt-321ba83327156abd.rmeta: crates/rt/src/lib.rs Cargo.toml

crates/rt/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
