//! **Graphs 11–16** — closed vs open group invocation: three active
//! replicas, wait-for-all, asymmetric ordering, at the three placements
//! of §5.1.3.

use newtop_bench::{bench_seed, CLIENT_SWEEP};
use newtop_net::stats::TextTable;
use newtop_workloads::figures::{graphs_11_16_closed_open, metrics_closed_open};
use newtop_workloads::scenario::Placement;

fn main() {
    let seed = bench_seed();
    let cases = [
        (
            Placement::AllLan,
            "Graphs 11-12: clients & servers on the LAN",
        ),
        (
            Placement::ServersLanClientsWan,
            "Graphs 13-14: servers on the LAN, clients distant",
        ),
        (Placement::AllWan, "Graphs 15-16: geographically separated"),
    ];
    for (placement, label) in cases {
        let (closed_ms, closed_rps, open_ms, open_rps) =
            graphs_11_16_closed_open(placement, CLIENT_SWEEP, seed);
        let table = TextTable::from_series(
            label.to_string(),
            "clients",
            &[closed_ms, open_ms, closed_rps, open_rps],
        );
        println!("{table}");
    }
    // What the styles cost on the wire: GCS messages per completed
    // request and the sequencer's ordering-record traffic.
    println!("{}", metrics_closed_open(Placement::AllLan, 4, seed));
    println!(
        "paper shape: with clients across high-latency paths the open group \
         approach is most attractive (the closed client's request fan-out is a \
         chain of synchronous WAN invocations); on the LAN the difference is \
         not significant."
    );
}
