//! Quickstart: a replicated echo service on the threaded runtime.
//!
//! Three real threads host the replicas, a fourth hosts the client; they
//! talk over the in-process channel transport. The client binds openly
//! (one server acts as its request manager), invokes with wait-for-all,
//! and prints every replica's answer.
//!
//! ```text
//! cargo run -p newtop-examples --bin quickstart
//! ```

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, NsoOutput};
use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::channel::ChannelNetwork;
use newtop_net::site::NodeId;
use newtop_rt::{NodeRuntime, RuntimeOptions};

fn main() {
    let service = GroupId::new("echo");
    let net = ChannelNetwork::new();

    // Three replicas.
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let mut handles = Vec::new();
    for &id in &servers {
        let (transport, rx) = net.endpoint(id);
        let handle = NodeRuntime::spawn(transport, rx, RuntimeOptions::new());
        let group = service.clone();
        let members = servers.clone();
        handle.with_nso(move |nso, now, out| {
            nso.create_server_group(
                group.clone(),
                members,
                Replication::Active,
                OpenOptimisation::None,
                GroupConfig::request_reply(),
                now,
                out,
            )
            .expect("create server group");
            let me = nso.node();
            nso.register_group_servant(
                group,
                Box::new(move |op: &str, args: &[u8]| {
                    Bytes::from(format!("[{me}] {op}({})", String::from_utf8_lossy(args)))
                }),
            );
        });
        handles.push(handle);
    }
    println!("started {} replicas of the 'echo' service", servers.len());

    // A client: bind openly to the first replica.
    let client_id = NodeId::from_index(3);
    let (transport, rx) = net.endpoint(client_id);
    let client = NodeRuntime::spawn(transport, rx, RuntimeOptions::new());
    let group = service.clone();
    let manager = servers[0];
    client.with_nso(move |nso, now, out| {
        nso.bind(group, BindOptions::open(manager), now, out)
            .expect("bind");
    });
    let ready = client
        .wait_for_output(Duration::from_secs(10), |o| {
            matches!(o, NsoOutput::BindingReady { .. })
        })
        .expect("binding established");
    let NsoOutput::BindingReady { group: binding } = ready else {
        unreachable!()
    };
    println!("client bound openly via request manager {manager}");

    for (i, text) in ["hello", "group", "invocation"].iter().enumerate() {
        let b = binding.clone();
        let args = Bytes::from(text.as_bytes().to_vec());
        client.with_nso(move |nso, now, out| {
            let b = nso.handle_for(&b).expect("binding handle");
            b.invoke(nso, "echo", args, ReplyMode::All, now, out)
                .expect("invoke");
        });
        let done = client
            .wait_for_output(Duration::from_secs(10), |o| {
                matches!(o, NsoOutput::InvocationComplete { .. })
            })
            .expect("invocation completed");
        let NsoOutput::InvocationComplete { replies, .. } = done else {
            unreachable!()
        };
        println!("call {}:", i + 1);
        for (server, body) in replies {
            println!("  {server} -> {}", String::from_utf8_lossy(&body));
        }
    }

    client.shutdown();
    for h in handles {
        h.shutdown();
    }
    println!("done");
}
