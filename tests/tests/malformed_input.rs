//! Malformed-input corpus: every wire decode boundary must return a
//! typed error, never panic.
//!
//! The NewTop stack has four unmarshalling surfaces fed directly by
//! network input: GIOP frames ([`GiopMessage::from_frame`]), the raw CDR
//! primitive reads ([`CdrDecoder`]), and the `CdrDecode` message roots —
//! [`GcsMessage`] (plus its component types), [`InvMessage`],
//! [`CtrlMessage`], and the IOR types. The durability subsystem adds
//! three more fed by disk or recovery traffic: CRC-framed [`LogRecord`]s
//! ([`read_frame`]), [`NodeSnapshot`]s, and the [`RecoveryMsg`] transfer
//! frames — plus the directory's [`DirRequest`]/[`DirReply`] bodies,
//! which arrive as plain ORB arguments from arbitrary clients. A peer
//! (or a corrupted link, or a half-written log file) can hand any byte
//! string to any of them, so the contract checked here is:
//!
//! * **truncation** — every strict prefix of a valid encoding decodes to
//!   `Err`, not a panic and not a bogus `Ok`;
//! * **corruption** — flipping any single byte of a valid encoding never
//!   panics (it may still decode: payload bytes are opaque);
//! * **garbage** — a fixed adversarial corpus (bad tags, oversized
//!   length prefixes, misleading headers) plus proptest byte soup never
//!   panics, and the targeted entries fail with the expected error;
//! * **resource safety** — a length prefix of `u32::MAX` is rejected by
//!   bound checks before any allocation is sized from it.
//!
//! This is the dynamic counterpart of `newtop-analyze`'s static
//! panic-freedom rule: the analyzer proves the decode call graph uses no
//! unwrap/expect/indexing, this test proves the error paths those sites
//! were rewritten into actually fire.

use std::sync::Arc;

use bytes::Bytes;
use newtop::control::CtrlMessage;
use newtop::directory::{DirReply, DirRequest, GroupRecord};
use newtop_dir::harness::{decode_recovery, encode_recovery, RecoveryMsg};
use newtop_dir::log::{append_frame, read_frame, DeliveredRec, LogRecord};
use newtop_dir::snapshot::{GroupSnapshot, NodeSnapshot};
use newtop_gcs::clock::DepsVector;
use newtop_gcs::group::{DeliveryOrder, FanoutMode, GroupConfig, GroupId, OrderProtocol};
use newtop_gcs::messages::{DataMsg, GcsMessage, NullMsg};
use newtop_gcs::view::{View, ViewId};
use newtop_invocation::api::{CallId, InvMessage, ReplyMode};
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder};
use newtop_orb::giop::{GiopMessage, ReplyStatus, SystemException};
use newtop_orb::ior::{GroupObjectRef, ObjectKey, ObjectRef};
use proptest::prelude::*;

/// One decode boundary: feed it bytes, get `Ok(debug-repr)` or
/// `Err(error-string)` — anything but a panic.
type DecodeFn = fn(&[u8]) -> Result<String, String>;

fn via_cdr<T: CdrDecode + std::fmt::Debug>(data: &[u8]) -> Result<String, String> {
    T::from_cdr(data)
        .map(|v| format!("{v:?}"))
        .map_err(|e| e.to_string())
}

fn via_giop(data: &[u8]) -> Result<String, String> {
    GiopMessage::from_frame(data)
        .map(|v| format!("{v:?}"))
        .map_err(|e| e.to_string())
}

/// Drives every primitive read the stack's decoders are built from;
/// errors are the expected outcome on most inputs.
fn via_primitives(data: &[u8]) -> Result<String, String> {
    let mut dec = CdrDecoder::new(data);
    let _ = dec.read_u8();
    let _ = dec.read_bool();
    let _ = dec.read_u16();
    let _ = dec.read_u32();
    let _ = dec.read_u64();
    let _ = dec.read_i32();
    let _ = dec.read_i64();
    let _ = dec.read_f64();
    let _ = dec.read_string();
    let _ = dec.read_bytes();
    let _ = dec.read_seq_len();
    Ok(format!("remaining={}", dec.remaining()))
}

/// The CRC-framed durable-log read boundary: frame header + checksum +
/// CDR payload, all attacker- (or torn-write-) controlled.
fn via_log_frame(data: &[u8]) -> Result<String, String> {
    read_frame::<LogRecord>(data)
        .map(|(v, used)| format!("{v:?}@{used}"))
        .map_err(|e| e.to_string())
}

/// The recovery-transfer frame boundary: a wrong magic is `None` (not
/// recovery traffic), a right magic with a bad body must be `Err`.
fn via_recovery(data: &[u8]) -> Result<String, String> {
    match decode_recovery(data) {
        None => Err("not a recovery frame".to_string()),
        Some(r) => r.map(|v| format!("{v:?}")).map_err(|e| e.to_string()),
    }
}

/// Every network-facing decoder, by name.
fn decoders() -> Vec<(&'static str, DecodeFn)> {
    vec![
        ("GiopMessage::from_frame", via_giop),
        ("CdrDecoder primitives", via_primitives),
        ("GcsMessage", via_cdr::<GcsMessage>),
        ("DataMsg", via_cdr::<DataMsg>),
        ("NullMsg", via_cdr::<NullMsg>),
        ("View", via_cdr::<View>),
        ("ViewId", via_cdr::<ViewId>),
        ("GroupId", via_cdr::<GroupId>),
        ("InvMessage", via_cdr::<InvMessage>),
        ("CtrlMessage", via_cdr::<CtrlMessage>),
        ("CallId", via_cdr::<CallId>),
        ("ObjectKey", via_cdr::<ObjectKey>),
        ("ObjectRef", via_cdr::<ObjectRef>),
        ("GroupObjectRef", via_cdr::<GroupObjectRef>),
        ("LogRecord", via_cdr::<LogRecord>),
        ("DeliveredRec", via_cdr::<DeliveredRec>),
        ("log read_frame", via_log_frame),
        ("GroupSnapshot", via_cdr::<GroupSnapshot>),
        ("NodeSnapshot", via_cdr::<NodeSnapshot>),
        ("GroupRecord", via_cdr::<GroupRecord>),
        ("DirRequest", via_cdr::<DirRequest>),
        ("DirReply", via_cdr::<DirReply>),
        ("decode_recovery", via_recovery),
    ]
}

fn node(i: u32) -> NodeId {
    NodeId::from_index(i)
}

fn sample_data_msg() -> DataMsg {
    let mut deps = DepsVector::new();
    deps.set(node(1), 3);
    deps.set(node(2), 7);
    DataMsg {
        group: GroupId::new("replicas"),
        view: ViewId(4),
        sender: node(1),
        seq: 9,
        lamport: 41,
        order: DeliveryOrder::Total,
        deps,
        acks: vec![(node(1), 8), (node(2), 9)],
        payload: Bytes::from_static(b"state delta"),
    }
}

/// A valid encoding of every message shape the stack puts on the wire,
/// paired with the decoder that must reject its mutations gracefully.
fn samples() -> Vec<(&'static str, Bytes, DecodeFn)> {
    let group = GroupId::new("replicas");
    let view = View::new(group.clone(), ViewId(4), vec![node(1), node(2), node(3)]);
    let data = Arc::new(sample_data_msg());
    let call = CallId {
        client: node(5),
        number: 11,
    };
    let mut out: Vec<(&'static str, Bytes, DecodeFn)> = vec![
        (
            "giop-request",
            GiopMessage::Request {
                request_id: 77,
                object_key: ObjectKey::new("nso"),
                operation: "gcs".into(),
                response_expected: false,
                body: Bytes::from_static(b"payload"),
            }
            .to_frame(),
            via_giop,
        ),
        (
            "giop-reply-system-exception",
            GiopMessage::Reply {
                request_id: 78,
                status: ReplyStatus::SystemException(SystemException::ObjectNotExist),
                body: Bytes::new(),
            }
            .to_frame(),
            via_giop,
        ),
        ("view", view.to_cdr(), via_cdr::<View>),
        ("group-id", group.to_cdr(), via_cdr::<GroupId>),
        (
            "object-ref",
            ObjectRef::new(node(2), ObjectKey::new("servant")).to_cdr(),
            via_cdr::<ObjectRef>,
        ),
        (
            "group-object-ref",
            GroupObjectRef::new(vec![
                ObjectRef::new(node(1), ObjectKey::new("a")),
                ObjectRef::new(node(2), ObjectKey::new("b")),
            ])
            .expect("non-empty member list")
            .to_cdr(),
            via_cdr::<GroupObjectRef>,
        ),
        (
            "ctrl-bind-request",
            CtrlMessage::BindRequest {
                group: GroupId::new("cs:alice:replicas"),
                client: node(5),
                server_group: group.clone(),
                members: vec![node(5), node(1), node(2)],
                closed: true,
                ordering: OrderProtocol::Asymmetric,
                time_silence_micros: 50_000,
                fanout: FanoutMode::Synchronous,
            }
            .to_cdr(),
            via_cdr::<CtrlMessage>,
        ),
    ];

    let gcs_msgs: Vec<(&'static str, GcsMessage)> = vec![
        ("gcs-data", GcsMessage::Data(Arc::clone(&data))),
        (
            "gcs-null",
            GcsMessage::Null(NullMsg {
                group: group.clone(),
                view: ViewId(4),
                sender: node(2),
                lamport: 40,
                last_seq: 6,
                acks: vec![(node(1), 8)],
            }),
        ),
        (
            "gcs-nack",
            GcsMessage::Nack {
                group: group.clone(),
                view: ViewId(4),
                from: node(2),
                sender: node(1),
                from_seq: 3,
                to_seq: 5,
            },
        ),
        (
            "gcs-seq-order",
            GcsMessage::SeqOrder {
                group: group.clone(),
                view: ViewId(4),
                sender: node(1),
                lamport: 44,
                start: 17,
                entries: vec![(node(1), 9), (node(2), 4)],
            },
        ),
        (
            "gcs-order-nack",
            GcsMessage::OrderNack {
                group: group.clone(),
                view: ViewId(4),
                from: node(3),
                from_order_seq: 12,
            },
        ),
        (
            "gcs-join",
            GcsMessage::Join {
                group: group.clone(),
                joiner: node(9),
            },
        ),
        (
            "gcs-leave",
            GcsMessage::Leave {
                group: group.clone(),
                view: ViewId(4),
                leaver: node(3),
            },
        ),
        (
            "gcs-suspect",
            GcsMessage::Suspect {
                group: group.clone(),
                view: ViewId(4),
                from: node(1),
                suspects: vec![node(3)],
                joiners: vec![node(9)],
            },
        ),
        (
            "gcs-propose",
            GcsMessage::Propose {
                group: group.clone(),
                attempt: 2,
                coordinator: node(1),
                candidates: vec![node(1), node(2), node(9)],
                old_view: ViewId(4),
                coord_contig: vec![(node(1), 9), (node(2), 6)],
            },
        ),
        (
            "gcs-state-resp",
            GcsMessage::StateResp {
                group: group.clone(),
                attempt: 2,
                from: node(2),
                contig: vec![(node(1), 9)],
                msgs: vec![Arc::clone(&data)],
            },
        ),
        (
            "gcs-install",
            GcsMessage::Install {
                group: group.clone(),
                attempt: 2,
                view: view.clone(),
                msgs: vec![data],
            },
        ),
    ];
    for (name, msg) in gcs_msgs {
        out.push((name, msg.to_cdr(), via_cdr::<GcsMessage>));
    }

    let inv_msgs: Vec<(&'static str, InvMessage)> = vec![
        (
            "inv-request",
            InvMessage::Request {
                call,
                op: "put".into(),
                args: Bytes::from_static(b"k=v"),
                mode: ReplyMode::Majority,
            },
        ),
        (
            "inv-forwarded",
            InvMessage::Forwarded {
                call,
                op: "put".into(),
                args: Bytes::from_static(b"k=v"),
                mode: ReplyMode::All,
                manager: node(1),
                no_reply: false,
            },
        ),
        (
            "inv-server-reply",
            InvMessage::ServerReply {
                call,
                replier: node(2),
                result: Bytes::from_static(b"ok"),
            },
        ),
        (
            "inv-relayed-reply",
            InvMessage::RelayedReply {
                call,
                replies: vec![
                    (node(1), Bytes::from_static(b"ok")),
                    (node(2), Bytes::new()),
                ],
            },
        ),
        (
            "inv-direct-reply",
            InvMessage::DirectReply {
                call,
                replier: node(1),
                result: Bytes::from_static(b"ok"),
            },
        ),
        (
            "inv-g2g-request",
            InvMessage::G2gRequest {
                origin: GroupId::new("clients"),
                number: 3,
                op: "sum".into(),
                args: Bytes::from_static(b"1,2"),
                mode: ReplyMode::First,
            },
        ),
        (
            "inv-g2g-reply",
            InvMessage::G2gReply {
                origin: GroupId::new("clients"),
                number: 3,
                replies: vec![(node(1), Bytes::from_static(b"3"))],
            },
        ),
    ];
    for (name, msg) in inv_msgs {
        out.push((name, msg.to_cdr(), via_cdr::<InvMessage>));
    }

    // Durability + directory surfaces (PR 9): log records as raw CDR and
    // as CRC-framed log entries, snapshots, directory bodies, and the
    // recovery-transfer frames.
    let record = GroupRecord::from_view("svc", GroupConfig::request_reply(), &view);
    let delivered = DeliveredRec {
        sender: node(1),
        order: DeliveryOrder::Total,
        lamport: 42,
        payload: Bytes::from_static(b"state delta"),
    };
    let log_records: Vec<(&'static str, LogRecord)> = vec![
        (
            "log-created",
            LogRecord::Created {
                group: group.clone(),
                config: GroupConfig::peer(),
                members: vec![node(1), node(2)],
            },
        ),
        (
            "log-delivered",
            LogRecord::Delivered {
                group: group.clone(),
                rec: delivered.clone(),
            },
        ),
        (
            "log-view-installed",
            LogRecord::ViewInstalled {
                group: group.clone(),
                view: view.clone(),
            },
        ),
        (
            "log-dir-record",
            LogRecord::DirRecord {
                record: record.clone(),
            },
        ),
    ];
    for (name, rec) in &log_records {
        out.push((name, rec.to_cdr(), via_cdr::<LogRecord>));
    }
    let mut framed = Vec::new();
    append_frame(&mut framed, &log_records[1].1);
    out.push(("log-frame-delivered", Bytes::from(framed), via_log_frame));
    out.push((
        "node-snapshot",
        NodeSnapshot {
            groups: vec![GroupSnapshot {
                group: group.clone(),
                config: GroupConfig::peer(),
                members_at_create: vec![node(1), node(2), node(3)],
                last_view: Some(view.clone()),
                history: vec![delivered.clone()],
            }],
            dir: vec![record.clone()],
        }
        .to_cdr(),
        via_cdr::<NodeSnapshot>,
    ));
    out.push((
        "dir-request-register",
        DirRequest::Register {
            record: record.clone(),
        }
        .to_cdr(),
        via_cdr::<DirRequest>,
    ));
    out.push((
        "dir-request-resolve",
        DirRequest::Resolve { name: "svc".into() }.to_cdr(),
        via_cdr::<DirRequest>,
    ));
    out.push((
        "dir-reply-found",
        DirReply::Found {
            record: record.clone(),
        }
        .to_cdr(),
        via_cdr::<DirReply>,
    ));
    out.push((
        "dir-reply-notfound",
        DirReply::NotFound { name: "svc".into() }.to_cdr(),
        via_cdr::<DirReply>,
    ));
    out.push((
        "recovery-xfer-request",
        encode_recovery(&RecoveryMsg::XferRequest {
            group: group.clone(),
            floor: 7,
        }),
        via_recovery,
    ));
    out.push((
        "recovery-xfer-chunk",
        encode_recovery(&RecoveryMsg::XferChunk {
            group,
            start: 8,
            records: vec![delivered.clone(), delivered],
            done: true,
        }),
        via_recovery,
    ));
    out
}

#[test]
fn every_strict_prefix_of_a_valid_encoding_errors() {
    for (name, bytes, decode) in samples() {
        // Sanity: the untruncated encoding round-trips.
        assert!(decode(&bytes).is_ok(), "{name}: full encoding must decode");
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_err(),
                "{name}: truncation to {len}/{} bytes decoded Ok",
                bytes.len()
            );
        }
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    for (name, bytes, decode) in samples() {
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= 0xFF;
            // Ok is acceptable (payload bytes are opaque); the harness
            // turns any panic into a failure of this test.
            let _ = decode(&corrupt);
        }
        let _ = name;
    }
}

#[test]
fn fixed_garbage_corpus_never_panics() {
    let corpus: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![0xFF],
        vec![0; 64],
        vec![0xFF; 64],
        vec![0xAA; 7],
        // Maximal length prefixes wherever a count is read first.
        vec![0xFF, 0xFF, 0xFF, 0xFF],
        vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0],
        // Plausible tag followed by nothing.
        vec![3],
        vec![10],
        // GIOP-shaped prefixes with wrong continuations.
        b"GIOP".to_vec(),
        b"GIOPxxxx".to_vec(),
        b"OOPS\x01\x00".to_vec(),
    ];
    for buf in &corpus {
        for (name, decode) in decoders() {
            // Must return, not panic; most entries error but e.g. eight
            // zero bytes are a perfectly valid ViewId.
            let _ = (name, decode(buf));
        }
    }
}

#[test]
fn bad_discriminants_are_typed_errors() {
    // Unknown top-level tags.
    assert!(GcsMessage::from_cdr(&[200]).is_err());
    assert!(InvMessage::from_cdr(&[9]).is_err());
    assert!(CtrlMessage::from_cdr(&[7]).is_err());

    // A DataMsg whose delivery-order code is out of range: valid fields
    // up to the order byte, then 9.
    let mut enc = CdrEncoder::new();
    GroupId::new("g").encode(&mut enc);
    ViewId(1).encode(&mut enc);
    node(1).encode(&mut enc);
    enc.write_u64(1);
    enc.write_u64(1);
    enc.write_u8(9);
    assert!(DataMsg::from_cdr(&enc.finish()).is_err());

    // A Reply frame whose status discriminant is 3: corrupt a valid
    // frame in place. Offset = 4 (magic) + 1 (version) + 1 (type) +
    // 8 (request id) = 14, a big-endian u32.
    let frame = GiopMessage::Reply {
        request_id: 1,
        status: ReplyStatus::NoException,
        body: Bytes::new(),
    }
    .to_frame();
    let mut bad = frame.to_vec();
    bad[14..18].copy_from_slice(&3u32.to_be_bytes());
    assert!(GiopMessage::from_frame(&bad).is_err());

    // An oversized counted length must be rejected by the bound check
    // (LengthOverflow), not fed to an allocator.
    assert!(GroupId::from_cdr(&[0xFF, 0xFF, 0xFF, 0xFF]).is_err());

    // Durability + directory discriminants.
    assert!(LogRecord::from_cdr(&[4]).is_err());
    assert!(DirRequest::from_cdr(&[5]).is_err());
    assert!(DirReply::from_cdr(&[3]).is_err());
    // A DeliveredRec whose delivery-order code is out of range.
    let mut enc = CdrEncoder::new();
    node(1).encode(&mut enc);
    enc.write_u8(9);
    assert!(DeliveredRec::from_cdr(&enc.finish()).is_err());
    // A recovery frame with a good magic and a bad message tag: the
    // magic is 6 bytes, so the discriminant is at offset 6.
    let mut bad = encode_recovery(&RecoveryMsg::XferRequest {
        group: GroupId::new("g"),
        floor: 0,
    })
    .to_vec();
    bad[6] = 9;
    assert!(decode_recovery(&bad).unwrap().is_err());
}

#[test]
fn log_frames_enforce_checksum_and_bounds() {
    let rec = LogRecord::Delivered {
        group: GroupId::new("g"),
        rec: DeliveredRec {
            sender: node(1),
            order: DeliveryOrder::Causal,
            lamport: 3,
            payload: Bytes::from_static(b"x"),
        },
    };
    let mut buf = Vec::new();
    append_frame(&mut buf, &rec);
    let (back, used) = read_frame::<LogRecord>(&buf).expect("intact frame");
    assert_eq!(back, rec);
    assert_eq!(used, buf.len());

    // A single flipped payload bit is a checksum error, not a decode of
    // corrupted content.
    let mut corrupt = buf.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert!(matches!(
        read_frame::<LogRecord>(&corrupt),
        Err(newtop_dir::log::LogError::BadCrc { .. })
    ));

    // A truncated checksum (or any partial header) is Truncated.
    assert!(matches!(
        read_frame::<LogRecord>(&buf[..6]),
        Err(newtop_dir::log::LogError::Truncated)
    ));

    // A length prefix of u32::MAX is rejected by the frame cap before
    // any allocation is sized from it.
    let mut oversized = buf;
    oversized[..4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(
        read_frame::<LogRecord>(&oversized),
        Err(newtop_dir::log::LogError::Oversized(_))
    ));
}

#[test]
fn nso_counts_and_traces_malformed_bodies() {
    use newtop::nso::Nso;
    use newtop_gcs::{GCS_OPERATION, NSO_OBJECT_KEY};
    use newtop_net::sim::{Outbox, Packet};
    use newtop_net::time::SimTime;

    let mut nso = Nso::new(node(0));
    let mut out = Outbox::detached(0);
    // A well-formed GIOP frame whose GCS body is garbage: the decode
    // failure must surface as a counted, traced drop — never a panic.
    let frame = GiopMessage::Request {
        request_id: 1,
        object_key: ObjectKey::new(NSO_OBJECT_KEY),
        operation: GCS_OPERATION.to_string(),
        response_expected: false,
        body: Bytes::from_static(&[0xFF; 32]),
    }
    .to_frame();
    let pkt = Packet {
        src: node(1),
        dst: node(0),
        payload: frame,
    };
    nso.on_packet(&pkt, SimTime::ZERO, &mut out);
    assert_eq!(nso.metrics().counter("decode.malformed"), 1);
    assert!(nso
        .trace()
        .iter()
        .any(|r| r.event.kind() == "malformed_dropped"));
}

proptest! {
    /// Byte soup into every decoder: no panic, no runaway allocation.
    #[test]
    fn prop_random_bytes_never_panic(
        buf in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        for (_name, decode) in decoders() {
            let _ = decode(&buf);
        }
    }

    /// Random slices of a valid GcsMessage encoding with random
    /// overwrites: decoders must stay total.
    #[test]
    fn prop_mutated_valid_encodings_never_panic(
        which in 0usize..18,
        cut in any::<u16>(),
        pos in any::<u16>(),
        val in any::<u8>(),
    ) {
        let all = samples();
        let (_name, bytes, decode) = &all[which % all.len()];
        let mut buf = bytes.to_vec();
        if !buf.is_empty() {
            let p = pos as usize % buf.len();
            buf[p] = val;
            buf.truncate(1 + cut as usize % buf.len());
        }
        let _ = decode(&buf);
    }
}
