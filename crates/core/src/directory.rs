//! Wire types and the client-side cache for the replicated group
//! directory.
//!
//! The directory is the runtime home of group metadata the paper's open
//! binding story needs: a well-known bootstrap group maps service names
//! to [`GroupRecord`]s (membership, configuration, current view). The
//! *server* half — the replicated record table and its GCS-backed update
//! path — lives in the `newtop-dir` crate; this module holds only what a
//! client NSO needs: the request/reply encoding and a TTL'd
//! [`DirCache`].
//!
//! Requests travel as plain ORB invocations (operation [`DIR_OPERATION`]
//! on object key [`DIR_OBJECT_KEY`]) so a directory member can answer a
//! resolve locally without a group round; updates are replicated among
//! directory members through their own peer group.

use std::collections::BTreeMap;
use std::time::Duration;

use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_gcs::view::{View, ViewId};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

/// ORB operation name for directory requests.
pub const DIR_OPERATION: &str = "dir";
/// Object key the directory servant is activated under.
pub const DIR_OBJECT_KEY: &str = "dir";

/// One directory entry: everything a client needs to bind to the named
/// service by name alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupRecord {
    /// The service name (also the server group's id).
    pub name: String,
    /// The server group's configuration.
    pub config: GroupConfig,
    /// Current membership (the record's IOGR: who to contact).
    pub members: Vec<NodeId>,
    /// The view the membership was read at; higher wins on update.
    pub view: ViewId,
}

impl CdrEncode for GroupRecord {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_string(&self.name);
        self.config.encode(enc);
        self.members.encode(enc);
        self.view.encode(enc);
    }
}

impl CdrDecode for GroupRecord {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(GroupRecord {
            name: dec.read_string()?,
            config: GroupConfig::decode(dec)?,
            members: Vec::<NodeId>::decode(dec)?,
            view: ViewId::decode(dec)?,
        })
    }
}

impl GroupRecord {
    /// The record's group id.
    #[must_use]
    pub fn group_id(&self) -> GroupId {
        GroupId::new(self.name.clone())
    }

    /// A record snapshotting `view` of the named group.
    #[must_use]
    pub fn from_view(name: impl Into<String>, config: GroupConfig, view: &View) -> Self {
        GroupRecord {
            name: name.into(),
            config,
            members: view.members().to_vec(),
            view: view.id(),
        }
    }
}

/// A client or server request to the directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirRequest {
    /// Install (or refresh) a record. Applied in the directory group's
    /// total order; a stale registration (lower view id for a known
    /// name) is ignored.
    Register {
        /// The record to install.
        record: GroupRecord,
    },
    /// Look a name up.
    Resolve {
        /// The service name.
        name: String,
    },
}

impl CdrEncode for DirRequest {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            DirRequest::Register { record } => {
                enc.write_u8(0);
                record.encode(enc);
            }
            DirRequest::Resolve { name } => {
                enc.write_u8(1);
                enc.write_string(name);
            }
        }
    }
}

impl CdrDecode for DirRequest {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        match dec.read_u8()? {
            0 => Ok(DirRequest::Register {
                record: GroupRecord::decode(dec)?,
            }),
            1 => Ok(DirRequest::Resolve {
                name: dec.read_string()?,
            }),
            other => Err(CdrError::BadDiscriminant(u32::from(other))),
        }
    }
}

/// The directory's answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirReply {
    /// Registration accepted (it replicates asynchronously).
    Ok,
    /// Resolution succeeded.
    Found {
        /// The current record for the requested name.
        record: GroupRecord,
    },
    /// No record under that name.
    NotFound {
        /// The name that missed.
        name: String,
    },
}

impl CdrEncode for DirReply {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            DirReply::Ok => enc.write_u8(0),
            DirReply::Found { record } => {
                enc.write_u8(1);
                record.encode(enc);
            }
            DirReply::NotFound { name } => {
                enc.write_u8(2);
                enc.write_string(name);
            }
        }
    }
}

impl CdrDecode for DirReply {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        match dec.read_u8()? {
            0 => Ok(DirReply::Ok),
            1 => Ok(DirReply::Found {
                record: GroupRecord::decode(dec)?,
            }),
            2 => Ok(DirReply::NotFound {
                name: dec.read_string()?,
            }),
            other => Err(CdrError::BadDiscriminant(u32::from(other))),
        }
    }
}

/// TTL'd client-side record cache.
///
/// Entries expire `ttl` after insertion; they are also invalidated
/// eagerly when the NSO observes evidence of staleness — a broken
/// binding through a listed member, or a view change that removed one —
/// so a client re-resolves instead of rebinding into a membership that
/// no longer exists.
#[derive(Debug)]
pub struct DirCache {
    ttl: Duration,
    entries: BTreeMap<String, (GroupRecord, SimTime)>,
}

impl Default for DirCache {
    fn default() -> Self {
        DirCache::new(Duration::from_millis(500))
    }
}

impl DirCache {
    /// A cache whose entries live for `ttl`.
    #[must_use]
    pub fn new(ttl: Duration) -> Self {
        DirCache {
            ttl,
            entries: BTreeMap::new(),
        }
    }

    /// Caches a record, stamping its expiry.
    pub fn insert(&mut self, record: GroupRecord, now: SimTime) {
        let expiry = now + self.ttl;
        self.entries.insert(record.name.clone(), (record, expiry));
    }

    /// The cached record for `name` if it has not expired.
    #[must_use]
    pub fn lookup(&self, name: &str, now: SimTime) -> Option<&GroupRecord> {
        self.entries
            .get(name)
            .filter(|&&(_, expiry)| now < expiry)
            .map(|(r, _)| r)
    }

    /// Drops the entry for `name`.
    pub fn invalidate(&mut self, name: &str) {
        self.entries.remove(name);
    }

    /// Drops every entry listing `member` — called when a binding
    /// through that member broke or a view change removed it.
    pub fn invalidate_member(&mut self, member: NodeId) {
        self.entries
            .retain(|_, (r, _)| !r.members.contains(&member));
    }

    /// Number of live (unexpired) entries.
    #[must_use]
    pub fn len(&self, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|&&(_, expiry)| now < expiry)
            .count()
    }

    /// Whether nothing is cached (expired entries count as absent).
    #[must_use]
    pub fn is_empty(&self, now: SimTime) -> bool {
        self.len(now) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_gcs::view::canonical_members;

    fn record(name: &str, members: &[u32]) -> GroupRecord {
        GroupRecord {
            name: name.to_owned(),
            config: GroupConfig::request_reply(),
            members: canonical_members(members.iter().map(|&i| NodeId::from_index(i)).collect()),
            view: ViewId(3),
        }
    }

    #[test]
    fn requests_and_replies_round_trip() {
        let reqs = [
            DirRequest::Register {
                record: record("svc", &[0, 1, 2]),
            },
            DirRequest::Resolve {
                name: "svc".to_owned(),
            },
        ];
        for r in reqs {
            assert_eq!(DirRequest::from_cdr(&r.to_cdr()).unwrap(), r);
        }
        let replies = [
            DirReply::Ok,
            DirReply::Found {
                record: record("svc", &[0, 1]),
            },
            DirReply::NotFound {
                name: "ghost".to_owned(),
            },
        ];
        for r in replies {
            assert_eq!(DirReply::from_cdr(&r.to_cdr()).unwrap(), r);
        }
        assert!(matches!(
            DirRequest::from_cdr(&[9]),
            Err(CdrError::BadDiscriminant(9))
        ));
        assert!(matches!(
            DirReply::from_cdr(&[7]),
            Err(CdrError::BadDiscriminant(7))
        ));
    }

    #[test]
    fn cache_expires_and_invalidates() {
        let mut cache = DirCache::new(Duration::from_millis(100));
        let t0 = SimTime::from_millis(10);
        cache.insert(record("svc", &[0, 1, 2]), t0);
        assert!(cache.lookup("svc", SimTime::from_millis(50)).is_some());
        // Expired after the TTL.
        assert!(cache.lookup("svc", SimTime::from_millis(110)).is_none());
        assert!(cache.is_empty(SimTime::from_millis(110)));
        // Member-based invalidation drops only records listing it.
        cache.insert(record("svc", &[0, 1, 2]), t0);
        cache.insert(record("other", &[5, 6]), t0);
        cache.invalidate_member(NodeId::from_index(1));
        assert!(cache.lookup("svc", t0).is_none());
        assert!(cache.lookup("other", t0).is_some());
        cache.invalidate("other");
        assert!(cache.is_empty(t0));
    }
}
