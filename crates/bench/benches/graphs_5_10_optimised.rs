//! **Graphs 5–10** — the optimised open group (restricted group +
//! asynchronous message forwarding; the passive-replication
//! configuration, §4.2) against the non-replicated server, at the three
//! placements of §5.1.

use newtop_bench::{bench_seed, CLIENT_SWEEP};
use newtop_net::stats::TextTable;
use newtop_workloads::figures::graphs_5_10_optimised;
use newtop_workloads::scenario::Placement;

fn main() {
    let seed = bench_seed();
    let cases = [
        (
            Placement::AllLan,
            "Graphs 5-6: clients & servers on the LAN",
        ),
        (
            Placement::ServersLanClientsWan,
            "Graphs 7-8: servers on the LAN, clients distant",
        ),
        (Placement::AllWan, "Graphs 9-10: geographically distributed"),
    ];
    for (placement, label) in cases {
        let (opt_ms, opt_rps, non_ms, non_rps) =
            graphs_5_10_optimised(placement, CLIENT_SWEEP, seed);
        let table = TextTable::from_series(
            label.to_string(),
            "clients",
            &[opt_ms, non_ms, opt_rps, non_rps],
        );
        println!("{table}");
    }
    println!(
        "paper shape: the optimised open-asynchronous configuration closely \
         tracks its non-replicated counterpart in every setting."
    );
}
