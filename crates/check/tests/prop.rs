//! Property tests: the causal-order and no-duplicate invariants must
//! hold for overlapping groups under lossy links, whatever the seed and
//! multicast interleaving.

use newtop_check::scenario::GcsScenario;
use newtop_check::Invariant;
use newtop_gcs::group::OrderProtocol;
use newtop_net::faults::FaultPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The scenario's two groups share members n2/n3, so causal edges
    /// cross group boundaries; drops force the NACK machinery to run.
    /// Both orderings must keep causality and never deliver a message
    /// twice (or one never sent).
    #[test]
    fn prop_causal_and_no_dup_hold_under_drops(
        seed in 0u64..10_000,
        drop in 0.01f64..0.10,
        symmetric in any::<bool>(),
        rounds in 3u64..7,
    ) {
        let ordering = if symmetric {
            OrderProtocol::Symmetric
        } else {
            OrderProtocol::Asymmetric
        };
        let run = GcsScenario::new(seed, ordering, false, FaultPlan::calm())
            .with_drop(drop)
            .with_rounds(rounds)
            .run();
        let report = run.check();
        for v in &report.violations {
            prop_assert!(
                v.invariant != Invariant::CausalOrder
                    && v.invariant != Invariant::NoDupGhost,
                "[{}] {} ({} drop={drop} rounds={rounds})",
                v.invariant.label(),
                v.detail,
                run.repro
            );
        }
    }
}
