//! The NewTop group communication service.
//!
//! This crate implements the lower layer of the NewTop object group
//! service (§3 of the paper): view-synchronous reliable multicast with
//! causal and causality-preserving total order delivery, supporting
//! *overlapping groups* (one member may belong to many groups at once,
//! with one shared logical clock keeping cross-group total order
//! causality-consistent), both **symmetric** and **asymmetric** total
//! order protocols selectable per group, a membership service with a
//! failure suspector and atomic view changes, and the **time-silence**
//! mechanism with *lively* and *event-driven* group configurations.
//!
//! Structure:
//!
//! * [`clock`] — Lamport clocks and dependency vectors;
//! * [`group`] — group identifiers and per-group configuration;
//! * [`view`] — membership views;
//! * [`messages`] — the wire protocol (marshalled with the mini-ORB's CDR
//!   and carried as oneway ORB invocations between NewTop service
//!   objects, exactly as in the paper);
//! * [`engine`] — the pure, runtime-free delivery engine: per-sender
//!   FIFO reassembly, causal dependency tracking, the symmetric
//!   (timestamp) and asymmetric (sequencer) total-order protocols,
//!   stability/garbage collection and the view-change flush;
//! * [`member`] — the per-node protocol state machine
//!   ([`member::GcsMember`]): multicast, NACK/retransmission, null
//!   messages, failure suspicion, view agreement (virtual synchrony) and
//!   join/leave;
//! * [`testkit`] — simulator harness used by this crate's tests and by
//!   downstream integration tests.
//!
//! The failure model is the paper's: crash-stop processes, asynchronous
//! network, partitions possible (each partition may install its own
//! view).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod engine;
pub mod group;
pub mod member;
pub mod messages;
pub mod shard;
pub mod testkit;
pub mod view;

pub use clock::LamportClock;
pub use engine::{DeliveryEngine, EngineConfig};
pub use group::{DeliveryOrder, GroupConfig, GroupId, Liveness, OrderProtocol};
pub use member::{GcsError, GcsMember, GcsNet, GcsOutput};
pub use messages::{DataMsg, GcsMessage};
pub use shard::ShardedGcs;
pub use view::{View, ViewId};

/// The object key every NewTop service object registers its protocol
/// endpoint under.
pub const NSO_OBJECT_KEY: &str = "newtop-nso";

/// The ORB operation name carrying group-communication messages between
/// NSOs.
pub const GCS_OPERATION: &str = "gcs";
