//! Randomized fault-injection ("churn") tests at the full stack: under
//! arbitrary crash timings and reply modes, every call a client issues
//! completes exactly once.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{GroupConfig, GroupId, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gid() -> GroupId {
    GroupId::new("churn-svc")
}

struct Server {
    members: Vec<NodeId>,
    replication: Replication,
    optimisation: OpenOptimisation,
}

impl NsoApp for Server {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gid(),
            self.members.clone(),
            self.replication,
            self.optimisation,
            GroupConfig {
                ordering: OrderProtocol::Asymmetric,
                time_silence: Duration::from_millis(20),
                ..GroupConfig::request_reply()
            },
            now,
            out,
        )
        .expect("server group");
        let me = nso.node().index();
        nso.register_group_servant(
            gid(),
            Box::new(move |_op: &str, args: &[u8]| {
                let mut body = vec![me as u8];
                body.extend_from_slice(args);
                Bytes::from(body)
            }),
        );
    }

    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

struct Client {
    servers: Vec<NodeId>,
    mode: ReplyMode,
    manager_index: usize,
    total: usize,
    issued: usize,
    completed: Vec<u64>,
    outstanding: std::collections::HashMap<u64, SimTime>,
    binding: Option<GroupHandle>,
}

const BIND_TAG: u64 = tags::APP_BASE;
const TICK_TAG: u64 = tags::APP_BASE + 1;

impl Client {
    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let manager = self.servers[self.manager_index % self.servers.len()];
        let _ = nso.bind(
            gid(),
            BindOptions::open(manager).with_time_silence(Duration::from_millis(20)),
            now,
            out,
        );
    }

    fn issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        if self.issued >= self.total {
            return;
        }
        let Some(binding) = self.binding.clone() else {
            return;
        };
        if let Ok(call) = binding.invoke(
            nso,
            "work",
            Bytes::from(vec![(self.issued % 251) as u8]),
            self.mode,
            now,
            out,
        ) {
            self.issued += 1;
            self.outstanding.insert(call.number, now);
        }
    }
}

impl NsoApp for Client {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(Duration::from_millis(5), BIND_TAG);
        out.set_timer(Duration::from_millis(250), TICK_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        match tag {
            BIND_TAG => self.bind(nso, now, out),
            _ => {
                if let Some(binding) = self.binding.clone() {
                    let stalled: Vec<u64> = self
                        .outstanding
                        .iter()
                        .filter(|(_, &at)| now.saturating_since(at) > Duration::from_millis(200))
                        .map(|(&n, _)| n)
                        .collect();
                    for number in stalled {
                        let _ = binding.retry(nso, number, now, out);
                    }
                }
                out.set_timer(Duration::from_millis(250), TICK_TAG);
            }
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                let pending: Vec<u64> = self.outstanding.keys().copied().collect();
                if pending.is_empty() {
                    self.issue(nso, now, out);
                }
                for number in pending {
                    let _ = binding.retry(nso, number, now, out);
                }
            }
            NsoOutput::BindFailed { .. } | NsoOutput::BindingBroken { .. } => {
                self.binding = None;
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { call, .. } => {
                self.outstanding.remove(&call.number);
                self.completed.push(call.number);
                self.issue(nso, now, out);
            }
            _ => {}
        }
    }
}

fn run_churn(
    crash_ms: u64,
    crash_which: usize,
    mode: ReplyMode,
    replication: Replication,
    optimisation: OpenOptimisation,
    seed: u64,
) -> (Vec<u64>, usize) {
    let total = 60;
    let mut sim = Sim::new(SimConfig::lan(seed));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(Server {
                    members: servers.clone(),
                    replication,
                    optimisation,
                }),
            )),
        );
    }
    let client = NodeId::from_index(3);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(Client {
                servers: servers.clone(),
                mode,
                manager_index: 0,
                total,
                issued: 0,
                completed: Vec::new(),
                outstanding: std::collections::HashMap::new(),
                binding: None,
            }),
        )),
    );
    sim.schedule_crash(SimTime::from_millis(crash_ms), servers[crash_which % 3]);
    sim.run_until(SimTime::from_secs(30));
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<Client>()
        .unwrap();
    let mut done = app.completed.clone();
    done.sort_unstable();
    (done, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A crash at any time, of any replica, under any reply mode: every
    /// call the client issues completes exactly once.
    #[test]
    fn prop_every_call_completes_exactly_once_under_crashes(
        crash_ms in 5u64..300,
        crash_which in 0usize..3,
        mode_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        let mode = match mode_pick {
            0 => ReplyMode::First,
            1 => ReplyMode::Majority,
            _ => ReplyMode::All,
        };
        let (done, total) = run_churn(
            crash_ms,
            crash_which,
            mode,
            Replication::Active,
            OpenOptimisation::None,
            seed,
        );
        prop_assert_eq!(done, (1..=total as u64).collect::<Vec<_>>());
    }

    /// The same property for the passive-replication configuration
    /// (crashing the primary forces promotion + backlog replay).
    #[test]
    fn prop_passive_store_survives_primary_crashes(
        crash_ms in 5u64..200,
        seed in 0u64..1000,
    ) {
        let (done, total) = run_churn(
            crash_ms,
            0, // the designated primary
            ReplyMode::First,
            Replication::Passive,
            OpenOptimisation::AsyncForwarding,
            seed,
        );
        prop_assert_eq!(done, (1..=total as u64).collect::<Vec<_>>());
    }
}
