//! Integration-test crate for the NewTop reproduction. All content lives
//! in `tests/`.
