//! Protocol invariant checking for deterministic fault campaigns.
//!
//! The paper's guarantees (§3–§4) — virtual synchrony, causality-preserving
//! total order across overlapping groups, partitionable membership — only
//! fail under crashes, partitions and loss. This crate turns the
//! deterministic simulator into a standing correctness gate in the
//! FoundationDB/TigerBeetle style: scripted scenarios run under seeded
//! [`FaultPlan`](newtop_net::faults::FaultPlan)s, per-node delivery logs
//! and view histories are extracted (from
//! [`newtop_gcs::testkit::GcsNode`] outputs and the `newtop-net::trace`
//! ring), and an [`InvariantChecker`] asserts five invariants:
//!
//! 1. **Virtual synchrony** — nodes that pass through the same view
//!    transition deliver the same message set in it;
//! 2. **Total order** — per group, totally-ordered delivery sequences of
//!    any two nodes in the same epoch are prefix-compatible (equal once
//!    both closed the epoch);
//! 3. **Causal order** — per-sender FIFO everywhere, and any message a
//!    sender delivered before multicasting precedes that multicast at
//!    every node delivering both (including multi-group members);
//! 4. **No duplicates / no ghosts** — nothing is delivered twice, and
//!    everything delivered was actually sent by its claimed sender;
//! 5. **View agreement** — live nodes whose final views contain each
//!    other agree on that view exactly.
//!
//! Every violation message carries enough context (node, group, epoch)
//! for the campaign runner to print a byte-identical repro line
//! (seed + plan). See `src/bin/campaign.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod recovery;
pub mod scenario;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bytes::Bytes;

use newtop_gcs::group::{DeliveryOrder, GroupId};
use newtop_gcs::member::GcsOutput;
use newtop_gcs::view::View;
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;

/// One multicast the workload performed, as ground truth for the ghost
/// and causality checks.
#[derive(Clone, Debug)]
pub struct SentRecord {
    /// Destination group.
    pub group: GroupId,
    /// The multicasting member.
    pub sender: NodeId,
    /// The (unique) payload.
    pub payload: Bytes,
    /// When the workload scheduled the multicast. Deliveries observed at
    /// the sender strictly before this instant are causal predecessors.
    pub scheduled_at: SimTime,
    /// Requested guarantee.
    pub order: DeliveryOrder,
}

/// One event in a node's per-group history, in observation order.
#[derive(Clone, Debug)]
pub enum LogEvent {
    /// A message was delivered to the application.
    Delivered {
        /// Virtual time of delivery.
        at: SimTime,
        /// The multicasting member.
        sender: NodeId,
        /// The guarantee it was sent with.
        order: DeliveryOrder,
        /// Its Lamport timestamp.
        lamport: u64,
        /// The payload.
        payload: Bytes,
    },
    /// A view was installed.
    View {
        /// Virtual time of installation.
        at: SimTime,
        /// The new view.
        view: View,
    },
}

/// A node's history for one group.
#[derive(Clone, Debug)]
pub struct GroupLog {
    /// The group.
    pub group: GroupId,
    /// Events in observation order.
    pub events: Vec<LogEvent>,
}

/// Everything one node observed during a run.
#[derive(Clone, Debug)]
pub struct NodeLog {
    /// The node.
    pub node: NodeId,
    /// Whether the node was still alive when the run ended (crashed
    /// nodes' histories are checked up to the crash).
    pub alive: bool,
    /// Per-group histories.
    pub groups: Vec<GroupLog>,
}

impl NodeLog {
    /// Builds a node log from a [`newtop_gcs::testkit::GcsNode`]'s
    /// recorded `(time, output)` stream.
    #[must_use]
    pub fn from_outputs(node: NodeId, alive: bool, outputs: &[(SimTime, GcsOutput)]) -> Self {
        let mut groups: Vec<GroupLog> = Vec::new();
        let mut index: BTreeMap<GroupId, usize> = BTreeMap::new();
        let mut push = |group: &GroupId, ev: LogEvent| {
            let i = *index.entry(group.clone()).or_insert_with(|| {
                groups.push(GroupLog {
                    group: group.clone(),
                    events: Vec::new(),
                });
                groups.len() - 1
            });
            groups[i].events.push(ev);
        };
        for (at, output) in outputs {
            match output {
                GcsOutput::Delivered {
                    group,
                    sender,
                    order,
                    lamport,
                    payload,
                } => push(
                    group,
                    LogEvent::Delivered {
                        at: *at,
                        sender: *sender,
                        order: *order,
                        lamport: *lamport,
                        payload: payload.clone(),
                    },
                ),
                GcsOutput::ViewInstalled { group, view, .. } => push(
                    group,
                    LogEvent::View {
                        at: *at,
                        view: view.clone(),
                    },
                ),
                GcsOutput::LeftGroup { .. } => {}
            }
        }
        NodeLog {
            node,
            alive,
            groups,
        }
    }

    fn group(&self, group: &GroupId) -> Option<&GroupLog> {
        self.groups.iter().find(|g| &g.group == group)
    }
}

/// The five checked invariants.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// Same-view delivery sets agree.
    VirtualSynchrony,
    /// Per-group total-order prefix agreement.
    TotalOrder,
    /// Per-sender FIFO and deliver-before-send precedence.
    CausalOrder,
    /// No duplicate and no ghost deliveries.
    NoDupGhost,
    /// Surviving members with mutual final views agree on them.
    ViewAgreement,
}

impl Invariant {
    /// All invariants, in reporting order.
    pub const ALL: [Invariant; 5] = [
        Invariant::VirtualSynchrony,
        Invariant::TotalOrder,
        Invariant::CausalOrder,
        Invariant::NoDupGhost,
        Invariant::ViewAgreement,
    ];

    /// Short table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Invariant::VirtualSynchrony => "vsync",
            Invariant::TotalOrder => "total",
            Invariant::CausalOrder => "causal",
            Invariant::NoDupGhost => "dup/ghost",
            Invariant::ViewAgreement => "view",
        }
    }

    fn idx(self) -> usize {
        Invariant::ALL.iter().position(|&i| i == self).unwrap()
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One invariant violation, with human-readable context.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// What exactly diverged.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Per-invariant tallies of assertions made and assertions failed.
#[derive(Copy, Clone, Debug, Default)]
pub struct InvariantCounts {
    /// Assertions evaluated, indexed like [`Invariant::ALL`].
    pub checks: [u64; 5],
    /// Assertions failed, indexed like [`Invariant::ALL`].
    pub violations: [u64; 5],
}

impl InvariantCounts {
    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &InvariantCounts) {
        for i in 0..5 {
            self.checks[i] += other.checks[i];
            self.violations[i] += other.violations[i];
        }
    }
}

/// The outcome of one [`InvariantChecker::check`] pass.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Per-invariant tallies.
    pub counts: InvariantCounts,
    /// Every failed assertion, in detection order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True when every assertion held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.counts.merge(&other.counts);
        self.violations.extend(other.violations);
    }

    fn check(&mut self, invariant: Invariant, ok: bool, detail: impl FnOnce() -> String) {
        let i = invariant.idx();
        self.counts.checks[i] += 1;
        if !ok {
            self.counts.violations[i] += 1;
            self.violations.push(Violation {
                invariant,
                detail: detail(),
            });
        }
    }
}

/// An epoch of one node's group history: the deliveries observed between
/// two view installations (or before the first / after the last).
struct Epoch<'a> {
    start: Option<&'a View>,
    end: Option<&'a View>,
    /// Indexes into the group log's events.
    deliveries: Vec<&'a LogEvent>,
}

fn epochs(log: &GroupLog) -> Vec<Epoch<'_>> {
    let mut out = Vec::new();
    let mut current = Epoch {
        start: None,
        end: None,
        deliveries: Vec::new(),
    };
    for ev in &log.events {
        match ev {
            LogEvent::Delivered { .. } => current.deliveries.push(ev),
            LogEvent::View { view, .. } => {
                // `apply_install` pushes flush deliveries *before* the
                // ViewInstalled output, so everything seen so far belongs
                // to the closing epoch.
                current.end = Some(view);
                out.push(current);
                current = Epoch {
                    start: Some(view),
                    end: None,
                    deliveries: Vec::new(),
                };
            }
        }
    }
    out.push(current);
    out
}

/// A view identity usable as a map key: partitioned sides may reuse view
/// *numbers*, so the membership is part of the identity.
fn view_key(v: &View) -> (u64, Vec<NodeId>) {
    (v.id().0, v.members().to_vec())
}

fn delivery_parts(ev: &LogEvent) -> (NodeId, &Bytes, DeliveryOrder, u64, SimTime) {
    match ev {
        LogEvent::Delivered {
            at,
            sender,
            order,
            lamport,
            payload,
        } => (*sender, payload, *order, *lamport, *at),
        LogEvent::View { .. } => unreachable!("epoch deliveries contain only deliveries"),
    }
}

fn payload_preview(p: &Bytes) -> String {
    String::from_utf8_lossy(p).into_owned()
}

/// Checks the five protocol invariants over a set of node logs.
pub struct InvariantChecker {
    logs: Vec<NodeLog>,
    sent: Vec<SentRecord>,
}

impl InvariantChecker {
    /// Creates a checker over the run's node logs and its send ground
    /// truth. Payloads are assumed unique per run (the campaign scenarios
    /// guarantee this); duplicate detection relies on it.
    #[must_use]
    pub fn new(logs: Vec<NodeLog>, sent: Vec<SentRecord>) -> Self {
        InvariantChecker { logs, sent }
    }

    /// The node logs under check.
    #[must_use]
    pub fn logs(&self) -> &[NodeLog] {
        &self.logs
    }

    /// Runs every invariant and returns the combined report.
    #[must_use]
    pub fn check(&self) -> CheckReport {
        let mut report = CheckReport::default();
        let groups = self.all_groups();
        for group in &groups {
            self.check_virtual_synchrony(group, &mut report);
            self.check_total_order(group, &mut report);
            self.check_causal_order(group, &mut report);
            self.check_dup_ghost(group, &mut report);
            self.check_view_agreement(group, &mut report);
        }
        report
    }

    fn all_groups(&self) -> Vec<GroupId> {
        let mut seen = Vec::new();
        for log in &self.logs {
            for g in &log.groups {
                if !seen.contains(&g.group) {
                    seen.push(g.group.clone());
                }
            }
        }
        seen
    }

    /// Invariant 1: nodes sharing the view transition v → v' delivered
    /// the same message set inside v (virtual synchrony, §3).
    fn check_virtual_synchrony(&self, group: &GroupId, report: &mut CheckReport) {
        type TransitionKey = ((u64, Vec<NodeId>), (u64, Vec<NodeId>));
        type EpochSet = Vec<(NodeId, Bytes)>;
        let mut by_transition: BTreeMap<TransitionKey, Vec<(NodeId, EpochSet)>> = BTreeMap::new();
        for log in &self.logs {
            let Some(glog) = log.group(group) else {
                continue;
            };
            for epoch in epochs(glog) {
                let (Some(start), Some(end)) = (epoch.start, epoch.end) else {
                    continue;
                };
                let mut set: Vec<(NodeId, Bytes)> = epoch
                    .deliveries
                    .iter()
                    .map(|ev| {
                        let (sender, payload, ..) = delivery_parts(ev);
                        (sender, payload.clone())
                    })
                    .collect();
                set.sort();
                by_transition
                    .entry((view_key(start), view_key(end)))
                    .or_default()
                    .push((log.node, set));
            }
        }
        for ((start, _end), observers) in by_transition {
            let (reference_node, reference) = &observers[0];
            for (node, set) in &observers[1..] {
                report.check(Invariant::VirtualSynchrony, set == reference, || {
                    format!(
                        "group {group}: {node} and {reference_node} passed the same \
                         transition out of view v{} but delivered different sets \
                         ({} vs {} messages)",
                        start.0,
                        set.len(),
                        reference.len(),
                    )
                });
            }
        }
    }

    /// Invariant 2: totally-ordered delivery sequences agree per epoch —
    /// equal when both nodes closed the epoch with the same view,
    /// prefix-compatible while open (§3's total order).
    fn check_total_order(&self, group: &GroupId, report: &mut CheckReport) {
        struct NodeEpoch<'a> {
            node: NodeId,
            alive: bool,
            end: Option<(u64, Vec<NodeId>)>,
            seq: Vec<(NodeId, &'a Bytes)>,
        }
        let mut by_start: BTreeMap<(u64, Vec<NodeId>), Vec<NodeEpoch<'_>>> = BTreeMap::new();
        for log in &self.logs {
            let Some(glog) = log.group(group) else {
                continue;
            };
            for epoch in epochs(glog) {
                let Some(start) = epoch.start else {
                    continue;
                };
                let seq: Vec<(NodeId, &Bytes)> = epoch
                    .deliveries
                    .iter()
                    .filter_map(|ev| {
                        let (sender, payload, order, ..) = delivery_parts(ev);
                        (order == DeliveryOrder::Total).then_some((sender, payload))
                    })
                    .collect();
                by_start
                    .entry(view_key(start))
                    .or_default()
                    .push(NodeEpoch {
                        node: log.node,
                        alive: log.alive,
                        end: epoch.end.map(view_key),
                        seq,
                    });
            }
        }
        let fmt_seq = |seq: &[(NodeId, &Bytes)]| {
            seq.iter()
                .map(|(s, p)| format!("{s}:{}", payload_preview(p)))
                .collect::<Vec<_>>()
                .join(" ")
        };
        for (start, entries) in by_start {
            for i in 0..entries.len() {
                for j in i + 1..entries.len() {
                    let (a, b) = (&entries[i], &entries[j]);
                    let verdict = match (&a.end, &b.end) {
                        (Some(ea), Some(eb)) if ea == eb => Some(a.seq == b.seq),
                        (Some(_), Some(_)) => None, // diverged into different views
                        (None, None) => Some(is_prefix(&a.seq, &b.seq)),
                        (None, Some(_)) if a.alive => Some(is_strict_prefix(&a.seq, &b.seq)),
                        (Some(_), None) if b.alive => Some(is_strict_prefix(&b.seq, &a.seq)),
                        _ => None, // a crashed node's unfinished epoch
                    };
                    if let Some(ok) = verdict {
                        report.check(Invariant::TotalOrder, ok, || {
                            format!(
                                "group {group}: total-order divergence in epoch v{} \
                                 between {} [{}] and {} [{}]",
                                start.0,
                                a.node,
                                fmt_seq(&a.seq),
                                b.node,
                                fmt_seq(&b.seq),
                            )
                        });
                    }
                }
            }
        }
    }

    /// Invariant 3: per-sender FIFO (Lamport clocks strictly increase and
    /// payloads respect the send order), plus deliver-before-send
    /// precedence: if the sender had delivered m' (any group member,
    /// including multi-group members) before multicasting m into the same
    /// group, every node delivering both sees m' first.
    fn check_causal_order(&self, group: &GroupId, report: &mut CheckReport) {
        // Per-sender send order within the group, from the ground truth.
        let mut send_order: BTreeMap<NodeId, Vec<&Bytes>> = BTreeMap::new();
        for s in self.sent.iter().filter(|s| &s.group == group) {
            send_order.entry(s.sender).or_default().push(&s.payload);
        }
        for log in &self.logs {
            let Some(glog) = log.group(group) else {
                continue;
            };
            let mut per_sender: BTreeMap<NodeId, Vec<(u64, &Bytes)>> = BTreeMap::new();
            for ev in &glog.events {
                if let LogEvent::Delivered {
                    sender,
                    lamport,
                    payload,
                    ..
                } = ev
                {
                    per_sender
                        .entry(*sender)
                        .or_default()
                        .push((*lamport, payload));
                }
            }
            for (sender, seq) in &per_sender {
                let monotone = seq.windows(2).all(|w| w[0].0 < w[1].0);
                report.check(Invariant::CausalOrder, monotone, || {
                    format!(
                        "group {group}: {} delivered {sender}'s messages with \
                         non-increasing Lamport clocks (FIFO broken)",
                        log.node
                    )
                });
                if let Some(sent) = send_order.get(sender) {
                    let delivered: Vec<&Bytes> = seq.iter().map(|&(_, p)| p).collect();
                    report.check(
                        Invariant::CausalOrder,
                        is_subsequence(&delivered, sent),
                        || {
                            format!(
                                "group {group}: {} delivered {sender}'s messages out \
                                 of send order",
                                log.node
                            )
                        },
                    );
                }
            }
        }
        // Deliver-before-send edges, derived from each sender's own log:
        // anything the sender saw strictly before scheduling m precedes m.
        let mut edges: Vec<(&Bytes, &Bytes)> = Vec::new();
        for m in self.sent.iter().filter(|s| &s.group == group) {
            let Some(sender_log) = self
                .logs
                .iter()
                .find(|l| l.node == m.sender)
                .and_then(|l| l.group(group))
            else {
                continue;
            };
            for ev in &sender_log.events {
                if let LogEvent::Delivered { at, payload, .. } = ev {
                    if *at < m.scheduled_at && payload != &m.payload {
                        edges.push((payload, &m.payload));
                    }
                }
            }
        }
        for log in &self.logs {
            let Some(glog) = log.group(group) else {
                continue;
            };
            let mut position: BTreeMap<&Bytes, usize> = BTreeMap::new();
            let mut pos = 0usize;
            for ev in &glog.events {
                if let LogEvent::Delivered { payload, .. } = ev {
                    position.insert(payload, pos);
                    pos += 1;
                }
            }
            for (cause, effect) in &edges {
                let (Some(&pc), Some(&pe)) = (position.get(*cause), position.get(*effect)) else {
                    continue;
                };
                report.check(Invariant::CausalOrder, pc < pe, || {
                    format!(
                        "group {group}: {} delivered \"{}\" after its causal \
                         successor \"{}\"",
                        log.node,
                        payload_preview(cause),
                        payload_preview(effect),
                    )
                });
            }
        }
    }

    /// Invariant 4: no payload delivered twice at a node, and everything
    /// delivered matches a real multicast (sender included).
    fn check_dup_ghost(&self, group: &GroupId, report: &mut CheckReport) {
        let sent: BTreeSet<(NodeId, &Bytes)> = self
            .sent
            .iter()
            .filter(|s| &s.group == group)
            .map(|s| (s.sender, &s.payload))
            .collect();
        let have_ground_truth = !self.sent.is_empty();
        for log in &self.logs {
            let Some(glog) = log.group(group) else {
                continue;
            };
            let mut seen: BTreeSet<&Bytes> = BTreeSet::new();
            for ev in &glog.events {
                let LogEvent::Delivered {
                    sender, payload, ..
                } = ev
                else {
                    continue;
                };
                report.check(Invariant::NoDupGhost, seen.insert(payload), || {
                    format!(
                        "group {group}: {} delivered \"{}\" more than once",
                        log.node,
                        payload_preview(payload),
                    )
                });
                if have_ground_truth {
                    report.check(
                        Invariant::NoDupGhost,
                        sent.contains(&(*sender, payload)),
                        || {
                            format!(
                                "group {group}: {} delivered ghost message \"{}\" \
                                 (never multicast by {sender})",
                                log.node,
                                payload_preview(payload),
                            )
                        },
                    );
                }
            }
        }
    }

    /// Invariant 5: live nodes whose final views mutually include each
    /// other hold identical final views (partition-side agreement, §4).
    /// Nodes on opposite sides of an unhealed (or un-merged) partition
    /// legitimately hold different views and are not compared.
    fn check_view_agreement(&self, group: &GroupId, report: &mut CheckReport) {
        let finals: Vec<(NodeId, &View)> = self
            .logs
            .iter()
            .filter(|l| l.alive)
            .filter_map(|l| {
                let glog = l.group(group)?;
                let last = glog.events.iter().rev().find_map(|ev| match ev {
                    LogEvent::View { view, .. } => Some(view),
                    _ => None,
                })?;
                Some((l.node, last))
            })
            .collect();
        for i in 0..finals.len() {
            for j in i + 1..finals.len() {
                let (a, va) = finals[i];
                let (b, vb) = finals[j];
                if !(va.members().contains(&b) && vb.members().contains(&a)) {
                    continue;
                }
                report.check(Invariant::ViewAgreement, va == vb, || {
                    format!(
                        "group {group}: {a} ended in view v{} {:?} but {b} in \
                         v{} {:?} although each includes the other",
                        va.id().0,
                        va.members(),
                        vb.id().0,
                        vb.members(),
                    )
                });
            }
        }
    }
}

fn is_prefix<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    long[..short.len()] == *short
}

fn is_strict_prefix<T: PartialEq>(prefix: &[T], of: &[T]) -> bool {
    prefix.len() <= of.len() && of[..prefix.len()] == *prefix
}

fn is_subsequence<T: PartialEq>(needle: &[T], haystack: &[T]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Log mutations used to prove the checker catches real protocol bugs
/// (campaign `--mutate`, documented in EXPERIMENTS.md). Each perturbs the
/// extracted logs the way a specific protocol defect would.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Swap two adjacent totally-ordered deliveries at one node — an
    /// ordering bug.
    SwapOrder,
    /// Deliver one message twice at one node — a dedup bug.
    DuplicateDelivery,
    /// Silently drop one mid-epoch delivery at one node — an atomicity /
    /// virtual-synchrony bug.
    DropDelivery,
    /// Remove one node's final view installation — a membership bug.
    DropView,
}

impl Mutation {
    /// All mutations.
    pub const ALL: [Mutation; 4] = [
        Mutation::SwapOrder,
        Mutation::DuplicateDelivery,
        Mutation::DropDelivery,
        Mutation::DropView,
    ];

    /// Parses a campaign CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Mutation> {
        match name {
            "swap-order" => Some(Mutation::SwapOrder),
            "dup-delivery" => Some(Mutation::DuplicateDelivery),
            "drop-delivery" => Some(Mutation::DropDelivery),
            "drop-view" => Some(Mutation::DropView),
            _ => None,
        }
    }

    /// CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SwapOrder => "swap-order",
            Mutation::DuplicateDelivery => "dup-delivery",
            Mutation::DropDelivery => "drop-delivery",
            Mutation::DropView => "drop-view",
        }
    }

    /// Applies the mutation at a site where detection is *guaranteed* —
    /// a position some peer's log can be compared against under the
    /// checker's pairing rules. A corruption in an epoch no other node
    /// shares (a lone partition side, the tail past every peer's horizon)
    /// is information-theoretically invisible to a log checker, so such
    /// sites are rejected rather than counted as misses. Returns `false`
    /// when no log offered a validated site.
    pub fn apply(self, logs: &mut [NodeLog]) -> bool {
        for a in 0..logs.len() {
            for gi in 0..logs[a].groups.len() {
                let group = logs[a].groups[gi].group.clone();
                let my_alive = logs[a].alive;
                let mine = epoch_meta(&logs[a].groups[gi]);
                // Peer epoch structures for the same group.
                let peers: Vec<(bool, Vec<EpochMeta>)> = logs
                    .iter()
                    .enumerate()
                    .filter(|&(b, _)| b != a)
                    .filter_map(|(_, l)| {
                        let g = l.groups.iter().find(|g| g.group == group)?;
                        Some((l.alive, epoch_meta(g)))
                    })
                    .collect();
                match self {
                    Mutation::SwapOrder => {
                        for e in &mine {
                            // Swap two consecutive totally-ordered
                            // deliveries from different senders: a genuine
                            // order inversion, not a FIFO one.
                            for w in e.total_idx.windows(2) {
                                let (i, j) = (w[0], w[1]);
                                let same_sender = match (
                                    &logs[a].groups[gi].events[i],
                                    &logs[a].groups[gi].events[j],
                                ) {
                                    (
                                        LogEvent::Delivered { sender: sa, .. },
                                        LogEvent::Delivered { sender: sb, .. },
                                    ) => sa == sb,
                                    _ => true,
                                };
                                if same_sender {
                                    continue;
                                }
                                let p = e.total_idx.iter().position(|&x| x == i).expect("in");
                                if peer_sees_total_position(e, my_alive, &peers, p) {
                                    logs[a].groups[gi].events.swap(i, j);
                                    return true;
                                }
                            }
                        }
                    }
                    Mutation::DuplicateDelivery => {
                        // A duplicated delivery breaks the per-sender
                        // Lamport monotonicity the causal check enforces
                        // at the node itself — no peer needed.
                        if let Some(&i) = mine.iter().flat_map(|e| &e.delivery_idx).next() {
                            let copy = logs[a].groups[gi].events[i].clone();
                            logs[a].groups[gi].events.insert(i + 1, copy);
                            return true;
                        }
                    }
                    Mutation::DropDelivery => {
                        // Best site: a closed epoch a peer also closed
                        // with the same transition — virtual synchrony
                        // compares the full delivery sets, so losing any
                        // one delivery is caught.
                        for e in &mine {
                            if e.start.is_none() || e.end.is_none() || e.delivery_idx.is_empty() {
                                continue;
                            }
                            let shared = peers.iter().any(|(_, pe)| {
                                pe.iter().any(|f| f.start == e.start && f.end == e.end)
                            });
                            if shared {
                                let i = e.delivery_idx[0];
                                logs[a].groups[gi].events.remove(i);
                                return true;
                            }
                        }
                        // Fallback: drop a non-final totally-ordered
                        // delivery a peer's sequence extends past, so the
                        // total-order comparison sees divergence rather
                        // than a legal prefix.
                        for e in &mine {
                            for (p, &i) in e.total_idx.iter().enumerate() {
                                if p + 2 <= e.total_idx.len()
                                    && peer_sees_total_position(e, my_alive, &peers, p)
                                {
                                    logs[a].groups[gi].events.remove(i);
                                    return true;
                                }
                            }
                        }
                    }
                    Mutation::DropView => {
                        // Removing the final view rolls this node's
                        // recorded membership back one step. Detection
                        // needs an alive peer whose final view includes
                        // this node while the rolled-back view includes
                        // the peer — the view-agreement pairing rule.
                        if !my_alive {
                            continue;
                        }
                        let views: Vec<usize> = logs[a].groups[gi]
                            .events
                            .iter()
                            .enumerate()
                            .filter_map(|(i, ev)| matches!(ev, LogEvent::View { .. }).then_some(i))
                            .collect();
                        if views.len() < 2 {
                            continue;
                        }
                        let prev = match &logs[a].groups[gi].events[views[views.len() - 2]] {
                            LogEvent::View { view, .. } => view.clone(),
                            _ => unreachable!("filtered"),
                        };
                        let me = logs[a].node;
                        let detectable = logs.iter().enumerate().any(|(b, l)| {
                            if b == a || !l.alive {
                                return false;
                            }
                            let Some(g) = l.groups.iter().find(|g| g.group == group) else {
                                return false;
                            };
                            let last = g.events.iter().rev().find_map(|ev| match ev {
                                LogEvent::View { view, .. } => Some(view),
                                _ => None,
                            });
                            last.is_some_and(|u| {
                                u != &prev
                                    && u.members().contains(&me)
                                    && prev.members().contains(&l.node)
                            })
                        });
                        if detectable {
                            let i = views[views.len() - 1];
                            logs[a].groups[gi].events.remove(i);
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// Owned epoch structure of one node's group log, for validating
/// mutation sites without holding borrows.
struct EpochMeta {
    start: Option<(u64, Vec<NodeId>)>,
    end: Option<(u64, Vec<NodeId>)>,
    /// Event indexes of all deliveries in the epoch.
    delivery_idx: Vec<usize>,
    /// Event indexes of the totally-ordered deliveries, in order.
    total_idx: Vec<usize>,
}

fn epoch_meta(glog: &GroupLog) -> Vec<EpochMeta> {
    let mut out = Vec::new();
    let mut cur = EpochMeta {
        start: None,
        end: None,
        delivery_idx: Vec::new(),
        total_idx: Vec::new(),
    };
    for (i, ev) in glog.events.iter().enumerate() {
        match ev {
            LogEvent::Delivered { order, .. } => {
                cur.delivery_idx.push(i);
                if *order == DeliveryOrder::Total {
                    cur.total_idx.push(i);
                }
            }
            LogEvent::View { view, .. } => {
                cur.end = Some(view_key(view));
                let start = Some(view_key(view));
                out.push(std::mem::replace(
                    &mut cur,
                    EpochMeta {
                        start,
                        end: None,
                        delivery_idx: Vec::new(),
                        total_idx: Vec::new(),
                    },
                ));
            }
        }
    }
    out.push(cur);
    out
}

/// Whether corrupting total-order position `p` of epoch `e` at a node
/// with liveness `my_alive` is visible to some peer under the total-order
/// pairing rules: the peer must share the epoch's starting view, reach
/// position `p` itself, and pair under a verdict the checker actually
/// computes (same closing view, both still open, or open-vs-closed with
/// the open side alive).
fn peer_sees_total_position(
    e: &EpochMeta,
    my_alive: bool,
    peers: &[(bool, Vec<EpochMeta>)],
    p: usize,
) -> bool {
    if e.start.is_none() {
        return false;
    }
    peers.iter().any(|(peer_alive, pe)| {
        pe.iter().any(|f| {
            if f.start != e.start {
                return false;
            }
            let reach = f.total_idx.len() > p;
            match (&e.end, &f.end) {
                (Some(ea), Some(eb)) => ea == eb && reach,
                (None, None) => reach,
                (None, Some(_)) => my_alive && reach,
                (Some(_), None) => *peer_alive && reach,
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_gcs::view::ViewId;

    fn nid(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn gid() -> GroupId {
        GroupId::new("g")
    }

    fn view(id: u64, members: &[u32]) -> View {
        View::new(
            gid(),
            ViewId(id),
            members.iter().map(|&i| nid(i)).collect::<Vec<_>>(),
        )
    }

    fn delivered(at_ms: u64, sender: u32, lamport: u64, payload: &str) -> LogEvent {
        LogEvent::Delivered {
            at: SimTime::from_millis(at_ms),
            sender: nid(sender),
            order: DeliveryOrder::Total,
            lamport,
            payload: Bytes::from(payload.to_string()),
        }
    }

    fn installed(at_ms: u64, v: &View) -> LogEvent {
        LogEvent::View {
            at: SimTime::from_millis(at_ms),
            view: v.clone(),
        }
    }

    fn log(node: u32, events: Vec<LogEvent>) -> NodeLog {
        NodeLog {
            node: nid(node),
            alive: true,
            groups: vec![GroupLog {
                group: gid(),
                events,
            }],
        }
    }

    fn sent(sender: u32, at_ms: u64, payload: &str) -> SentRecord {
        SentRecord {
            group: gid(),
            sender: nid(sender),
            payload: Bytes::from(payload.to_string()),
            scheduled_at: SimTime::from_millis(at_ms),
            order: DeliveryOrder::Total,
        }
    }

    /// Two nodes, one view, agreeing totally-ordered histories.
    fn agreeing_logs() -> (Vec<NodeLog>, Vec<SentRecord>) {
        let v = view(1, &[0, 1]);
        let events = |_: u32| {
            vec![
                installed(1, &v),
                delivered(10, 0, 1, "a"),
                delivered(20, 1, 2, "b"),
                delivered(30, 0, 3, "c"),
            ]
        };
        let logs = vec![log(0, events(0)), log(1, events(1))];
        let sends = vec![sent(0, 5, "a"), sent(1, 15, "b"), sent(0, 25, "c")];
        (logs, sends)
    }

    #[test]
    fn clean_histories_pass_all_invariants() {
        let (mut logs, sends) = agreeing_logs();
        // Close the epoch so virtual synchrony has a transition to check.
        let v2 = view(2, &[0, 1]);
        for l in &mut logs {
            l.groups[0].events.push(installed(100, &v2));
        }
        let report = InvariantChecker::new(logs, sends).check();
        assert!(report.passed(), "{:?}", report.violations);
        for i in 0..5 {
            assert!(report.counts.checks[i] > 0, "invariant {i} never checked");
        }
    }

    #[test]
    fn total_order_divergence_is_caught() {
        let (mut logs, sends) = agreeing_logs();
        // Swap b and c at node 1: both Total, different senders.
        logs[1].groups[0].events.swap(2, 3);
        let report = InvariantChecker::new(logs, sends).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::TotalOrder));
    }

    #[test]
    fn missing_delivery_breaks_virtual_synchrony() {
        let (mut logs, sends) = agreeing_logs();
        let v2 = view(2, &[0, 1]);
        for l in &mut logs {
            l.groups[0].events.push(installed(100, &v2));
        }
        // Node 1 loses "b" inside the closed epoch.
        logs[1].groups[0].events.remove(2);
        let report = InvariantChecker::new(logs, sends).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::VirtualSynchrony));
    }

    #[test]
    fn duplicate_and_ghost_deliveries_are_caught() {
        let (mut logs, sends) = agreeing_logs();
        let dup = logs[0].groups[0].events[1].clone();
        logs[0].groups[0].events.push(dup);
        logs[1].groups[0].events.push(delivered(99, 1, 9, "ghost"));
        let report = InvariantChecker::new(logs, sends).check();
        let dupghost = report
            .violations
            .iter()
            .filter(|v| v.invariant == Invariant::NoDupGhost)
            .count();
        assert!(dupghost >= 2, "{:?}", report.violations);
    }

    #[test]
    fn fifo_inversion_is_caught_as_causal() {
        let (mut logs, sends) = agreeing_logs();
        // Node 1 delivers node 0's "c" before "a": same sender, FIFO broken.
        let events = &mut logs[1].groups[0].events;
        events.swap(1, 3);
        let report = InvariantChecker::new(logs, sends).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::CausalOrder));
    }

    #[test]
    fn deliver_before_send_edges_are_enforced() {
        // Node 0 delivered "b" (at 20ms) before sending "c" (at 25ms):
        // b ≺ c. Node 1 delivering c before b violates causality even
        // though FIFO per sender holds there.
        let v = view(1, &[0, 1]);
        let logs = vec![
            log(
                0,
                vec![
                    installed(1, &v),
                    delivered(10, 0, 1, "a"),
                    delivered(20, 1, 2, "b"),
                    delivered(30, 0, 3, "c"),
                ],
            ),
            log(
                1,
                vec![
                    installed(1, &v),
                    delivered(10, 0, 1, "a"),
                    delivered(28, 0, 3, "c"),
                    delivered(33, 1, 2, "b"),
                ],
            ),
        ];
        let sends = vec![sent(0, 5, "a"), sent(1, 15, "b"), sent(0, 25, "c")];
        let report = InvariantChecker::new(logs, sends).check();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == Invariant::CausalOrder),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn divergent_final_views_with_mutual_membership_are_caught() {
        let (mut logs, sends) = agreeing_logs();
        // Node 1 installs a different final view that still contains node 0.
        let skewed = view(7, &[0, 1]);
        logs[1].groups[0].events.push(installed(200, &skewed));
        let report = InvariantChecker::new(logs, sends).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::ViewAgreement));
    }

    #[test]
    fn partitioned_final_views_are_not_compared() {
        // Two one-member views after an unhealed split: no mutual
        // membership, so no view-agreement assertion fires.
        let va = view(3, &[0]);
        let vb = view(3, &[1]);
        let logs = vec![
            log(0, vec![installed(1, &va)]),
            log(1, vec![installed(1, &vb)]),
        ];
        let report = InvariantChecker::new(logs, Vec::new()).check();
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.counts.checks[Invariant::ViewAgreement.idx()], 0);
    }

    #[test]
    fn every_mutation_is_caught_by_some_invariant() {
        for mutation in Mutation::ALL {
            let (mut logs, sends) = agreeing_logs();
            // Give the logs a closed epoch so vsync has material, and a
            // second view so DropView leaves a comparable final state.
            let v2 = view(2, &[0, 1]);
            for l in &mut logs {
                l.groups[0].events.push(installed(100, &v2));
                l.groups[0].events.push(delivered(120, 1, 4, "d"));
            }
            assert!(mutation.apply(&mut logs), "{mutation:?} found no site");
            let report = InvariantChecker::new(logs, sends).check();
            assert!(
                !report.passed(),
                "{mutation:?} slipped past every invariant"
            );
        }
    }
}
