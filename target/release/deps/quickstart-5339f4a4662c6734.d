/root/repo/target/release/deps/quickstart-5339f4a4662c6734.d: examples/src/bin/quickstart.rs

/root/repo/target/release/deps/quickstart-5339f4a4662c6734: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
