#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, static analysis, tests.
# Offline-friendly — everything below works from the vendored deps with
# no network access.
#
# Modes:
#   scripts/check.sh          quick gate (every step below except loom
#                             execution and Miri; loom tests still
#                             compile)
#   scripts/check.sh --full   also runs the flow-queue model checks
#                             under --cfg loom and, when a miri
#                             toolchain is installed, the CDR tests
#                             under Miri
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
if [ "${1:-}" = "--full" ]; then
    FULL=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> static analysis (newtop-analyze: call-graph reachability rules + baseline diff gate)"
cargo run --release --offline -q -p newtop-analyze -- --self-test
# The gate diffs findings against the committed baseline: a new finding
# fails, and a fixed finding fails until the baseline is regenerated
# (cargo run -p newtop-analyze -- --write-baseline analyze.baseline.json).
# Pretty-print the JSON report with scripts/analyze_report.sh.
cargo run --release --offline -q -p newtop-analyze -- \
    --json target/analyze-report.json --baseline analyze.baseline.json

echo "==> cargo test -q"
cargo test --workspace --offline -q

echo "==> loom model tests compile (--cfg loom)"
RUSTFLAGS="--cfg loom" cargo test --offline -q -p newtop-flow --no-run

if [ "$FULL" = 1 ]; then
    echo "==> loom model tests run (--cfg loom, release)"
    RUSTFLAGS="--cfg loom" cargo test --offline -q -p newtop-flow --release

    if rustup run miri true >/dev/null 2>&1 || command -v miri >/dev/null 2>&1; then
        echo "==> miri over the CDR marshalling tests"
        cargo miri test --offline -p newtop-orb cdr
    else
        echo "==> miri not installed; skipping (install with: rustup component add miri)"
    fi
fi

echo "==> cargo bench --no-run (bench targets must compile)"
cargo bench --workspace --offline --no-run

echo "==> fault-injection campaign (quick, 25 seeds)"
cargo build --release --offline -p newtop-check
./target/release/campaign --seeds 25 --quiet

echo "==> crash-recovery campaign smoke (5 seeds: replay + delta rejoin obligations)"
./target/release/campaign --recovery --seeds 5 --quiet

echo "==> loadgen smoke (flow control engages, queues stay bounded, shards=2 batch)"
cargo build --release --offline -p newtop-bench --bin loadgen
./target/release/loadgen --smoke --shards 2 > /dev/null

echo "==> scale-model smoke (capacity sweep sustains its floor, replays byte-identically)"
cargo build --release --offline -p newtop-bench --bin scale
./target/release/scale --smoke > /dev/null

echo "==> no build artifacts under version control"
if [ -n "$(git ls-files target/)" ]; then
    echo "ERROR: target/ files are tracked by git; run 'git rm -r --cached target/'" >&2
    exit 1
fi

echo "OK"
