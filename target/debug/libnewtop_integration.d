/root/repo/target/debug/libnewtop_integration.rlib: /root/repo/tests/src/lib.rs
