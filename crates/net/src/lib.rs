//! Network substrate for the NewTop object group service reproduction.
//!
//! The paper ("Implementing Flexible Object Group Invocation in Networked
//! Systems", DSN 2000) evaluated NewTop on a 100 Mbit LAN and over the
//! Internet between Newcastle, London and Pisa. This crate supplies the
//! equivalent substrate:
//!
//! * [`sim`] — a deterministic discrete-event network simulator with
//!   per-site latency matrices, per-node serial CPU queues (so saturation
//!   effects such as the sequencer bottleneck emerge naturally), seeded
//!   jitter, message loss/duplication, partitions and crash injection.
//! * [`latency`] — latency models: presets calibrated to the paper's two
//!   environments ([`latency::LatencyMatrix::lan`] and
//!   [`latency::LatencyMatrix::internet`]), synthetic multi-region
//!   matrices ([`latency::LatencyMatrix::global5`],
//!   [`latency::LatencyMatrix::continental3`]) and per-link bandwidth
//!   caps ([`latency::BandwidthMatrix`]).
//! * [`faults`] — declarative fault-injection plans ([`faults::FaultPlan`])
//!   scheduling crashes, partition/heal pairs, drop bursts, delay spikes,
//!   duplication windows and sequencer-targeted kills onto a running
//!   simulation, with a printable form for byte-identical reproduction.
//! * [`channel`] and [`tcp`] — real transports (in-process channels and
//!   framed TCP) used by the threaded runtime for the runnable examples.
//! * [`stats`] — histograms, throughput meters and text tables used by the
//!   experiment harness.
//! * [`metrics`] and [`trace`] — zero-dependency observability shared by
//!   every layer above: per-node counter/gauge/latency registries and
//!   bounded rings of typed protocol events, timestamped in the host
//!   runtime's time base.
//!
//! Everything above this crate is written sans-IO: protocol state machines
//! consume [`sim::NodeEvent`]s and emit actions into a [`sim::Outbox`], so
//! identical code runs under the simulator and under the threaded runtime.
//!
//! # Example
//!
//! ```
//! use newtop_net::sim::{Sim, SimConfig, SimNode, NodeEvent, Outbox};
//! use newtop_net::site::Site;
//! use newtop_net::time::SimTime;
//! use bytes::Bytes;
//!
//! struct Ping;
//! struct Pong(u32);
//!
//! impl SimNode for Ping {
//!     fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
//!         if let NodeEvent::Start = ev {
//!             out.send(newtop_net::site::NodeId::from_index(1), Bytes::from_static(b"ping"));
//!         }
//!     }
//! }
//! impl SimNode for Pong {
//!     fn on_event(&mut self, _now: SimTime, ev: NodeEvent, _out: &mut Outbox) {
//!         if let NodeEvent::Packet(_) = ev {
//!             self.0 += 1;
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! sim.add_node(Site::Lan, Box::new(Ping));
//! let pong = sim.add_node(Site::Lan, Box::new(Pong(0)));
//! sim.run_until_idle();
//! assert_eq!(sim.node_ref::<Pong>(pong).unwrap().0, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod faults;
pub mod latency;
pub mod metrics;
pub mod sim;
pub mod site;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod trace;
pub mod transport;

pub use faults::{FaultOp, FaultPlan, FaultTarget};
pub use latency::{BandwidthMatrix, LatencyMatrix, LatencySpec};
pub use metrics::{MetricRegistry, MetricsSnapshot, Observability};
pub use sim::{NodeEvent, Outbox, Packet, Sim, SimConfig, SimNode, TimerId};
pub use site::{NodeId, Site};
pub use time::SimTime;
pub use trace::{TraceEvent, TraceLog, TraceRecord};
