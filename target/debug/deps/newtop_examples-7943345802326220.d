/root/repo/target/debug/deps/newtop_examples-7943345802326220.d: examples/src/lib.rs

/root/repo/target/debug/deps/newtop_examples-7943345802326220: examples/src/lib.rs

examples/src/lib.rs:
