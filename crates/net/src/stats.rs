//! Measurement utilities for the experiment harness: sample histograms,
//! throughput accounting, labelled data series and plain-text tables in the
//! style of the paper's graphs.

use std::fmt;
use std::time::Duration;

/// A bag of duration samples with summary statistics.
///
/// ```
/// use newtop_net::stats::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 5);
/// assert_eq!(h.median(), Duration::from_millis(3));
/// assert_eq!(h.max(), Duration::from_millis(100));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<Duration>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; zero when empty.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = self.samples.iter().map(Duration::as_nanos).sum();
        nanos_to_duration(total / self.samples.len() as u128)
    }

    /// The `q`-quantile (0.0..=1.0) by nearest-rank; zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&mut self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[rank]
    }

    /// Median sample.
    pub fn median(&mut self) -> Duration {
        self.quantile(0.5)
    }

    /// Largest sample; zero when empty.
    #[must_use]
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Smallest sample; zero when empty.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or(Duration::ZERO)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

fn nanos_to_duration(nanos: u128) -> Duration {
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// Counts events over a known observation window and reports a rate.
///
/// ```
/// use newtop_net::stats::Meter;
/// use std::time::Duration;
///
/// let mut m = Meter::new();
/// m.add(500);
/// assert_eq!(m.rate_per_sec(Duration::from_secs(2)), 250.0);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Meter {
    count: u64,
}

impl Meter {
    /// Creates a meter at zero.
    #[must_use]
    pub fn new() -> Self {
        Meter::default()
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Total events counted.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Events per second over an observation window; zero for an empty
    /// window.
    #[must_use]
    pub fn rate_per_sec(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.count as f64 / window.as_secs_f64()
    }
}

/// A labelled series of (x, y) points — one line on one of the paper's
/// graphs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"Closed"` or `"Symmetric"`.
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if present.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// The last y value, if any.
    #[must_use]
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// True if y never decreases by more than `slack` (relative) along the
    /// series — used by shape assertions in tests.
    #[must_use]
    pub fn is_non_decreasing(&self, slack: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 * (1.0 - slack))
    }

    /// True if y never increases by more than `slack` (relative) along the
    /// series.
    #[must_use]
    pub fn is_non_increasing(&self, slack: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 * (1.0 + slack))
    }
}

/// A plain-text table with a title, column headers and float rows — the
/// format every bench target prints its reproduced figure in.
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row of floats, formatted to one decimal place.
    pub fn row_f64(&mut self, cells: &[f64]) {
        self.row(cells.iter().map(|v| format!("{v:.1}")).collect());
    }

    /// Builds a table from a set of series sharing the same x values: the
    /// first column is x, one column per series.
    #[must_use]
    pub fn from_series(title: impl Into<String>, x_name: &str, series: &[Series]) -> Self {
        let mut headers = vec![x_name.to_owned()];
        headers.extend(series.iter().map(|s| s.label.clone()));
        let mut table = TextTable {
            title: title.into(),
            headers,
            rows: Vec::new(),
        };
        let xs: Vec<f64> = series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        for x in xs {
            let mut cells = vec![format!("{x:.0}")];
            for s in series {
                match s.y_at(x) {
                    Some(y) => cells.push(format!("{y:.1}")),
                    None => cells.push("-".to_owned()),
                }
            }
            table.rows.push(cells);
        }
        table
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{h:>w$}  ", w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{:->w$}  ", "", w = widths[i])?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{cell:>w$}  ", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        for ms in 1..=10u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.mean(), Duration::from_micros(5500));
        assert_eq!(h.min(), Duration::from_millis(1));
        assert_eq!(h.max(), Duration::from_millis(10));
        assert_eq!(h.quantile(0.0), Duration::from_millis(1));
        assert_eq!(h.quantile(1.0), Duration::from_millis(10));
    }

    #[test]
    fn histogram_empty_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.median(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(Duration::from_millis(1));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_rejects_bad_quantile() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn meter_rates() {
        let mut m = Meter::new();
        m.add(10);
        m.add(20);
        assert_eq!(m.count(), 30);
        assert_eq!(m.rate_per_sec(Duration::from_secs(3)), 10.0);
        assert_eq!(m.rate_per_sec(Duration::ZERO), 0.0);
    }

    #[test]
    fn series_lookup_and_shape() {
        let mut s = Series::new("open");
        s.push(1.0, 10.0);
        s.push(2.0, 12.0);
        s.push(3.0, 11.9);
        assert_eq!(s.y_at(2.0), Some(12.0));
        assert_eq!(s.y_at(9.0), None);
        assert_eq!(s.last_y(), Some(11.9));
        assert!(s.is_non_decreasing(0.05));
        assert!(!s.is_non_decreasing(0.0));
    }

    #[test]
    fn table_formats_all_columns() {
        let mut s1 = Series::new("closed");
        let mut s2 = Series::new("open");
        s1.push(1.0, 5.0);
        s2.push(1.0, 4.0);
        let t = TextTable::from_series("Graph 11", "clients", &[s1, s2]);
        let out = t.to_string();
        assert!(out.contains("Graph 11"));
        assert!(out.contains("closed"));
        assert!(out.contains("open"));
        assert!(out.contains("5.0"));
        assert!(out.contains("4.0"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(vec!["only one".to_owned()]);
    }
}
