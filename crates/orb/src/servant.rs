//! Servants and the object adapter.
//!
//! A [`Servant`] is the implementation side of an object reference: it
//! receives operation names with marshalled arguments and produces
//! marshalled results. The [`ObjectAdapter`] maps object keys to servants,
//! the way a CORBA POA does.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use bytes::Bytes;

use crate::ior::ObjectKey;

/// Errors a servant can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServantError {
    /// The operation name is not implemented by this servant.
    BadOperation(String),
    /// An application-level (user) exception with a marshalled payload.
    User(Bytes),
}

impl fmt::Display for ServantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServantError::BadOperation(op) => write!(f, "operation not implemented: {op}"),
            ServantError::User(b) => write!(f, "user exception ({} bytes)", b.len()),
        }
    }
}

impl Error for ServantError {}

/// The implementation of one object.
pub trait Servant: Send {
    /// Executes `operation` with marshalled `args`, returning the
    /// marshalled result.
    ///
    /// # Errors
    ///
    /// [`ServantError::BadOperation`] for unknown operations, or
    /// [`ServantError::User`] to raise an application exception.
    fn dispatch(&mut self, operation: &str, args: &[u8]) -> Result<Bytes, ServantError>;
}

impl<F> Servant for F
where
    F: FnMut(&str, &[u8]) -> Result<Bytes, ServantError> + Send,
{
    fn dispatch(&mut self, operation: &str, args: &[u8]) -> Result<Bytes, ServantError> {
        self(operation, args)
    }
}

/// Maps object keys to servants for one node.
#[derive(Default)]
pub struct ObjectAdapter {
    servants: HashMap<ObjectKey, Box<dyn Servant>>,
}

impl fmt::Debug for ObjectAdapter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut keys: Vec<&ObjectKey> = self.servants.keys().collect();
        keys.sort();
        f.debug_struct("ObjectAdapter")
            .field("keys", &keys)
            .finish()
    }
}

impl ObjectAdapter {
    /// Creates an empty adapter.
    #[must_use]
    pub fn new() -> Self {
        ObjectAdapter::default()
    }

    /// Activates a servant under `key`, replacing any previous one.
    pub fn activate(&mut self, key: impl Into<ObjectKey>, servant: Box<dyn Servant>) {
        self.servants.insert(key.into(), servant);
    }

    /// Deactivates the servant under `key`, returning it if present.
    pub fn deactivate(&mut self, key: &ObjectKey) -> Option<Box<dyn Servant>> {
        self.servants.remove(key)
    }

    /// Whether a servant is active under `key`.
    #[must_use]
    pub fn is_active(&self, key: &ObjectKey) -> bool {
        self.servants.contains_key(key)
    }

    /// Dispatches an operation to the servant under `key`.
    ///
    /// Returns `None` if no servant is active under that key (the caller
    /// turns this into an `ObjectNotExist` system exception).
    pub fn dispatch(
        &mut self,
        key: &ObjectKey,
        operation: &str,
        args: &[u8],
    ) -> Option<Result<Bytes, ServantError>> {
        self.servants
            .get_mut(key)
            .map(|s| s.dispatch(operation, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u64,
    }

    impl Servant for Counter {
        fn dispatch(&mut self, operation: &str, _args: &[u8]) -> Result<Bytes, ServantError> {
            match operation {
                "incr" => {
                    self.n += 1;
                    Ok(Bytes::copy_from_slice(&self.n.to_be_bytes()))
                }
                other => Err(ServantError::BadOperation(other.to_owned())),
            }
        }
    }

    #[test]
    fn adapter_routes_to_servant() {
        let mut oa = ObjectAdapter::new();
        oa.activate("counter", Box::new(Counter { n: 0 }));
        let r = oa
            .dispatch(&ObjectKey::new("counter"), "incr", &[])
            .unwrap()
            .unwrap();
        assert_eq!(r.as_ref(), 1u64.to_be_bytes());
        let r = oa
            .dispatch(&ObjectKey::new("counter"), "incr", &[])
            .unwrap()
            .unwrap();
        assert_eq!(r.as_ref(), 2u64.to_be_bytes());
    }

    #[test]
    fn unknown_key_is_none() {
        let mut oa = ObjectAdapter::new();
        assert!(oa.dispatch(&ObjectKey::new("ghost"), "op", &[]).is_none());
    }

    #[test]
    fn unknown_operation_is_bad_operation() {
        let mut oa = ObjectAdapter::new();
        oa.activate("counter", Box::new(Counter { n: 0 }));
        let err = oa
            .dispatch(&ObjectKey::new("counter"), "zap", &[])
            .unwrap()
            .unwrap_err();
        assert_eq!(err, ServantError::BadOperation("zap".to_owned()));
    }

    #[test]
    fn closures_are_servants() {
        let mut oa = ObjectAdapter::new();
        oa.activate(
            "echo",
            Box::new(|_op: &str, args: &[u8]| Ok(Bytes::copy_from_slice(args))),
        );
        let r = oa
            .dispatch(&ObjectKey::new("echo"), "any", b"hello")
            .unwrap()
            .unwrap();
        assert_eq!(r.as_ref(), b"hello");
    }

    #[test]
    fn deactivate_removes() {
        let mut oa = ObjectAdapter::new();
        oa.activate("counter", Box::new(Counter { n: 0 }));
        assert!(oa.is_active(&ObjectKey::new("counter")));
        assert!(oa.deactivate(&ObjectKey::new("counter")).is_some());
        assert!(!oa.is_active(&ObjectKey::new("counter")));
        assert!(oa.deactivate(&ObjectKey::new("counter")).is_none());
    }
}
