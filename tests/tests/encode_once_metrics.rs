//! End-to-end proof of the encode-once multicast invariant through the
//! public metrics surface: a member that multicasts K data messages to a
//! group CDR-encodes each exactly once, however many recipients the
//! fan-out has.
//!
//! The counters make the invariant checkable without touching internals:
//! `gcs.encode_calls` counts encodes (one per fan-out or unicast) while
//! `gcs.msgs_sent` counts per-recipient sends. Per-recipient encoding
//! would force the two to be equal; encode-once makes every fan-out to
//! `R` recipients contribute `R - 1` to the difference. In a stable
//! `G`-member view each multicast reaches `G - 1` peers, so `K` data
//! multicasts alone guarantee a difference of at least `K * (G - 2)`.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

const PAYLOAD: usize = 64;
const CALLS: u64 = 40;

fn room() -> GroupId {
    GroupId::new("enc-once")
}

fn config() -> GroupConfig {
    GroupConfig::peer().with_time_silence(Duration::from_millis(15))
}

/// Member 0 multicasts `CALLS` fixed-size messages; everyone records what
/// it delivers from member 0.
struct Chatter {
    members: Vec<NodeId>,
    talker: bool,
    sent: u64,
    delivered_from_talker: u64,
}

impl NsoApp for Chatter {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_peer_group(room(), self.members.clone(), config(), now, out)
            .expect("create");
        if self.talker {
            out.set_timer(Duration::from_millis(20), tags::APP_BASE);
        }
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        if self.sent < CALLS {
            let peer = nso.handle_for(&room()).expect("peer handle");
            if peer
                .send(
                    nso,
                    Bytes::from(vec![0xAB; PAYLOAD]),
                    DeliveryOrder::Total,
                    now,
                    out,
                )
                .is_ok()
            {
                self.sent += 1;
            }
            out.set_timer(Duration::from_millis(25), tags::APP_BASE);
        }
    }

    fn on_output(&mut self, _: &mut Nso, output: NsoOutput, _: SimTime, _: &mut Outbox) {
        if let NsoOutput::PeerDeliver { sender, .. } = output {
            if sender == NodeId::from_index(0) {
                self.delivered_from_talker += 1;
            }
        }
    }
}

/// Runs a `group_size`-member group and returns the talker's
/// `(encode_calls, bytes_encoded, msgs_sent)` counters.
fn run_group(group_size: u32) -> (u64, u64, u64) {
    let mut sim = Sim::new(SimConfig::lan(97));
    let members: Vec<NodeId> = (0..group_size).map(NodeId::from_index).collect();
    for &m in &members {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                m,
                Box::new(Chatter {
                    members: members.clone(),
                    talker: m == members[0],
                    sent: 0,
                    delivered_from_talker: 0,
                }),
            )),
        );
    }
    sim.run_until(SimTime::from_secs(10));

    // Correctness first: every member (talker included, via loopback)
    // delivered all CALLS messages through the shared-frame path.
    for &m in &members {
        let node = sim.node_ref::<NsoNode>(m).expect("node");
        let app = node.app_ref::<Chatter>().expect("app");
        assert_eq!(
            app.delivered_from_talker, CALLS,
            "member {m} missed talker messages in a {group_size}-group"
        );
    }

    let talker = sim.node_ref::<NsoNode>(members[0]).expect("talker");
    assert_eq!(talker.app_ref::<Chatter>().expect("app").sent, CALLS);
    let snap = talker.nso().metrics();
    (
        snap.counter("gcs.encode_calls"),
        snap.counter("gcs.bytes_encoded"),
        snap.counter("gcs.msgs_sent"),
    )
}

#[test]
fn one_encode_per_multicast_independent_of_group_size() {
    for group_size in [3u64, 5] {
        let (encodes, bytes, sends) = run_group(group_size as u32);
        assert!(encodes > 0, "encode counter must be wired up");
        assert!(
            bytes >= CALLS * PAYLOAD as u64,
            "bytes_encoded ({bytes}) must cover at least the data payloads"
        );
        // Per-recipient encoding would make every send its own encode
        // (encodes == sends). Encode-once leaves a deficit of R-1 per
        // fan-out to R recipients; the CALLS data multicasts alone (each
        // reaching group_size - 1 peers) guarantee this floor.
        let deficit = sends
            .checked_sub(encodes)
            .expect("cannot encode more often than we send");
        assert!(
            deficit >= CALLS * (group_size - 2),
            "group of {group_size}: deficit {deficit} < {} — multicasts \
             are being re-encoded per recipient",
            CALLS * (group_size - 2)
        );
    }
}
