//! A minimal naming service — the CORBA NameService stand-in.
//!
//! One node hosts a [`NameServer`] servant under the well-known key
//! [`NAME_SERVICE_KEY`]; other nodes use the [`NamingClient`] helpers to
//! marshal `bind`/`resolve`/`unbind` requests against it. The runnable
//! examples use this to discover group members without hard-wiring
//! references.

use bytes::Bytes;

use crate::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};
use crate::ior::{ObjectKey, ObjectRef};
use crate::servant::{Servant, ServantError};
use std::collections::BTreeMap;

/// The well-known object key the name server is activated under.
pub const NAME_SERVICE_KEY: &str = "NameService";

/// Operation names understood by the [`NameServer`].
pub mod ops {
    /// `bind(name: string, obj: ObjectRef)` — registers a reference.
    pub const BIND: &str = "bind";
    /// `resolve(name: string) -> Option<ObjectRef>`.
    pub const RESOLVE: &str = "resolve";
    /// `unbind(name: string) -> bool` (whether the name existed).
    pub const UNBIND: &str = "unbind";
    /// `list() -> Vec<String>` — all bound names, sorted.
    pub const LIST: &str = "list";
}

/// The name server servant: a sorted name → reference table.
#[derive(Debug, Default)]
pub struct NameServer {
    bindings: BTreeMap<String, ObjectRef>,
}

impl NameServer {
    /// Creates an empty name server.
    #[must_use]
    pub fn new() -> Self {
        NameServer::default()
    }

    /// Number of bound names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no names are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl Servant for NameServer {
    fn dispatch(&mut self, operation: &str, args: &[u8]) -> Result<Bytes, ServantError> {
        let mut dec = CdrDecoder::new(args);
        let malformed = |_e: CdrError| ServantError::User(Bytes::from_static(b"malformed args"));
        match operation {
            ops::BIND => {
                let name = dec.read_string().map_err(malformed)?;
                let obj = ObjectRef::decode(&mut dec).map_err(malformed)?;
                self.bindings.insert(name, obj);
                Ok(Bytes::new())
            }
            ops::RESOLVE => {
                let name = dec.read_string().map_err(malformed)?;
                let mut enc = CdrEncoder::new();
                enc.write(&self.bindings.get(&name).cloned());
                Ok(enc.finish())
            }
            ops::UNBIND => {
                let name = dec.read_string().map_err(malformed)?;
                let existed = self.bindings.remove(&name).is_some();
                let mut enc = CdrEncoder::new();
                enc.write_bool(existed);
                Ok(enc.finish())
            }
            ops::LIST => {
                let names: Vec<String> = self.bindings.keys().cloned().collect();
                let mut enc = CdrEncoder::new();
                enc.write(&names);
                Ok(enc.finish())
            }
            other => Err(ServantError::BadOperation(other.to_owned())),
        }
    }
}

/// Marshalling helpers for talking to a [`NameServer`].
#[derive(Debug)]
pub struct NamingClient;

impl NamingClient {
    /// The reference of the name server on `node`.
    #[must_use]
    pub fn server_ref(node: newtop_net::site::NodeId) -> ObjectRef {
        ObjectRef::new(node, NAME_SERVICE_KEY)
    }

    /// Marshals the arguments of a `bind` call.
    #[must_use]
    pub fn encode_bind(name: &str, obj: &ObjectRef) -> Bytes {
        let mut enc = CdrEncoder::new();
        enc.write_string(name);
        obj.encode(&mut enc);
        enc.finish()
    }

    /// Marshals the arguments of a `resolve` call.
    #[must_use]
    pub fn encode_resolve(name: &str) -> Bytes {
        let mut enc = CdrEncoder::new();
        enc.write_string(name);
        enc.finish()
    }

    /// Marshals the arguments of an `unbind` call.
    #[must_use]
    pub fn encode_unbind(name: &str) -> Bytes {
        Self::encode_resolve(name)
    }

    /// Unmarshals a `resolve` reply.
    ///
    /// # Errors
    ///
    /// Returns a [`CdrError`] for a malformed reply body.
    pub fn decode_resolve_reply(body: &[u8]) -> Result<Option<ObjectRef>, CdrError> {
        Option::<ObjectRef>::from_cdr(body)
    }

    /// Unmarshals an `unbind` reply.
    ///
    /// # Errors
    ///
    /// Returns a [`CdrError`] for a malformed reply body.
    pub fn decode_unbind_reply(body: &[u8]) -> Result<bool, CdrError> {
        bool::from_cdr(body)
    }

    /// Unmarshals a `list` reply.
    ///
    /// # Errors
    ///
    /// Returns a [`CdrError`] for a malformed reply body.
    pub fn decode_list_reply(body: &[u8]) -> Result<Vec<String>, CdrError> {
        Vec::<String>::from_cdr(body)
    }
}

/// Convenience: the default key under which examples activate application
/// servants found through the name service.
#[must_use]
pub fn well_known_key(name: &str) -> ObjectKey {
    ObjectKey::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_net::site::NodeId;

    fn obj(n: u32) -> ObjectRef {
        ObjectRef::new(NodeId::from_index(n), "svc")
    }

    #[test]
    fn bind_resolve_unbind_cycle() {
        let mut ns = NameServer::new();
        assert!(ns.is_empty());

        let r = ns
            .dispatch(ops::BIND, &NamingClient::encode_bind("bank", &obj(3)))
            .unwrap();
        assert!(r.is_empty());
        assert_eq!(ns.len(), 1);

        let r = ns
            .dispatch(ops::RESOLVE, &NamingClient::encode_resolve("bank"))
            .unwrap();
        assert_eq!(
            NamingClient::decode_resolve_reply(&r).unwrap(),
            Some(obj(3))
        );

        let r = ns
            .dispatch(ops::UNBIND, &NamingClient::encode_unbind("bank"))
            .unwrap();
        assert!(NamingClient::decode_unbind_reply(&r).unwrap());
        let r = ns
            .dispatch(ops::UNBIND, &NamingClient::encode_unbind("bank"))
            .unwrap();
        assert!(!NamingClient::decode_unbind_reply(&r).unwrap());
    }

    #[test]
    fn resolve_missing_is_none() {
        let mut ns = NameServer::new();
        let r = ns
            .dispatch(ops::RESOLVE, &NamingClient::encode_resolve("ghost"))
            .unwrap();
        assert_eq!(NamingClient::decode_resolve_reply(&r).unwrap(), None);
    }

    #[test]
    fn rebinding_replaces() {
        let mut ns = NameServer::new();
        ns.dispatch(ops::BIND, &NamingClient::encode_bind("a", &obj(1)))
            .unwrap();
        ns.dispatch(ops::BIND, &NamingClient::encode_bind("a", &obj(2)))
            .unwrap();
        let r = ns
            .dispatch(ops::RESOLVE, &NamingClient::encode_resolve("a"))
            .unwrap();
        assert_eq!(
            NamingClient::decode_resolve_reply(&r).unwrap(),
            Some(obj(2))
        );
    }

    #[test]
    fn list_is_sorted() {
        let mut ns = NameServer::new();
        for name in ["zeta", "alpha", "mid"] {
            ns.dispatch(ops::BIND, &NamingClient::encode_bind(name, &obj(1)))
                .unwrap();
        }
        let r = ns.dispatch(ops::LIST, &[]).unwrap();
        assert_eq!(
            NamingClient::decode_list_reply(&r).unwrap(),
            vec!["alpha".to_owned(), "mid".to_owned(), "zeta".to_owned()]
        );
    }

    #[test]
    fn malformed_args_are_user_exceptions() {
        let mut ns = NameServer::new();
        let err = ns.dispatch(ops::BIND, &[1, 2]).unwrap_err();
        assert!(matches!(err, ServantError::User(_)));
    }

    #[test]
    fn unknown_op_is_bad_operation() {
        let mut ns = NameServer::new();
        assert!(matches!(
            ns.dispatch("destroy", &[]).unwrap_err(),
            ServantError::BadOperation(_)
        ));
    }
}
