//! Crash recovery: replaying snapshot + log into a usable state.
//!
//! [`replay`] folds a node's durable bytes — the framed
//! [`NodeSnapshot`](crate::snapshot::NodeSnapshot), if one was
//! installed, followed by every synced [`LogRecord`] — into a
//! [`RecoveredState`]: per group, the configuration to rejoin with, the
//! last installed view (whose members are the rejoin contacts) and the
//! full delivery history. The history length is the group's
//! *contiguous-ack floor*: on a totally ordered stream every member
//! delivers the same prefix, so a rejoining node only needs the suffix
//! beyond its floor — the delta the state-transfer protocol ships.

use std::collections::BTreeMap;

use newtop::directory::GroupRecord;
use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_gcs::view::View;
use newtop_net::site::NodeId;

use crate::log::{read_all, read_frame, DeliveredRec, LogError, LogRecord};
use crate::snapshot::{GroupSnapshot, NodeSnapshot};

/// One group's recovered state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredGroup {
    /// Configuration to rejoin with.
    pub config: GroupConfig,
    /// Membership known at creation (empty for a join).
    pub members_at_create: Vec<NodeId>,
    /// The last view installed before the crash, if any.
    pub last_view: Option<View>,
    /// Every delivery made before the crash, in delivery order. Its
    /// length is the contiguous-ack floor for delta transfer.
    pub history: Vec<DeliveredRec>,
}

/// Everything a cold-restarting node can reconstruct from disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredState {
    /// Per-group state.
    pub groups: BTreeMap<GroupId, RecoveredGroup>,
    /// The directory record table (directory members only).
    pub dir: Vec<GroupRecord>,
    /// Log records replayed beyond the snapshot (the incremental cost a
    /// snapshot saves; EXPERIMENTS.md reports this).
    pub log_records_replayed: u64,
    /// Whether a snapshot seeded the replay.
    pub from_snapshot: bool,
}

impl RecoveredState {
    /// The delta-transfer floor for `group`: deliveries already held.
    #[must_use]
    pub fn floor(&self, group: &GroupId) -> u64 {
        self.groups.get(group).map_or(0, |g| g.history.len() as u64)
    }

    /// Materialises the state as a snapshot (the compaction step).
    #[must_use]
    pub fn into_snapshot(self) -> NodeSnapshot {
        NodeSnapshot {
            groups: self
                .groups
                .into_iter()
                .map(|(group, g)| GroupSnapshot {
                    group,
                    config: g.config,
                    members_at_create: g.members_at_create,
                    last_view: g.last_view,
                    history: g.history,
                })
                .collect(),
            dir: self.dir,
        }
    }

    fn apply(&mut self, record: LogRecord) {
        match record {
            LogRecord::Created {
                group,
                config,
                members,
            } => {
                self.groups
                    .entry(group)
                    .and_modify(|g| {
                        g.config = config.clone();
                    })
                    .or_insert_with(|| RecoveredGroup {
                        config,
                        members_at_create: members,
                        last_view: None,
                        history: Vec::new(),
                    });
            }
            LogRecord::Delivered { group, rec } => {
                if let Some(g) = self.groups.get_mut(&group) {
                    g.history.push(rec);
                }
            }
            LogRecord::ViewInstalled { group, view } => {
                if let Some(g) = self.groups.get_mut(&group) {
                    g.last_view = Some(view);
                }
            }
            LogRecord::DirRecord { record } => {
                match self.dir.iter_mut().find(|r| r.name == record.name) {
                    Some(existing) => {
                        if record.view >= existing.view {
                            *existing = record;
                        }
                    }
                    None => self.dir.push(record),
                }
            }
        }
    }
}

/// Replays a framed snapshot (if any) and a framed log into state.
///
/// # Errors
///
/// Any [`LogError`] from the snapshot frame or a log frame.
pub fn replay(snapshot: Option<&[u8]>, log: &[u8]) -> Result<RecoveredState, LogError> {
    let mut state = RecoveredState::default();
    if let Some(framed) = snapshot {
        let (snap, _) = read_frame::<NodeSnapshot>(framed)?;
        state.from_snapshot = true;
        state.dir = snap.dir;
        for g in snap.groups {
            state.groups.insert(
                g.group.clone(),
                RecoveredGroup {
                    config: g.config,
                    members_at_create: g.members_at_create,
                    last_view: g.last_view,
                    history: g.history,
                },
            );
        }
    }
    for record in read_all::<LogRecord>(log)? {
        state.apply(record);
        state.log_records_replayed += 1;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::append_frame;
    use bytes::Bytes;
    use newtop_gcs::group::DeliveryOrder;
    use newtop_gcs::view::ViewId;

    #[test]
    fn replay_folds_log_over_snapshot() {
        let ga = GroupId::new("ga");
        let me = NodeId::from_index(0);
        let rec = |n: u64| DeliveredRec {
            sender: me,
            order: DeliveryOrder::Total,
            lamport: n,
            payload: Bytes::from(format!("m{n}")),
        };
        let snap = NodeSnapshot {
            groups: vec![GroupSnapshot {
                group: ga.clone(),
                config: GroupConfig::peer(),
                members_at_create: vec![me],
                last_view: Some(View::new(ga.clone(), ViewId(1), vec![me])),
                history: vec![rec(1), rec(2)],
            }],
            dir: Vec::new(),
        };
        let mut snap_buf = Vec::new();
        append_frame(&mut snap_buf, &snap);
        let mut log_buf = Vec::new();
        append_frame(
            &mut log_buf,
            &LogRecord::Delivered {
                group: ga.clone(),
                rec: rec(3),
            },
        );
        append_frame(
            &mut log_buf,
            &LogRecord::ViewInstalled {
                group: ga.clone(),
                view: View::new(ga.clone(), ViewId(2), vec![me]),
            },
        );
        let state = replay(Some(&snap_buf), &log_buf).unwrap();
        assert!(state.from_snapshot);
        assert_eq!(state.log_records_replayed, 2);
        assert_eq!(state.floor(&ga), 3);
        let g = &state.groups[&ga];
        assert_eq!(g.history.len(), 3);
        assert_eq!(g.last_view.as_ref().unwrap().id(), ViewId(2));
    }

    #[test]
    fn corrupt_log_surfaces_an_error() {
        let ga = GroupId::new("ga");
        let mut log_buf = Vec::new();
        append_frame(
            &mut log_buf,
            &LogRecord::Created {
                group: ga,
                config: GroupConfig::peer(),
                members: Vec::new(),
            },
        );
        let last = log_buf.len() - 1;
        log_buf[last] ^= 0xFF;
        assert!(replay(None, &log_buf).is_err());
    }
}
