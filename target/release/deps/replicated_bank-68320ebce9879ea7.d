/root/repo/target/release/deps/replicated_bank-68320ebce9879ea7.d: examples/src/bin/replicated_bank.rs

/root/repo/target/release/deps/replicated_bank-68320ebce9879ea7: examples/src/bin/replicated_bank.rs

examples/src/bin/replicated_bank.rs:
