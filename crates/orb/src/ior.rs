//! Object references (IORs) and object group references (IOGRs).
//!
//! An [`ObjectRef`] locates one servant: the node that hosts it plus its
//! key within that node's object adapter — a miniature Interoperable
//! Object Reference. A [`GroupObjectRef`] embeds several member IORs in a
//! single reference with a designated primary, mirroring the IOGR of the
//! CORBA fault-tolerance specification the paper anticipates (§2.2): the
//! ORB tries the primary first and fails over to the remaining members,
//! which is exactly the transparent open-group rebinding hook NewTop
//! exploits.

use std::fmt;

use crate::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};
use newtop_net::site::NodeId;

/// The key of an object within a node's object adapter.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectKey(String);

impl ObjectKey {
    /// Creates a key from a name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ObjectKey(name.into())
    }

    /// The key as a string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> Self {
        ObjectKey::new(s)
    }
}

impl From<String> for ObjectKey {
    fn from(s: String) -> Self {
        ObjectKey(s)
    }
}

impl CdrEncode for ObjectKey {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_string(&self.0);
    }
}

impl CdrDecode for ObjectKey {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(ObjectKey(dec.read_string()?))
    }
}

/// A reference to a single remote object: node + object key.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectRef {
    /// The node hosting the servant.
    pub node: NodeId,
    /// The servant's key within that node's adapter.
    pub key: ObjectKey,
}

impl ObjectRef {
    /// Creates a reference.
    #[must_use]
    pub fn new(node: NodeId, key: impl Into<ObjectKey>) -> Self {
        ObjectRef {
            node,
            key: key.into(),
        }
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.key, self.node)
    }
}

impl CdrEncode for ObjectRef {
    fn encode(&self, enc: &mut CdrEncoder) {
        enc.write_u32(self.node.index());
        self.key.encode(enc);
    }
}

impl CdrDecode for ObjectRef {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let node = NodeId::from_index(dec.read_u32()?);
        let key = ObjectKey::decode(dec)?;
        Ok(ObjectRef { node, key })
    }
}

/// An interoperable object *group* reference: the member IORs of a group
/// embedded in one reference, with a primary to try first.
///
/// ```
/// use newtop_orb::ior::{GroupObjectRef, ObjectRef};
/// use newtop_net::site::NodeId;
///
/// let members = vec![
///     ObjectRef::new(NodeId::from_index(0), "svc"),
///     ObjectRef::new(NodeId::from_index(1), "svc"),
/// ];
/// let mut iogr = GroupObjectRef::new(members).unwrap();
/// let first = iogr.primary().clone();
/// let next = iogr.fail_over().unwrap().clone();
/// assert_ne!(first, next);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupObjectRef {
    members: Vec<ObjectRef>,
    primary: usize,
}

impl GroupObjectRef {
    /// Creates a group reference with the first member as primary.
    ///
    /// Returns `None` for an empty member list.
    #[must_use]
    pub fn new(members: Vec<ObjectRef>) -> Option<Self> {
        if members.is_empty() {
            return None;
        }
        Some(GroupObjectRef {
            members,
            primary: 0,
        })
    }

    /// All member references, in profile order.
    #[must_use]
    pub fn members(&self) -> &[ObjectRef] {
        &self.members
    }

    /// The member the ORB should try first.
    #[must_use]
    pub fn primary(&self) -> &ObjectRef {
        &self.members[self.primary]
    }

    /// Marks the current primary failed and advances to the next member,
    /// returning it — or `None` when every member has been tried since the
    /// last [`Self::reset`].
    pub fn fail_over(&mut self) -> Option<&ObjectRef> {
        if self.primary + 1 >= self.members.len() {
            return None;
        }
        self.primary += 1;
        Some(&self.members[self.primary])
    }

    /// Makes the first member primary again (e.g. after the group has been
    /// repaired).
    pub fn reset(&mut self) {
        self.primary = 0;
    }

    /// Number of member profiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: group references hold at least one member.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for GroupObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group[")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == self.primary {
                write!(f, "*{m}")?;
            } else {
                write!(f, "{m}")?;
            }
        }
        write!(f, "]")
    }
}

impl CdrEncode for GroupObjectRef {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.members.encode(enc);
        enc.write_u32(self.primary as u32);
    }
}

impl CdrDecode for GroupObjectRef {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        let members: Vec<ObjectRef> = Vec::decode(dec)?;
        let primary = dec.read_u32()? as usize;
        if members.is_empty() || primary >= members.len() {
            return Err(CdrError::BadDiscriminant(primary as u32));
        }
        Ok(GroupObjectRef { members, primary })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u32) -> ObjectRef {
        ObjectRef::new(NodeId::from_index(n), format!("obj{n}").as_str())
    }

    #[test]
    fn object_ref_round_trip() {
        let r = obj(3);
        let b = r.to_cdr();
        assert_eq!(ObjectRef::from_cdr(&b).unwrap(), r);
    }

    #[test]
    fn display_forms() {
        assert_eq!(obj(2).to_string(), "obj2@n2");
        let g = GroupObjectRef::new(vec![obj(0), obj(1)]).unwrap();
        assert_eq!(g.to_string(), "group[*obj0@n0, obj1@n1]");
    }

    #[test]
    fn group_ref_requires_members() {
        assert!(GroupObjectRef::new(vec![]).is_none());
    }

    #[test]
    fn fail_over_walks_all_members_then_stops() {
        let mut g = GroupObjectRef::new(vec![obj(0), obj(1), obj(2)]).unwrap();
        assert_eq!(g.primary().node.index(), 0);
        assert_eq!(g.fail_over().unwrap().node.index(), 1);
        assert_eq!(g.fail_over().unwrap().node.index(), 2);
        assert!(g.fail_over().is_none());
        g.reset();
        assert_eq!(g.primary().node.index(), 0);
    }

    #[test]
    fn group_ref_round_trip_preserves_primary() {
        let mut g = GroupObjectRef::new(vec![obj(0), obj(1)]).unwrap();
        g.fail_over();
        let b = g.to_cdr();
        let g2 = GroupObjectRef::from_cdr(&b).unwrap();
        assert_eq!(g2.primary().node.index(), 1);
    }

    #[test]
    fn corrupt_group_ref_is_rejected() {
        let g = GroupObjectRef::new(vec![obj(0)]).unwrap();
        let mut enc = CdrEncoder::new();
        g.members.encode(&mut enc);
        enc.write_u32(17); // primary out of range
        assert!(GroupObjectRef::from_cdr(&enc.finish()).is_err());
    }
}
