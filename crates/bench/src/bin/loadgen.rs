//! Closed- and open-loop load generator for the flow-control subsystem.
//!
//! Drives the NewTop stack in four configurations and reports, for each,
//! the numbers the overload-protection acceptance criteria track —
//! throughput, latency percentiles, flow sheds, and peak queue depth:
//!
//! * **closed/sim** — a closed-loop client sweep over the deterministic
//!   simulator ([`run_request_reply_latencies`]); finds the knee
//!   (highest throughput across the sweep).
//! * **open/sim** — a fixed-rate multicast storm against a 4-member peer
//!   group while every node's CPU costs are inflated (the `saturate`
//!   fault), at the configured rate and at 2× that rate. The 2× point
//!   must shed (non-zero `flow.shed`) while peak in-flight depth stays
//!   within the send window — bounded memory under overload.
//! * **closed/threaded** — sequential wall-clock invocations against a
//!   replicated service over real TCP sockets and the threaded runtime.
//! * **open/threaded** — a fixed-rate `peer_send` storm over the
//!   threaded runtime's bounded queues; deliveries are drained
//!   concurrently so receive latency includes any queueing.
//!
//! Flags: `--smoke` (short run + sanity assertions, used by
//! `scripts/check.sh`), `--json` (machine-readable report, used by
//! `scripts/bench_snapshot.sh`), `--seed N`, `--rate N` (open-loop
//! baseline, msgs/s per member), `--duration-ms N`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::Bytes;

use newtop::nso::{BindOptions, NsoOutput};
use newtop_bench::bench_seed;
use newtop_flow::FlowConfig;
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId, OrderProtocol};
use newtop_gcs::member::GcsOutput;
use newtop_gcs::testkit::GcsHarness;
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::SimConfig;
use newtop_net::site::{NodeId, Site};
use newtop_net::stats::Histogram;
use newtop_net::tcp::TcpEndpoint;
use newtop_net::time::SimTime;
use newtop_rt::{NodeHandle, NodeRuntime, RuntimeOptions};
use newtop_workloads::scenario::{
    run_multi_group, run_request_reply_latencies, BindingPolicy, MultiGroupScenario, Placement,
    RequestReplyScenario,
};

/// How many members the open-loop simulator group has.
const OPEN_SIM_MEMBERS: usize = 4;
/// CPU inflation applied during the open-loop storm window (the same
/// mechanism as the fault DSL's `saturate` clause).
const OPEN_SIM_FACTOR: f64 = 3.0;

struct Args {
    smoke: bool,
    json: bool,
    seed: u64,
    /// Open-loop baseline rate, msgs/s per member.
    rate: u64,
    /// Open-loop storm window / threaded storm duration.
    duration_ms: u64,
    /// Closed-loop client sweep.
    clients: Vec<usize>,
    /// Shard count for the multi-group run and the threaded runtimes.
    shards: usize,
    /// Independent services in the multi-group run.
    groups: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        json: false,
        seed: bench_seed(),
        rate: 800,
        duration_ms: 1000,
        clients: vec![1, 2, 4, 8],
        shards: 4,
        groups: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs an integer value"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => args.json = true,
            "--seed" => args.seed = value("--seed"),
            "--rate" => args.rate = value("--rate"),
            "--duration-ms" => args.duration_ms = value("--duration-ms"),
            "--shards" => args.shards = value("--shards") as usize,
            "--groups" => args.groups = value("--groups") as usize,
            "--help" | "-h" => {
                println!(
                    "loadgen [--smoke] [--json] [--seed N] [--rate N] [--duration-ms N] \
                     [--shards N] [--groups N]\n\
                     Closed/open-loop load generator; see the crate docs."
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    if args.smoke {
        args.duration_ms = args.duration_ms.min(400);
        args.clients = vec![1, 4];
    }
    args
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn quantiles(h: &mut Histogram) -> (f64, f64, f64) {
    (
        ms(h.quantile(0.50)),
        ms(h.quantile(0.95)),
        ms(h.quantile(0.99)),
    )
}

/// One point of the closed-loop simulator sweep.
struct ClosedSimPoint {
    clients: usize,
    throughput: f64,
    completed: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn closed_loop_sim(args: &Args) -> Vec<ClosedSimPoint> {
    args.clients
        .iter()
        .map(|&clients| {
            // Directory-driven binding (PR 9): clients resolve the
            // service by name through the replicated directory and form
            // a closed binding to the resolved member set, so every
            // loadgen run exercises the resolve path end to end.
            let mut scenario = RequestReplyScenario {
                binding: BindingPolicy::Directory,
                ..RequestReplyScenario::paper_default(Placement::AllLan, clients, args.seed)
            };
            if args.smoke {
                scenario.duration = Duration::from_millis(1200);
            }
            let (result, latencies) = run_request_reply_latencies(&scenario);
            let mut h = Histogram::new();
            for d in latencies {
                h.record(d);
            }
            let (p50_ms, p95_ms, p99_ms) = quantiles(&mut h);
            ClosedSimPoint {
                clients,
                throughput: result.throughput,
                completed: result.completed,
                p50_ms,
                p95_ms,
                p99_ms,
            }
        })
        .collect()
}

/// One open-loop simulator storm (rate in msgs/s per member).
struct OpenSimPoint {
    rate: u64,
    offered: u64,
    admitted: u64,
    delivered: u64,
    shed: u64,
    peak_depth: i64,
    window: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn open_loop_sim(args: &Args, rate: u64) -> OpenSimPoint {
    let mut cfg = SimConfig::lan(args.seed);
    cfg.drop_probability = 0.0;
    let mut h = GcsHarness::new(cfg);
    let roster = h.add_nodes(Site::Lan, OPEN_SIM_MEMBERS);
    let group = GroupId::new("loadgen");
    let config = GroupConfig::peer()
        .with_ordering(OrderProtocol::Symmetric)
        .with_time_silence(Duration::from_millis(20));
    h.create_group(SimTime::from_millis(1), &group, &config, &roster);

    // The storm: every member multicasts at `rate` msgs/s for the whole
    // window while CPU costs are inflated, so acks lag and the credit
    // window fills — exactly the regime the flow controller bounds.
    let storm_from = 50u64;
    let storm_until = storm_from + args.duration_ms;
    h.sim
        .schedule_set_service_factor(SimTime::from_millis(storm_from), None, OPEN_SIM_FACTOR);
    h.sim
        .schedule_set_service_factor(SimTime::from_millis(storm_until), None, 1.0);
    let gap_us = 1_000_000 / rate.max(1);
    let mut scheduled: HashMap<String, SimTime> = HashMap::new();
    let mut offered = 0u64;
    for (k, &node) in roster.iter().enumerate() {
        let mut at_us = storm_from * 1000 + (k as u64) * 97;
        let mut i = 0u64;
        while at_us < storm_until * 1000 {
            let at = SimTime::from_nanos(at_us * 1000);
            let payload = format!("{node}/{i}");
            h.multicast(at, node, &group, DeliveryOrder::Total, payload.clone());
            scheduled.insert(payload, at);
            offered += 1;
            at_us += gap_us;
            i += 1;
        }
    }
    // Let the backlog drain after the inflation lifts.
    h.run_until(SimTime::from_millis(storm_until + 3000));

    let mut shed = 0u64;
    let mut peak_depth = 0i64;
    let mut delivered = 0u64;
    let mut lat = Histogram::new();
    for &node in &roster {
        let n = h.node(node);
        for obs in n.gcs().observabilities() {
            let metrics = &obs.metrics;
            shed += metrics.counter("flow.shed");
            peak_depth = peak_depth.max(metrics.gauge("flow.queue_depth_peak").unwrap_or(0));
        }
        for (at, out) in &n.outputs {
            if let GcsOutput::Delivered { payload, .. } = out {
                delivered += 1;
                if let Some(&sent) = scheduled.get(&String::from_utf8_lossy(payload).into_owned()) {
                    if *at >= sent {
                        lat.record(Duration::from_nanos(
                            at.as_nanos().saturating_sub(sent.as_nanos()),
                        ));
                    }
                }
            }
        }
    }
    let window = h
        .node(roster[0])
        .gcs()
        .flow_of(&group)
        .map_or(0, |f| f.window());
    let (p50_ms, p95_ms, p99_ms) = quantiles(&mut lat);
    OpenSimPoint {
        rate,
        offered,
        admitted: offered - shed,
        delivered,
        shed,
        peak_depth,
        window,
        p50_ms,
        p95_ms,
        p99_ms,
    }
}

/// Closed-loop wall-clock invocations over real TCP sockets.
struct ClosedThreaded {
    iters: u64,
    throughput: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    queue_peak: u64,
    queue_shed: u64,
}

fn closed_loop_threaded(args: &Args) -> ClosedThreaded {
    let iters: u64 = if args.smoke { 25 } else { 200 };
    let ids: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let mut endpoints = Vec::new();
    let mut rxs = Vec::new();
    for &id in &ids {
        let (tx, rx) = newtop_flow::queue::bounded(FlowConfig::default().queue_capacity);
        let ep = TcpEndpoint::bind(id, "127.0.0.1:0".parse().unwrap(), tx).expect("bind tcp");
        endpoints.push(ep);
        rxs.push(rx);
    }
    let addrs: Vec<_> = endpoints.iter().map(TcpEndpoint::local_addr).collect();
    for ep in &endpoints {
        for (&id, &addr) in ids.iter().zip(addrs.iter()) {
            ep.register_peer(id, addr);
        }
    }
    let nodes: Vec<NodeHandle> = endpoints
        .iter()
        .zip(rxs)
        .map(|(ep, rx)| NodeRuntime::spawn(ep.handle(), rx, runtime_options(args)))
        .collect();

    let servers = vec![ids[0], ids[1]];
    let group = GroupId::new("loadgen-tcp");
    for handle in &nodes[..servers.len()] {
        let group = group.clone();
        let members = servers.clone();
        handle.with_nso(move |nso, now, out| {
            nso.create_server_group(
                group.clone(),
                members,
                Replication::Active,
                OpenOptimisation::None,
                GroupConfig::request_reply(),
                now,
                out,
            )
            .expect("create group");
            nso.register_group_servant(
                group,
                Box::new(|op: &str, _: &[u8]| Bytes::from(op.to_owned())),
            );
        });
    }
    let client = &nodes[2];
    let g = group.clone();
    let first = servers[0];
    client.with_nso(move |nso, now, out| {
        nso.bind(g, BindOptions::open(first), now, out)
            .expect("bind");
    });
    let ready = client
        .wait_for_output(Duration::from_secs(15), |o| {
            matches!(o, NsoOutput::BindingReady { .. })
        })
        .expect("binding established");
    let NsoOutput::BindingReady { group: binding } = ready else {
        unreachable!()
    };

    let mut lat = Histogram::new();
    let start = Instant::now();
    for i in 0..iters {
        let call_start = Instant::now();
        let binding = binding.clone();
        client.with_nso(move |nso, now, out| {
            let binding = nso.handle_for(&binding).expect("binding handle");
            binding
                .invoke(
                    nso,
                    "ping",
                    Bytes::from(format!("{i}")),
                    ReplyMode::First,
                    now,
                    out,
                )
                .expect("invoke");
        });
        client
            .wait_for_output(Duration::from_secs(15), |o| {
                matches!(o, NsoOutput::InvocationComplete { .. })
            })
            .expect("invocation completed");
        lat.record(call_start.elapsed());
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = client.output_stats();
    let (p50_ms, p95_ms, p99_ms) = quantiles(&mut lat);
    let result = ClosedThreaded {
        iters,
        throughput: iters as f64 / secs,
        p50_ms,
        p95_ms,
        p99_ms,
        queue_peak: stats.peak_depth(),
        queue_shed: stats.shed(),
    };
    for n in nodes {
        n.shutdown();
    }
    for mut ep in endpoints {
        ep.shutdown();
    }
    result
}

/// Fixed-rate `peer_send` storm over the threaded runtime.
struct OpenThreaded {
    offered: u64,
    admitted: u64,
    delivered: u64,
    send_errors: u64,
    flow_shed: u64,
    queue_peak: u64,
    queue_capacity: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn open_loop_threaded(args: &Args) -> OpenThreaded {
    let net = newtop_net::channel::ChannelNetwork::new();
    let members: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let nodes: Vec<NodeHandle> = members
        .iter()
        .map(|&id| {
            let (transport, rx) = net.endpoint(id);
            NodeRuntime::spawn(transport, rx, runtime_options(args))
        })
        .collect();
    let group = GroupId::new("loadgen-peers");
    for handle in &nodes {
        let group = group.clone();
        let members = members.clone();
        handle.with_nso(move |nso, now, out| {
            nso.create_peer_group(
                group,
                members,
                GroupConfig::peer().with_time_silence(Duration::from_millis(20)),
                now,
                out,
            )
            .expect("create peer group");
        });
    }

    // Total offered load across the group: `rate` msgs/s, round-robin
    // over the members, for `duration_ms`.
    let offered = (args.rate * args.duration_ms / 1000).max(30);
    let gap = Duration::from_nanos(1_000_000_000 * args.duration_ms / 1000 / offered.max(1));
    let stamps = Mutex::new(vec![None::<Instant>; offered as usize]);
    let mut send_errors = 0u64;
    let mut lat = Histogram::new();
    let mut delivered = 0u64;
    std::thread::scope(|scope| {
        let collectors: Vec<_> = nodes
            .iter()
            .map(|handle| {
                let stamps = &stamps;
                scope.spawn(move || {
                    let mut h = Histogram::new();
                    let mut seen = 0u64;
                    // Each member delivers every admitted multicast; stop
                    // when deliveries dry up.
                    while let Some(NsoOutput::PeerDeliver { payload, .. }) = handle
                        .wait_for_output(Duration::from_secs(2), |o| {
                            matches!(o, NsoOutput::PeerDeliver { .. })
                        })
                    {
                        seen += 1;
                        let idx: usize = String::from_utf8_lossy(&payload)
                            .parse()
                            .expect("loadgen payload is its index");
                        if let Some(sent) = stamps.lock().unwrap()[idx] {
                            h.record(sent.elapsed());
                        }
                    }
                    (seen, h)
                })
            })
            .collect();

        for i in 0..offered {
            let handle = &nodes[(i % nodes.len() as u64) as usize];
            let group = group.clone();
            stamps.lock().unwrap()[i as usize] = Some(Instant::now());
            let ok = handle.with_nso(move |nso, now, out| {
                let Some(peer) = nso.handle_for(&group) else {
                    return false;
                };
                peer.send(
                    nso,
                    Bytes::from(format!("{i}")),
                    DeliveryOrder::Total,
                    now,
                    out,
                )
                .is_ok()
            });
            if !ok {
                send_errors += 1;
            }
            std::thread::sleep(gap);
        }
        for c in collectors {
            let (seen, h) = c.join().expect("collector thread");
            delivered += seen;
            lat.merge(&h);
        }
    });

    let mut flow_shed = 0u64;
    let mut queue_peak = 0u64;
    for handle in &nodes {
        flow_shed += handle.with_nso(|nso, _, _| nso.metrics().counter("flow.shed"));
        queue_peak = queue_peak.max(handle.output_stats().peak_depth());
    }
    let queue_capacity = nodes[0].output_stats().capacity();
    let (p50_ms, p95_ms, p99_ms) = quantiles(&mut lat);
    let result = OpenThreaded {
        offered,
        admitted: offered - send_errors,
        delivered,
        send_errors,
        flow_shed,
        queue_peak,
        queue_capacity,
        p50_ms,
        p95_ms,
        p99_ms,
    };
    for n in nodes {
        n.shutdown();
    }
    result
}

/// Runtime construction shared by the threaded modes: the configured
/// shard count with batching on.
fn runtime_options(args: &Args) -> RuntimeOptions {
    RuntimeOptions::new().with_shards(args.shards)
}

/// The multi-group sharded run: aggregate closed-loop throughput over
/// `--groups` independent services from hub clients bound to all of
/// them, at `--shards` shards with batching on.
struct MultiGroupPoint {
    groups: usize,
    hubs: usize,
    shards: usize,
    throughput: f64,
    completed: u64,
    duplicated: u32,
    batch_frames: u64,
    batch_msgs: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn multi_group_sim(args: &Args) -> MultiGroupPoint {
    let mut scenario = MultiGroupScenario {
        groups: args.groups,
        shards: args.shards,
        ..MultiGroupScenario::bench_default(args.seed)
    };
    if args.smoke {
        scenario.groups = scenario.groups.min(3);
        scenario.hubs = 4;
        scenario.duration = Duration::from_millis(1200);
    }
    let (result, latencies) = run_multi_group(&scenario);
    let mut h = Histogram::new();
    for d in latencies {
        h.record(d);
    }
    let (p50_ms, p95_ms, p99_ms) = quantiles(&mut h);
    MultiGroupPoint {
        groups: scenario.groups,
        hubs: scenario.hubs,
        shards: scenario.shards,
        throughput: result.throughput,
        completed: result.completed,
        duplicated: result.duplicated,
        batch_frames: result.batch_frames,
        batch_msgs: result.batch_msgs,
        p50_ms,
        p95_ms,
        p99_ms,
    }
}

fn main() {
    let args = parse_args();

    let closed_sim = closed_loop_sim(&args);
    let open_base = open_loop_sim(&args, args.rate);
    let open_2x = open_loop_sim(&args, args.rate * 2);
    let closed_t = closed_loop_threaded(&args);
    let open_t = open_loop_threaded(&args);
    let multi = multi_group_sim(&args);

    let knee = closed_sim
        .iter()
        .map(|p| p.throughput)
        .fold(0.0f64, f64::max);

    if args.json {
        println!("{{");
        println!("  \"seed\": {},", args.seed);
        println!("  \"smoke\": {},", args.smoke);
        println!("  \"closed_sim\": [");
        for (i, p) in closed_sim.iter().enumerate() {
            let sep = if i + 1 == closed_sim.len() { "" } else { "," };
            println!(
                "    {{\"clients\": {}, \"throughput_per_sec\": {:.1}, \"completed\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{sep}",
                p.clients, p.throughput, p.completed, p.p50_ms, p.p95_ms, p.p99_ms
            );
        }
        println!("  ],");
        println!("  \"closed_sim_knee_per_sec\": {knee:.1},");
        println!("  \"multi_group_sim\": {{");
        println!(
            "    \"groups\": {}, \"hubs\": {}, \"shards\": {}, \"batching\": true,",
            multi.groups, multi.hubs, multi.shards
        );
        println!(
            "    \"throughput_per_sec\": {:.1}, \"completed\": {},",
            multi.throughput, multi.completed
        );
        println!(
            "    \"batch_frames\": {}, \"batch_msgs\": {}, \"msgs_per_frame\": {:.2},",
            multi.batch_frames,
            multi.batch_msgs,
            multi.batch_msgs as f64 / multi.batch_frames.max(1) as f64
        );
        println!(
            "    \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}",
            multi.p50_ms, multi.p95_ms, multi.p99_ms
        );
        println!("  }},");
        for (name, p) in [("open_sim_1x", &open_base), ("open_sim_2x", &open_2x)] {
            println!("  \"{name}\": {{");
            println!("    \"rate_per_member_per_sec\": {},", p.rate);
            println!("    \"offered\": {},", p.offered);
            println!("    \"admitted\": {},", p.admitted);
            println!("    \"delivered\": {},", p.delivered);
            println!("    \"flow_shed\": {},", p.shed);
            println!("    \"peak_queue_depth\": {},", p.peak_depth);
            println!("    \"send_window\": {},", p.window);
            println!(
                "    \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}",
                p.p50_ms, p.p95_ms, p.p99_ms
            );
            println!("  }},");
        }
        println!("  \"closed_threaded_tcp\": {{");
        println!("    \"iters\": {},", closed_t.iters);
        println!("    \"throughput_per_sec\": {:.1},", closed_t.throughput);
        println!(
            "    \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3},",
            closed_t.p50_ms, closed_t.p95_ms, closed_t.p99_ms
        );
        println!("    \"output_queue_peak\": {},", closed_t.queue_peak);
        println!("    \"output_queue_shed\": {}", closed_t.queue_shed);
        println!("  }},");
        println!("  \"open_threaded\": {{");
        println!("    \"offered\": {},", open_t.offered);
        println!("    \"admitted\": {},", open_t.admitted);
        println!("    \"delivered\": {},", open_t.delivered);
        println!("    \"send_errors\": {},", open_t.send_errors);
        println!("    \"flow_shed\": {},", open_t.flow_shed);
        println!("    \"output_queue_peak\": {},", open_t.queue_peak);
        println!("    \"output_queue_capacity\": {},", open_t.queue_capacity);
        println!(
            "    \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}",
            open_t.p50_ms, open_t.p95_ms, open_t.p99_ms
        );
        println!("  }}");
        println!("}}");
    } else {
        println!("closed-loop / simulator (LAN, closed binding)");
        println!("  clients  throughput/s  completed   p50ms   p95ms   p99ms");
        for p in &closed_sim {
            println!(
                "  {:>7}  {:>12.1}  {:>9}  {:>6.2}  {:>6.2}  {:>6.2}",
                p.clients, p.throughput, p.completed, p.p50_ms, p.p95_ms, p.p99_ms
            );
        }
        println!("  knee: {knee:.1}/s");
        println!(
            "multi-group / simulator ({} services x3, {} hubs, {} shards, batching on)",
            multi.groups, multi.hubs, multi.shards
        );
        println!(
            "  {:.1}/s aggregate ({} completed), batch {:.2} msgs/frame, p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms",
            multi.throughput,
            multi.completed,
            multi.batch_msgs as f64 / multi.batch_frames.max(1) as f64,
            multi.p50_ms,
            multi.p95_ms,
            multi.p99_ms
        );
        println!(
            "open-loop / simulator ({OPEN_SIM_MEMBERS} members, x{OPEN_SIM_FACTOR} CPU inflation)"
        );
        println!(
            "  rate/member  offered  delivered  shed  peak-depth  window   p50ms   p95ms   p99ms"
        );
        for p in [&open_base, &open_2x] {
            println!(
                "  {:>11}  {:>7}  {:>9}  {:>4}  {:>10}  {:>6}  {:>6.2}  {:>6.2}  {:>6.2}",
                p.rate,
                p.offered,
                p.delivered,
                p.shed,
                p.peak_depth,
                p.window,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms
            );
        }
        println!("closed-loop / threaded runtime over TCP");
        println!(
            "  {} calls, {:.1}/s, p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, output queue peak {} shed {}",
            closed_t.iters,
            closed_t.throughput,
            closed_t.p50_ms,
            closed_t.p95_ms,
            closed_t.p99_ms,
            closed_t.queue_peak,
            closed_t.queue_shed
        );
        println!("open-loop / threaded runtime (peer storm)");
        println!(
            "  offered {} admitted {} delivered {} flow.shed {} queue peak {}/{} p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms",
            open_t.offered,
            open_t.admitted,
            open_t.delivered,
            open_t.flow_shed,
            open_t.queue_peak,
            open_t.queue_capacity,
            open_t.p50_ms,
            open_t.p95_ms,
            open_t.p99_ms
        );
    }

    if args.smoke {
        // Sanity gates for CI: the system made progress everywhere, the
        // 2x-saturated open-loop run shed load, and every queue stayed
        // within its configured bound.
        assert!(
            closed_sim.iter().all(|p| p.completed > 0),
            "closed-loop simulator run completed nothing"
        );
        assert!(
            open_2x.shed > 0,
            "2x-saturated open-loop run never shed: flow control not engaging"
        );
        assert!(
            open_2x.peak_depth <= open_2x.window as i64,
            "peak in-flight depth {} exceeded the send window {}",
            open_2x.peak_depth,
            open_2x.window
        );
        assert!(open_2x.delivered > 0, "saturated run delivered nothing");
        assert!(closed_t.iters > 0 && closed_t.p50_ms > 0.0);
        assert!(
            multi.completed > 0 && multi.duplicated == 0,
            "multi-group run must make duplicate-free progress \
             (completed {}, duplicated {})",
            multi.completed,
            multi.duplicated
        );
        assert!(
            multi.batch_frames > 0,
            "batching was on but no batch frames were sent"
        );
        assert!(
            open_t.delivered >= open_t.admitted,
            "threaded peers delivered {} < admitted {}",
            open_t.delivered,
            open_t.admitted
        );
        assert!(
            open_t.queue_peak <= open_t.queue_capacity as u64,
            "output queue peak {} exceeded capacity {}",
            open_t.queue_peak,
            open_t.queue_capacity
        );
        eprintln!("loadgen --smoke: all sanity gates passed");
    }
}
