/root/repo/target/debug/deps/newtop_orb-6f9b61f2527c66d0.d: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

/root/repo/target/debug/deps/libnewtop_orb-6f9b61f2527c66d0.rlib: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

/root/repo/target/debug/deps/libnewtop_orb-6f9b61f2527c66d0.rmeta: crates/orb/src/lib.rs crates/orb/src/cdr.rs crates/orb/src/giop.rs crates/orb/src/ior.rs crates/orb/src/naming.rs crates/orb/src/orb.rs crates/orb/src/servant.rs

crates/orb/src/lib.rs:
crates/orb/src/cdr.rs:
crates/orb/src/giop.rs:
crates/orb/src/ior.rs:
crates/orb/src/naming.rs:
crates/orb/src/orb.rs:
crates/orb/src/servant.rs:
