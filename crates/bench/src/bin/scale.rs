//! Geo-distributed capacity sweep over the million-client scale model.
//!
//! For every cell of {sym, asym} × {closed, open, restricted} ×
//! {first, all} × region-matrix, binary-searches the largest modeled
//! client population the configuration sustains at the p99 bound
//! (doubling ladder, then bisection — see `newtop_bench::scale`) and
//! prints the capacity table.
//!
//! Flags: `--smoke` (one small cell + sanity assertions, used by
//! `scripts/check.sh`), `--json` (the `BENCH_PR8.json` document, used
//! by `scripts/bench_snapshot.sh`), `--markdown` (the `EXPERIMENTS.md`
//! capacity table), `--seed N`, `--shards N`, `--p99-bound-ms N`,
//! `--duration-ms N`.

use newtop_bench::bench_seed;
use newtop_bench::scale::{render_json, render_markdown, run_sweep, sustainable, SweepConfig};
use std::time::Duration;

struct Args {
    smoke: bool,
    json: bool,
    markdown: bool,
    seed: u64,
    shards: usize,
    p99_bound_ms: u64,
    duration_ms: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        json: false,
        markdown: false,
        seed: bench_seed(),
        shards: 1,
        p99_bound_ms: 400,
        duration_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs an integer value"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => args.json = true,
            "--markdown" => args.markdown = true,
            "--seed" => args.seed = value("--seed"),
            "--shards" => args.shards = value("--shards") as usize,
            "--p99-bound-ms" => args.p99_bound_ms = value("--p99-bound-ms"),
            "--duration-ms" => args.duration_ms = Some(value("--duration-ms")),
            "--help" | "-h" => {
                println!(
                    "scale [--smoke] [--json] [--markdown] [--seed N] [--shards N] \
                     [--p99-bound-ms N] [--duration-ms N]\n\
                     Geo-distributed scale-model capacity sweep; see the crate docs."
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut cfg = if args.smoke {
        SweepConfig::smoke(args.seed)
    } else {
        SweepConfig::full(args.seed)
    };
    cfg.shards = args.shards;
    cfg.p99_bound = Duration::from_millis(args.p99_bound_ms);
    if let Some(ms) = args.duration_ms {
        cfg.duration = Duration::from_millis(ms);
    }

    let outcomes = run_sweep(&cfg);

    if args.json {
        print!("{}", render_json(&cfg, &outcomes));
    } else if args.markdown {
        print!("{}", render_markdown(&cfg, &outcomes));
    } else {
        println!(
            "scale-model capacity sweep (seed {}, shards {}, p99 bound {} ms)",
            cfg.seed, cfg.shards, args.p99_bound_ms
        );
        println!(
            "  {:<13} {:<5} {:<11} {:<6} {:>11} {:>10} {:>10} {:>9}",
            "region", "ord", "binding", "reply", "max clients", "offered/s", "goodput/s", "p99 ms"
        );
        for o in &outcomes {
            let r = &o.measured;
            println!(
                "  {:<13} {:<5} {:<11} {:<6} {:>11} {:>10.0} {:>10.0} {:>9.1}",
                o.spec.region.label(),
                o.spec.ordering_label(),
                o.spec.binding_label(),
                o.spec.mode_label(),
                o.capacity,
                r.offered_per_sec,
                r.goodput_per_sec,
                r.p99.as_secs_f64() * 1e3
            );
        }
        let best = outcomes.iter().max_by_key(|o| o.capacity);
        if let Some(b) = best {
            println!(
                "  best: {} clients ({} {} {} {})",
                b.capacity,
                b.spec.region.label(),
                b.spec.ordering_label(),
                b.spec.binding_label(),
                b.spec.mode_label()
            );
        }
    }

    if args.smoke {
        // CI gates: the search made progress, the small cell is
        // sustainable at its floor, and a re-run of the sweep from the
        // same seed reproduces the JSON byte for byte.
        assert!(!outcomes.is_empty(), "smoke sweep produced no cells");
        assert!(
            outcomes.iter().all(|o| o.probes > 0),
            "a cell ran zero probes"
        );
        assert!(
            outcomes.iter().any(|o| o.capacity >= cfg.start_clients),
            "no smoke cell sustained even the starting population"
        );
        for o in &outcomes {
            if o.capacity > 0 {
                assert!(
                    sustainable(&o.measured, cfg.p99_bound),
                    "recorded capacity measurement is not sustainable"
                );
            }
        }
        let replay = run_sweep(&cfg);
        assert_eq!(
            render_json(&cfg, &outcomes),
            render_json(&cfg, &replay),
            "same seed must reproduce the sweep byte for byte"
        );
        eprintln!("scale --smoke: all sanity gates passed");
    }
}
