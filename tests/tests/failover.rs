//! End-to-end failure-handling tests (§4.1 of the paper): request-manager
//! crashes with rebind-and-retry, closed-group failure masking, and
//! passive-replication promotion — all driven through the full NSO stack
//! on the deterministic simulator.

use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{GroupConfig, GroupId, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gid() -> GroupId {
    GroupId::new("svc")
}

/// A server whose executions are counted through a shared atomic, so
/// tests can prove retries are not re-executed.
struct CountingServer {
    members: Vec<NodeId>,
    replication: Replication,
    optimisation: OpenOptimisation,
    executions: Arc<AtomicU32>,
}

impl NsoApp for CountingServer {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gid(),
            self.members.clone(),
            self.replication,
            self.optimisation,
            GroupConfig {
                ordering: OrderProtocol::Asymmetric,
                time_silence: Duration::from_millis(20),
                ..GroupConfig::request_reply()
            },
            now,
            out,
        )
        .expect("server group");
        let count = Arc::clone(&self.executions);
        let me = nso.node().index();
        nso.register_group_servant(
            gid(),
            Box::new(move |op: &str, args: &[u8]| {
                count.fetch_add(1, AtomicOrdering::SeqCst);
                let mut body = format!("{op}@{me}:").into_bytes();
                body.extend_from_slice(args);
                Bytes::from(body)
            }),
        );
    }

    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

/// A client that keeps a numbered call stream going, rebinding on broken
/// bindings (the smart-proxy behaviour of §4.1).
struct RetryClient {
    servers: Vec<NodeId>,
    mode: ReplyMode,
    open: bool,
    manager_index: usize,
    total_calls: usize,
    issued: usize,
    completions: Vec<(u64, Vec<(NodeId, Bytes)>)>,
    rebinds: u32,
    binding: Option<GroupHandle>,
    issued_at: std::collections::HashMap<u64, SimTime>,
}

impl RetryClient {
    fn new(servers: Vec<NodeId>, mode: ReplyMode, open: bool, total_calls: usize) -> Self {
        RetryClient {
            servers,
            mode,
            open,
            manager_index: 0,
            total_calls,
            issued: 0,
            completions: Vec::new(),
            rebinds: 0,
            binding: None,
            issued_at: std::collections::HashMap::new(),
        }
    }

    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let opts = if self.open {
            let manager = self.servers[self.manager_index % self.servers.len()];
            BindOptions::open(manager)
        } else {
            BindOptions::closed(self.servers.clone())
        }
        .with_time_silence(Duration::from_millis(20));
        nso.bind(gid(), opts, now, out).expect("bind");
    }

    fn issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        if self.issued >= self.total_calls {
            return;
        }
        let Some(binding) = self.binding.clone() else {
            return;
        };
        if let Ok(call) = binding.invoke(
            nso,
            "work",
            Bytes::from(vec![self.issued as u8]),
            self.mode,
            now,
            out,
        ) {
            self.issued += 1;
            self.issued_at.insert(call.number, now);
        }
    }
}

const BIND_TAG: u64 = tags::APP_BASE;
const RETRY_TAG: u64 = tags::APP_BASE + 1;

impl NsoApp for RetryClient {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(Duration::from_millis(5), BIND_TAG);
        out.set_timer(Duration::from_millis(200), RETRY_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        match tag {
            BIND_TAG => self.bind(nso, now, out),
            _ => {
                // §4.1: client retries are standard app-level technique —
                // re-issue calls that have stalled (e.g. lost in a view
                // change window); servers deduplicate by call number.
                if let Some(binding) = self.binding.clone() {
                    let stalled: Vec<u64> = self
                        .issued_at
                        .iter()
                        .filter(|(_, &at)| now.saturating_since(at) > Duration::from_millis(150))
                        .map(|(&n, _)| n)
                        .collect();
                    for number in stalled {
                        let _ = binding.retry(nso, number, now, out);
                    }
                }
                out.set_timer(Duration::from_millis(200), RETRY_TAG);
            }
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                // Retry anything outstanding with its original call number
                // (§4.1); only start fresh traffic when nothing is pending.
                let pending: Vec<u64> = self.issued_at.keys().copied().collect();
                if pending.is_empty() {
                    self.issue(nso, now, out);
                } else {
                    for number in pending {
                        let _ = binding.retry(nso, number, now, out);
                    }
                }
            }
            NsoOutput::BindFailed { .. } => {
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::BindingBroken { .. } => {
                self.rebinds += 1;
                self.binding = None;
                self.manager_index += 1;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { call, replies } => {
                self.issued_at.remove(&call.number);
                self.completions.push((call.number, replies));
                self.issue(nso, now, out);
            }
            _ => {}
        }
    }
}

struct Cluster {
    sim: Sim,
    servers: Vec<NodeId>,
    client: NodeId,
    executions: Vec<Arc<AtomicU32>>,
}

fn build(
    n_servers: usize,
    replication: Replication,
    optimisation: OpenOptimisation,
    mode: ReplyMode,
    open: bool,
    total_calls: usize,
    seed: u64,
) -> Cluster {
    let mut sim = Sim::new(SimConfig::lan(seed));
    let servers: Vec<NodeId> = (0..n_servers)
        .map(|i| NodeId::from_index(i as u32))
        .collect();
    let mut executions = Vec::new();
    for &s in &servers {
        let count = Arc::new(AtomicU32::new(0));
        executions.push(Arc::clone(&count));
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(CountingServer {
                    members: servers.clone(),
                    replication,
                    optimisation,
                    executions: count,
                }),
            )),
        );
    }
    let client = NodeId::from_index(n_servers as u32);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(RetryClient::new(servers.clone(), mode, open, total_calls)),
        )),
    );
    Cluster {
        sim,
        servers,
        client,
        executions,
    }
}

fn client_state(sim: &Sim, client: NodeId) -> (Vec<u64>, u32) {
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<RetryClient>()
        .unwrap();
    let mut numbers: Vec<u64> = app.completions.iter().map(|(n, _)| *n).collect();
    numbers.sort_unstable();
    (numbers, app.rebinds)
}

#[test]
fn manager_crash_rebinds_and_retries_without_reexecution() {
    let total = 100;
    let mut c = build(
        3,
        Replication::Active,
        OpenOptimisation::None,
        ReplyMode::All,
        true,
        total,
        41,
    );
    // The client binds to servers[0]; kill it mid-stream.
    c.sim.schedule_crash(SimTime::from_millis(50), c.servers[0]);
    c.sim.run_until(SimTime::from_secs(20));

    let (numbers, rebinds) = client_state(&c.sim, c.client);
    assert!(rebinds >= 1, "the broken binding must be detected");
    assert_eq!(
        numbers,
        (1..=total as u64).collect::<Vec<_>>(),
        "every call completes exactly once, including the ones caught by the crash"
    );
    // The survivors never executed any call twice: at most one execution
    // per call each (some early ones may also have run on the crashed
    // manager before it died).
    for (i, ex) in c.executions.iter().enumerate().skip(1) {
        assert!(
            ex.load(AtomicOrdering::SeqCst) <= total as u32,
            "server {i} re-executed retried calls"
        );
    }
}

#[test]
fn closed_group_masks_a_server_crash_without_rebinding() {
    let total = 100;
    let mut c = build(
        3,
        Replication::Active,
        OpenOptimisation::None,
        ReplyMode::Majority,
        false,
        total,
        42,
    );
    c.sim.schedule_crash(SimTime::from_millis(50), c.servers[2]);
    c.sim.run_until(SimTime::from_secs(20));
    let (numbers, rebinds) = client_state(&c.sim, c.client);
    assert_eq!(rebinds, 0, "closed groups mask failures without rebinding");
    assert_eq!(numbers, (1..=total as u64).collect::<Vec<_>>());
}

#[test]
fn passive_primary_crash_promotes_a_backup() {
    let total = 80;
    let mut c = build(
        3,
        Replication::Passive,
        OpenOptimisation::AsyncForwarding,
        ReplyMode::First,
        true,
        total,
        43,
    );
    // The designated manager/primary is servers[0]; crash it.
    c.sim.schedule_crash(SimTime::from_millis(40), c.servers[0]);
    c.sim.run_until(SimTime::from_secs(20));
    let (numbers, rebinds) = client_state(&c.sim, c.client);
    assert!(rebinds >= 1);
    assert_eq!(numbers, (1..=total as u64).collect::<Vec<_>>());
    // The promoted backup replayed the backlog: its execution count covers
    // the pre-crash calls it had only logged.
    let ex1 = c.executions[1].load(AtomicOrdering::SeqCst);
    assert!(ex1 > 0, "promoted backup executed requests");
}

#[test]
fn wait_for_first_and_majority_complete_under_load() {
    for (mode, seed) in [(ReplyMode::First, 44), (ReplyMode::Majority, 45)] {
        let total = 20;
        let mut c = build(
            3,
            Replication::Active,
            OpenOptimisation::None,
            mode,
            true,
            total,
            seed,
        );
        c.sim.run_until(SimTime::from_secs(10));
        let (numbers, _) = client_state(&c.sim, c.client);
        assert_eq!(numbers, (1..=total as u64).collect::<Vec<_>>(), "{mode:?}");
    }
}

#[test]
fn replies_identify_the_executing_servers() {
    let mut c = build(
        3,
        Replication::Active,
        OpenOptimisation::None,
        ReplyMode::All,
        true,
        5,
        46,
    );
    c.sim.run_until(SimTime::from_secs(10));
    let app = c
        .sim
        .node_ref::<NsoNode>(c.client)
        .unwrap()
        .app_ref::<RetryClient>()
        .unwrap();
    for (number, replies) in &app.completions {
        assert_eq!(replies.len(), 3, "wait-for-all gathers all three");
        for (server, body) in replies {
            let text = String::from_utf8_lossy(body);
            assert!(
                text.starts_with(&format!("work@{}", server.index())),
                "call {number}: reply {text} mislabelled"
            );
            // Active replication: all replicas computed the same call.
            assert_eq!(body.last(), Some(&((*number - 1) as u8)));
        }
    }
}

#[test]
fn contact_server_crash_retry_served_from_reply_cache() {
    // §4.1 end to end: the open-binding contact server dies mid-stream,
    // the client rebinds to the next manager and retries the stranded
    // calls with their original numbers. The surviving replicas answer
    // those retries from the reply cache — each call executes at most
    // once per replica, and the cache demonstrably absorbed at least one
    // retry — so the client completes every call exactly once.
    use newtop_net::trace::TraceEvent;
    use std::collections::HashMap;

    let seed = 47;
    let total = 40;
    let mut c = build(
        3,
        Replication::Active,
        OpenOptimisation::None,
        ReplyMode::All,
        true,
        total,
        seed,
    );
    c.sim.schedule_crash(SimTime::from_millis(60), c.servers[0]);
    c.sim.run_until(SimTime::from_secs(20));

    let (numbers, rebinds) = client_state(&c.sim, c.client);
    assert!(rebinds >= 1, "crash must break the binding (seed={seed})");
    assert_eq!(
        numbers,
        (1..=total as u64).collect::<Vec<_>>(),
        "exactly-once completion across the rebind (seed={seed})"
    );

    let mut deduped = 0u32;
    for &s in &c.servers[1..] {
        let node = c.sim.node_ref::<NsoNode>(s).expect("server node");
        let mut executed: HashMap<u64, u32> = HashMap::new();
        for rec in node.nso().trace() {
            match rec.event {
                TraceEvent::Executed { number, .. } => {
                    *executed.entry(number).or_default() += 1;
                }
                TraceEvent::RetryDeduped { .. } => deduped += 1,
                _ => {}
            }
        }
        for (number, count) in executed {
            assert_eq!(
                count, 1,
                "server {s} executed call {number} {count} times (seed={seed})"
            );
        }
    }
    assert!(
        deduped > 0,
        "no retry hit the reply cache — the crash window missed (seed={seed})"
    );
}
