//! Invocation-layer data types and wire messages.
//!
//! [`InvMessage`]s travel *inside* group multicasts (as the payload of a
//! GCS data message) or, for direct replies, as oneway ORB invocations of
//! [`crate::INV_OPERATION`].

use std::fmt;

use bytes::Bytes;

use newtop_gcs::group::GroupId;
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};

/// Identifies one logical invocation: the client plus a per-client call
/// number. Retries reuse the same id, which is how servers deduplicate
/// re-executions (§4.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallId {
    /// The invoking client's node.
    pub client: NodeId,
    /// The client's call counter (starting at 1).
    pub number: u64,
}

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.number)
    }
}

impl CdrEncode for CallId {
    fn encode(&self, enc: &mut CdrEncoder) {
        self.client.encode(enc);
        enc.write_u64(self.number);
    }
}

impl CdrDecode for CallId {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(CallId {
            client: NodeId::decode(dec)?,
            number: dec.read_u64()?,
        })
    }
}

/// The paper's four invocation primitives (§2.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReplyMode {
    /// No reply expected; the caller continues immediately.
    OneWay,
    /// Wait for a reply from a single server.
    First,
    /// Wait for replies from a majority of the server group.
    Majority,
    /// Wait for replies from every member of the server group.
    All,
}

impl ReplyMode {
    /// How many replies satisfy this mode against `servers` repliers.
    #[must_use]
    pub fn needed(self, servers: usize) -> usize {
        match self {
            ReplyMode::OneWay => 0,
            ReplyMode::First => servers.min(1),
            ReplyMode::Majority => servers / 2 + 1,
            ReplyMode::All => servers,
        }
    }

    fn code(self) -> u8 {
        match self {
            ReplyMode::OneWay => 0,
            ReplyMode::First => 1,
            ReplyMode::Majority => 2,
            ReplyMode::All => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, CdrError> {
        Ok(match c {
            0 => ReplyMode::OneWay,
            1 => ReplyMode::First,
            2 => ReplyMode::Majority,
            3 => ReplyMode::All,
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        })
    }
}

/// How a client is attached to a server group (§2.1, Fig. 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindingStyle {
    /// The client/server group contains the client and *every* server:
    /// requests are multicast directly and each server replies straight
    /// to the client. Server failures are masked without rebinding.
    Closed,
    /// The client/server group contains the client and one server — the
    /// request manager. The manager distributes requests inside the
    /// server group and relays the replies.
    Open {
        /// The server acting as request manager.
        manager: NodeId,
    },
}

impl BindingStyle {
    /// True for the open style.
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self, BindingStyle::Open { .. })
    }
}

/// Server-group replication discipline (§4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Replication {
    /// Every correctly functioning replica executes every request.
    Active,
    /// Only the primary (the request manager) executes; the others log
    /// requests and replay them if promoted.
    Passive,
}

/// Open-group optimisations (§4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpenOptimisation {
    /// Plain open groups: any server may be a request manager
    /// (Fig. 5(i)).
    None,
    /// Restricted group: every client binds to the *single* designated
    /// manager (the server view's lowest-ranked member), eliminating the
    /// manager's self-delivery ordering delay (Fig. 5(ii)).
    Restricted,
    /// Restricted group plus asynchronous message forwarding: the manager
    /// executes and answers wait-for-first requests itself, forwarding
    /// them one-way to the other servers. With the asymmetric protocol
    /// this makes sequencer = request manager = primary: the
    /// passive-replication configuration.
    AsyncForwarding,
}

/// Messages of the invocation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvMessage {
    /// A client's request, multicast in a client/server group (open or
    /// closed).
    Request {
        /// The logical call.
        call: CallId,
        /// Operation name on the group servant.
        op: String,
        /// Marshalled arguments.
        args: Bytes,
        /// Reply-collection primitive.
        mode: ReplyMode,
    },
    /// A request re-issued by the request manager inside the server group
    /// (Fig. 4(ii)).
    Forwarded {
        /// The logical call.
        call: CallId,
        /// Operation name.
        op: String,
        /// Marshalled arguments.
        args: Bytes,
        /// Reply-collection primitive.
        mode: ReplyMode,
        /// The managing server (replies are collected there).
        manager: NodeId,
        /// True when servers should execute without replying (the
        /// asynchronous-forwarding optimisation / passive backups).
        no_reply: bool,
    },
    /// One server's reply, multicast inside the server group
    /// (Fig. 4(iii)).
    ServerReply {
        /// The logical call.
        call: CallId,
        /// The replying server.
        replier: NodeId,
        /// Marshalled result.
        result: Bytes,
    },
    /// The collected replies, returned by the manager in the
    /// client/server group (Fig. 4(iv)).
    RelayedReply {
        /// The logical call.
        call: CallId,
        /// `(server, result)` pairs, as many as the mode required.
        replies: Vec<(NodeId, Bytes)>,
    },
    /// A closed-group server's reply, sent directly to the client as an
    /// ORB oneway.
    DirectReply {
        /// The logical call.
        call: CallId,
        /// The replying server.
        replier: NodeId,
        /// Marshalled result.
        result: Bytes,
    },
    /// A group-to-group request, multicast by each member of the client
    /// group in the client monitor group (Fig. 6). The manager filters
    /// the duplicates.
    G2gRequest {
        /// The originating client group.
        origin: GroupId,
        /// The origin group's call counter.
        number: u64,
        /// Operation name.
        op: String,
        /// Marshalled arguments.
        args: Bytes,
        /// Reply-collection primitive.
        mode: ReplyMode,
    },
    /// The collected replies, multicast by the manager in the client
    /// monitor group so every client-group member receives them
    /// atomically.
    G2gReply {
        /// The originating client group.
        origin: GroupId,
        /// The origin group's call counter.
        number: u64,
        /// `(server, result)` pairs.
        replies: Vec<(NodeId, Bytes)>,
    },
}

const TAG_REQUEST: u8 = 0;
const TAG_FORWARDED: u8 = 1;
const TAG_SERVER_REPLY: u8 = 2;
const TAG_RELAYED_REPLY: u8 = 3;
const TAG_DIRECT_REPLY: u8 = 4;
const TAG_G2G_REQUEST: u8 = 5;
const TAG_G2G_REPLY: u8 = 6;

fn encode_replies(enc: &mut CdrEncoder, replies: &[(NodeId, Bytes)]) {
    enc.write_seq_len(replies.len());
    for (n, b) in replies {
        n.encode(enc);
        enc.write_bytes(b);
    }
}

fn decode_replies(dec: &mut CdrDecoder<'_>) -> Result<Vec<(NodeId, Bytes)>, CdrError> {
    let len = dec.read_seq_len()?;
    let mut out = Vec::with_capacity(len.min(256));
    for _ in 0..len {
        let n = NodeId::decode(dec)?;
        let b = Bytes::from(dec.read_bytes()?);
        out.push((n, b));
    }
    Ok(out)
}

impl CdrEncode for InvMessage {
    fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            InvMessage::Request {
                call,
                op,
                args,
                mode,
            } => {
                enc.write_u8(TAG_REQUEST);
                call.encode(enc);
                enc.write_string(op);
                enc.write_bytes(args);
                enc.write_u8(mode.code());
            }
            InvMessage::Forwarded {
                call,
                op,
                args,
                mode,
                manager,
                no_reply,
            } => {
                enc.write_u8(TAG_FORWARDED);
                call.encode(enc);
                enc.write_string(op);
                enc.write_bytes(args);
                enc.write_u8(mode.code());
                manager.encode(enc);
                enc.write_bool(*no_reply);
            }
            InvMessage::ServerReply {
                call,
                replier,
                result,
            } => {
                enc.write_u8(TAG_SERVER_REPLY);
                call.encode(enc);
                replier.encode(enc);
                enc.write_bytes(result);
            }
            InvMessage::RelayedReply { call, replies } => {
                enc.write_u8(TAG_RELAYED_REPLY);
                call.encode(enc);
                encode_replies(enc, replies);
            }
            InvMessage::DirectReply {
                call,
                replier,
                result,
            } => {
                enc.write_u8(TAG_DIRECT_REPLY);
                call.encode(enc);
                replier.encode(enc);
                enc.write_bytes(result);
            }
            InvMessage::G2gRequest {
                origin,
                number,
                op,
                args,
                mode,
            } => {
                enc.write_u8(TAG_G2G_REQUEST);
                origin.encode(enc);
                enc.write_u64(*number);
                enc.write_string(op);
                enc.write_bytes(args);
                enc.write_u8(mode.code());
            }
            InvMessage::G2gReply {
                origin,
                number,
                replies,
            } => {
                enc.write_u8(TAG_G2G_REPLY);
                origin.encode(enc);
                enc.write_u64(*number);
                encode_replies(enc, replies);
            }
        }
    }
}

impl CdrDecode for InvMessage {
    fn decode(dec: &mut CdrDecoder<'_>) -> Result<Self, CdrError> {
        Ok(match dec.read_u8()? {
            TAG_REQUEST => InvMessage::Request {
                call: CallId::decode(dec)?,
                op: dec.read_string()?,
                args: Bytes::from(dec.read_bytes()?),
                mode: ReplyMode::from_code(dec.read_u8()?)?,
            },
            TAG_FORWARDED => InvMessage::Forwarded {
                call: CallId::decode(dec)?,
                op: dec.read_string()?,
                args: Bytes::from(dec.read_bytes()?),
                mode: ReplyMode::from_code(dec.read_u8()?)?,
                manager: NodeId::decode(dec)?,
                no_reply: dec.read_bool()?,
            },
            TAG_SERVER_REPLY => InvMessage::ServerReply {
                call: CallId::decode(dec)?,
                replier: NodeId::decode(dec)?,
                result: Bytes::from(dec.read_bytes()?),
            },
            TAG_RELAYED_REPLY => InvMessage::RelayedReply {
                call: CallId::decode(dec)?,
                replies: decode_replies(dec)?,
            },
            TAG_DIRECT_REPLY => InvMessage::DirectReply {
                call: CallId::decode(dec)?,
                replier: NodeId::decode(dec)?,
                result: Bytes::from(dec.read_bytes()?),
            },
            TAG_G2G_REQUEST => InvMessage::G2gRequest {
                origin: GroupId::decode(dec)?,
                number: dec.read_u64()?,
                op: dec.read_string()?,
                args: Bytes::from(dec.read_bytes()?),
                mode: ReplyMode::from_code(dec.read_u8()?)?,
            },
            TAG_G2G_REPLY => InvMessage::G2gReply {
                origin: GroupId::decode(dec)?,
                number: dec.read_u64()?,
                replies: decode_replies(dec)?,
            },
            other => return Err(CdrError::BadDiscriminant(u32::from(other))),
        })
    }
}

/// An action the invocation layer asks its owner (the NSO) to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvCommand {
    /// Multicast a marshalled [`InvMessage`] in a group, totally ordered.
    Multicast {
        /// Destination group.
        group: GroupId,
        /// Marshalled message.
        payload: Bytes,
    },
    /// Send a marshalled [`InvMessage`] directly to a node's NSO as a
    /// oneway ORB invocation of [`crate::INV_OPERATION`].
    Direct {
        /// Destination node.
        to: NodeId,
        /// Marshalled message.
        payload: Bytes,
    },
}

impl InvCommand {
    /// Builds a multicast command from a message.
    #[must_use]
    pub fn multicast(group: GroupId, msg: &InvMessage) -> Self {
        InvCommand::Multicast {
            group,
            payload: msg.to_cdr(),
        }
    }

    /// Builds a direct-send command from a message.
    #[must_use]
    pub fn direct(to: NodeId, msg: &InvMessage) -> Self {
        InvCommand::Direct {
            to,
            payload: msg.to_cdr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn reply_mode_needed_counts() {
        assert_eq!(ReplyMode::OneWay.needed(3), 0);
        assert_eq!(ReplyMode::First.needed(3), 1);
        assert_eq!(ReplyMode::Majority.needed(3), 2);
        assert_eq!(ReplyMode::Majority.needed(4), 3);
        assert_eq!(ReplyMode::Majority.needed(5), 3);
        assert_eq!(ReplyMode::All.needed(3), 3);
        assert_eq!(ReplyMode::First.needed(0), 0);
    }

    #[test]
    fn call_id_round_trip_and_display() {
        let c = CallId {
            client: n(4),
            number: 17,
        };
        assert_eq!(CallId::from_cdr(&c.to_cdr()).unwrap(), c);
        assert_eq!(c.to_string(), "n4#17");
    }

    #[test]
    fn all_message_variants_round_trip() {
        let call = CallId {
            client: n(1),
            number: 2,
        };
        let msgs = vec![
            InvMessage::Request {
                call,
                op: "draw".to_owned(),
                args: Bytes::from_static(b"a"),
                mode: ReplyMode::All,
            },
            InvMessage::Forwarded {
                call,
                op: "draw".to_owned(),
                args: Bytes::from_static(b"a"),
                mode: ReplyMode::First,
                manager: n(3),
                no_reply: true,
            },
            InvMessage::ServerReply {
                call,
                replier: n(3),
                result: Bytes::from_static(b"r"),
            },
            InvMessage::RelayedReply {
                call,
                replies: vec![(n(3), Bytes::from_static(b"r")), (n(4), Bytes::new())],
            },
            InvMessage::DirectReply {
                call,
                replier: n(5),
                result: Bytes::from_static(b"d"),
            },
            InvMessage::G2gRequest {
                origin: GroupId::new("gx"),
                number: 9,
                op: "tally".to_owned(),
                args: Bytes::new(),
                mode: ReplyMode::Majority,
            },
            InvMessage::G2gReply {
                origin: GroupId::new("gx"),
                number: 9,
                replies: vec![(n(7), Bytes::from_static(b"x"))],
            },
        ];
        for m in msgs {
            assert_eq!(InvMessage::from_cdr(&m.to_cdr()).unwrap(), m);
        }
    }

    #[test]
    fn commands_wrap_marshalled_messages() {
        let msg = InvMessage::ServerReply {
            call: CallId {
                client: n(0),
                number: 1,
            },
            replier: n(1),
            result: Bytes::new(),
        };
        let InvCommand::Multicast { group, payload } =
            InvCommand::multicast(GroupId::new("g"), &msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(group, GroupId::new("g"));
        assert_eq!(InvMessage::from_cdr(&payload).unwrap(), msg);
        let InvCommand::Direct { to, payload } = InvCommand::direct(n(9), &msg) else {
            panic!("wrong variant");
        };
        assert_eq!(to, n(9));
        assert_eq!(InvMessage::from_cdr(&payload).unwrap(), msg);
    }

    proptest! {
        #[test]
        fn prop_messages_round_trip(
            client in 0u32..100,
            number in 1u64..1_000_000,
            op in "[a-z_]{1,20}",
            args in proptest::collection::vec(any::<u8>(), 0..64),
            mode_code in 0u8..4,
        ) {
            let mode = ReplyMode::from_code(mode_code).unwrap();
            let m = InvMessage::Request {
                call: CallId { client: n(client), number },
                op,
                args: Bytes::from(args),
                mode,
            };
            prop_assert_eq!(InvMessage::from_cdr(&m.to_cdr()).unwrap(), m);
        }

        #[test]
        fn prop_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = InvMessage::from_cdr(&bytes);
        }
    }
}
