/root/repo/target/debug/deps/newtop_invocation-edce770c3bb46747.d: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_invocation-edce770c3bb46747.rmeta: crates/invocation/src/lib.rs crates/invocation/src/api.rs crates/invocation/src/client.rs crates/invocation/src/g2g.rs crates/invocation/src/server.rs Cargo.toml

crates/invocation/src/lib.rs:
crates/invocation/src/api.rs:
crates/invocation/src/client.rs:
crates/invocation/src/g2g.rs:
crates/invocation/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
