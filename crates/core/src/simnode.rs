//! Hosting an NSO (plus its application) on the deterministic simulator.
//!
//! An [`NsoNode`] wraps one [`Nso`] and an application object implementing
//! [`NsoApp`]. Packets and NSO-owned timers are routed into the NSO;
//! NSO outputs are handed to the application, which may react by calling
//! back into the NSO (reactions cascade until no outputs remain).
//! Timer tags at or above [`crate::tags::APP_BASE`] belong to the
//! application.

use std::any::Any;

use newtop_net::sim::{NodeEvent, Outbox, SimNode};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;

use crate::nso::{Nso, NsoOptions, NsoOutput};

/// The application half of a simulated node.
///
/// Implementations react to simulator start, NSO outputs and their own
/// timers by invoking NSO APIs.
pub trait NsoApp: Any + Send {
    /// Called once when the node starts.
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, _out: &mut Outbox) {}

    /// Called for every NSO output.
    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox);

    /// Called for timer tags the NSO does not own (application timers,
    /// tags ≥ [`crate::tags::APP_BASE`]).
    fn on_timer(&mut self, _nso: &mut Nso, _tag: u64, _now: SimTime, _out: &mut Outbox) {}
}

/// A simulated node hosting one NSO and its application.
pub struct NsoNode {
    nso: Nso,
    app: Box<dyn NsoApp>,
}

impl NsoNode {
    /// Creates the node state with the default [`NsoOptions`].
    #[must_use]
    pub fn new(node: NodeId, app: Box<dyn NsoApp>) -> Self {
        NsoNode::with_options(node, NsoOptions::default(), app)
    }

    /// Creates the node state with explicit [`NsoOptions`] (shard count,
    /// send-path batching).
    #[must_use]
    pub fn with_options(node: NodeId, opts: NsoOptions, app: Box<dyn NsoApp>) -> Self {
        NsoNode {
            nso: Nso::with_options(node, opts),
            app,
        }
    }

    /// The hosted NSO.
    #[must_use]
    pub fn nso(&self) -> &Nso {
        &self.nso
    }

    /// Borrows the application, downcast to its concrete type.
    #[must_use]
    pub fn app_ref<T: NsoApp>(&self) -> Option<&T> {
        (&*self.app as &dyn Any).downcast_ref()
    }

    /// Mutable variant of [`Self::app_ref`].
    #[must_use]
    pub fn app_mut<T: NsoApp>(&mut self) -> Option<&mut T> {
        (&mut *self.app as &mut dyn Any).downcast_mut()
    }

    fn drain(&mut self, now: SimTime, out: &mut Outbox) {
        loop {
            let outputs = self.nso.take_outputs();
            if outputs.is_empty() {
                break;
            }
            for o in outputs {
                self.app.on_output(&mut self.nso, o, now, out);
            }
        }
    }
}

impl SimNode for NsoNode {
    fn on_event(&mut self, now: SimTime, ev: NodeEvent, out: &mut Outbox) {
        match ev {
            NodeEvent::Start => {
                self.app.on_start(&mut self.nso, now, out);
            }
            NodeEvent::Packet(pkt) => {
                self.nso.on_packet(&pkt, now, out);
            }
            NodeEvent::Timer(_, tag) => {
                if self.nso.owns_tag(tag) {
                    self.nso.on_timer(tag, now, out);
                } else {
                    self.app.on_timer(&mut self.nso, tag, now, out);
                }
            }
        }
        self.drain(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nso::BindOptions;
    use bytes::Bytes;
    use newtop_gcs::group::{GroupConfig, GroupId};
    use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
    use newtop_net::sim::{Sim, SimConfig};
    use newtop_net::site::Site;

    struct Server {
        members: Vec<NodeId>,
    }

    impl NsoApp for Server {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            nso.create_server_group(
                GroupId::new("svc"),
                self.members.clone(),
                Replication::Active,
                OpenOptimisation::None,
                GroupConfig::request_reply(),
                now,
                out,
            )
            .unwrap();
            let me = nso.node().index();
            nso.register_group_servant(
                GroupId::new("svc"),
                Box::new(move |op: &str, _args: &[u8]| Bytes::from(format!("{op}@{me}"))),
            );
        }

        fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
    }

    struct Client {
        servers: Vec<NodeId>,
        open: bool,
        mode: ReplyMode,
        replies: Option<Vec<(NodeId, Bytes)>>,
    }

    impl NsoApp for Client {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            let opts = if self.open {
                BindOptions::open(self.servers[0])
            } else {
                BindOptions::closed(self.servers.clone())
            };
            nso.bind(GroupId::new("svc"), opts, now, out).unwrap();
        }

        fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
            match output {
                NsoOutput::BindingReady { group } => {
                    let binding = nso.handle_for(&group).unwrap();
                    binding
                        .invoke(nso, "get", Bytes::new(), self.mode, now, out)
                        .unwrap();
                }
                NsoOutput::InvocationComplete { replies, .. } => {
                    self.replies = Some(replies);
                }
                _ => {}
            }
        }
    }

    fn run(open: bool, mode: ReplyMode) -> Vec<(NodeId, Bytes)> {
        let mut sim = Sim::new(SimConfig::default());
        let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
        for &s in &servers {
            sim.add_node(
                Site::Lan,
                Box::new(NsoNode::new(
                    s,
                    Box::new(Server {
                        members: servers.clone(),
                    }),
                )),
            );
        }
        let c = NodeId::from_index(3);
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                c,
                Box::new(Client {
                    servers: servers.clone(),
                    open,
                    mode,
                    replies: None,
                }),
            )),
        );
        sim.run_until(SimTime::from_secs(10));
        sim.node_ref::<NsoNode>(c)
            .unwrap()
            .app_ref::<Client>()
            .unwrap()
            .replies
            .clone()
            .expect("invocation completed")
    }

    #[test]
    fn open_group_wait_for_all_collects_three() {
        let replies = run(true, ReplyMode::All);
        assert_eq!(replies.len(), 3);
        for (node, body) in &replies {
            assert_eq!(&body[..], format!("get@{}", node.index()).as_bytes());
        }
    }

    #[test]
    fn open_group_wait_for_first_collects_one() {
        let replies = run(true, ReplyMode::First);
        assert_eq!(replies.len(), 1);
    }

    #[test]
    fn closed_group_wait_for_all_collects_three() {
        let replies = run(false, ReplyMode::All);
        assert_eq!(replies.len(), 3);
    }

    #[test]
    fn closed_group_majority_collects_two() {
        let replies = run(false, ReplyMode::Majority);
        assert_eq!(replies.len(), 2);
    }
}
