/root/repo/target/debug/deps/newtop_workloads-a736136c214c4435.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_workloads-a736136c214c4435.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/figures.rs crates/workloads/src/plain.rs crates/workloads/src/scenario.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/figures.rs:
crates/workloads/src/plain.rs:
crates/workloads/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
