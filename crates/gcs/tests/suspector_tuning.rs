//! Suspector-tuning regressions (PR 8 satellite).
//!
//! The failure detector's time-silence interval must be matched to the
//! deployment's worst one-way delay. These tests pin both sides of the
//! tuning rule `ts ≥ 4·D/(m−2)` (see
//! `GroupConfig::recommended_time_silence` and DESIGN.md §11):
//!
//! * at the recommended interval, an idle-but-alive group rides out
//!   every WAN preset *plus* a transient delay spike with **zero**
//!   suspicions and no view changes;
//! * at an aggressive interval, the same deployment produces a
//!   false-suspicion storm — the historical failure mode the rule
//!   exists to prevent.

use std::time::Duration;

use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_gcs::testkit::GcsHarness;
use newtop_net::latency::LatencyMatrix;
use newtop_net::sim::SimConfig;
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

/// The transient delay spike each run injects mid-flight.
const SPIKE: Duration = Duration::from_millis(120);

/// One WAN preset: its latency matrix and one site per member.
fn presets() -> Vec<(&'static str, LatencyMatrix, Vec<Site>)> {
    vec![
        (
            "paper-wan",
            LatencyMatrix::internet(),
            vec![Site::Newcastle, Site::London, Site::Pisa],
        ),
        (
            "global5",
            LatencyMatrix::global5(),
            LatencyMatrix::GLOBAL5_SITES.to_vec(),
        ),
        (
            "continental3",
            LatencyMatrix::continental3(),
            LatencyMatrix::CONTINENTAL3_SITES.to_vec(),
        ),
    ]
}

struct RunStats {
    suspicions: u64,
    heartbeats: u64,
    max_views: usize,
}

/// Runs an idle peer group with the given time-silence interval under
/// `matrix` plus a mid-run delay spike, and tallies the evidence.
fn run_idle_group(
    matrix: LatencyMatrix,
    sites: &[Site],
    config: &GroupConfig,
    seed: u64,
) -> RunStats {
    let cfg = SimConfig {
        seed,
        latency: matrix,
        ..SimConfig::default()
    };
    let mut h = GcsHarness::new(cfg);
    let roster: Vec<NodeId> = sites
        .iter()
        .flat_map(|&site| h.add_nodes(site, 1))
        .collect();
    let group = GroupId::new("tuned");
    h.create_group(SimTime::from_millis(1), &group, config, &roster);
    // A transient delay spike: every frame in flight during the window
    // takes an extra `SPIKE` on top of its sampled latency.
    h.sim
        .schedule_set_extra_delay(SimTime::from_millis(1_500), SPIKE);
    h.sim
        .schedule_set_extra_delay(SimTime::from_millis(1_900), Duration::ZERO);
    h.run_until(SimTime::from_millis(4_000));

    let mut stats = RunStats {
        suspicions: 0,
        heartbeats: 0,
        max_views: 0,
    };
    for &node in &roster {
        let n = h.node(node);
        for obs in n.gcs().observabilities() {
            stats.suspicions += obs.metrics.counter("ev.suspected");
            stats.heartbeats += obs.metrics.counter("ev.time_silence_null");
        }
        stats.max_views = stats.max_views.max(h.views(node, &group).len());
    }
    stats
}

#[test]
fn recommended_interval_survives_every_wan_preset_with_a_spike() {
    for (name, matrix, sites) in presets() {
        // Tune for the preset's worst one-way delay *including* the
        // spike the run is about to inject.
        let worst = matrix.worst_one_way() + SPIKE;
        let base = GroupConfig::peer();
        let ts = base.recommended_time_silence(worst);
        let config = base.with_time_silence(ts);
        let stats = run_idle_group(matrix, &sites, &config, 0xfeed);
        assert!(
            stats.heartbeats > 0,
            "{name}: no time-silence nulls flowed — the run proves nothing"
        );
        assert_eq!(
            stats.suspicions, 0,
            "{name}: false suspicions at the recommended interval {ts:?}"
        );
        assert_eq!(
            stats.max_views, 1,
            "{name}: a view change fired in a fault-free run"
        );
    }
}

#[test]
fn aggressive_interval_reproduces_a_false_suspicion_storm() {
    // 1 ms time-silence × the default 14× multiple gives a 14 ms
    // suspicion timeout — under the inter-region one-way delays of the
    // five-region matrix (15 ms+), alive members cannot be heard from
    // in time and the detector storms. This is the misconfiguration the
    // tuning rule exists to rule out.
    let config = GroupConfig::peer().with_time_silence(Duration::from_millis(1));
    let stats = run_idle_group(
        LatencyMatrix::global5(),
        &LatencyMatrix::GLOBAL5_SITES,
        &config,
        0xfeed,
    );
    assert!(
        stats.suspicions >= 3,
        "expected a false-suspicion storm, saw {} suspicions",
        stats.suspicions
    );
    // And the recommended interval for the same matrix is indeed larger
    // than the aggressive one — the rule flags this configuration.
    let recommended =
        GroupConfig::peer().recommended_time_silence(LatencyMatrix::global5().worst_one_way());
    assert!(recommended > Duration::from_millis(1));
}
