/root/repo/target/release/libnewtop_integration.rlib: /root/repo/tests/src/lib.rs
