//! In-process channel transport.
//!
//! Connects nodes living in one process through *bounded* flow-control
//! queues ([`newtop_flow::queue`]). This is the default transport for the
//! threaded runtime's loopback examples and integration tests: real
//! threads, real wall-clock timers, no sockets. A full inbox sheds the
//! packet with [`TransportError::Overloaded`] — the protocol layers treat
//! that as loss and recover via NACKs — and the shed is visible through
//! the inbox's [`newtop_flow::queue::QueueStats`].

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use newtop_flow::queue::{bounded, Receiver, Sender, TrySendError};
use newtop_flow::FlowConfig;
use parking_lot::RwLock;

use crate::sim::Packet;
use crate::site::NodeId;
use crate::transport::{TransportError, WireTransport};

#[derive(Default)]
struct Registry {
    inboxes: HashMap<NodeId, Sender<Packet>>,
}

/// A process-local network: every [`ChannelTransport`] endpoint created from
/// the same `ChannelNetwork` can reach every other.
///
/// ```
/// use newtop_net::channel::ChannelNetwork;
/// use newtop_net::site::NodeId;
/// use newtop_net::transport::WireTransport;
/// use bytes::Bytes;
///
/// let net = ChannelNetwork::new();
/// let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
/// let (_b, b_rx) = net.endpoint(NodeId::from_index(1));
/// a.send(NodeId::from_index(1), Bytes::from_static(b"hello")).unwrap();
/// let pkt = b_rx.recv().unwrap();
/// assert_eq!(&pkt.payload[..], b"hello");
/// assert_eq!(pkt.src, NodeId::from_index(0));
/// ```
#[derive(Clone)]
pub struct ChannelNetwork {
    registry: Arc<RwLock<Registry>>,
    inbox_capacity: usize,
}

impl Default for ChannelNetwork {
    fn default() -> Self {
        ChannelNetwork::new()
    }
}

impl ChannelNetwork {
    /// Creates an empty network with the default flow-config inbox
    /// capacity.
    #[must_use]
    pub fn new() -> Self {
        ChannelNetwork::with_capacity(FlowConfig::default().queue_capacity)
    }

    /// Creates an empty network whose inboxes hold at most `capacity`
    /// packets each (further sends shed with
    /// [`TransportError::Overloaded`]).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ChannelNetwork {
            registry: Arc::new(RwLock::new(Registry::default())),
            inbox_capacity: capacity,
        }
    }

    /// Registers a node and returns its sending handle and inbox.
    ///
    /// Registering the same node id twice replaces the previous inbox.
    #[must_use]
    pub fn endpoint(&self, node: NodeId) -> (ChannelTransport, Receiver<Packet>) {
        let (tx, rx) = bounded(self.inbox_capacity);
        self.registry.write().inboxes.insert(node, tx);
        (
            ChannelTransport {
                local: node,
                registry: Arc::clone(&self.registry),
            },
            rx,
        )
    }

    /// Removes a node; subsequent sends to it fail with `UnknownPeer`.
    pub fn remove(&self, node: NodeId) {
        self.registry.write().inboxes.remove(&node);
    }
}

impl std::fmt::Debug for ChannelNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.registry.read().inboxes.len();
        write!(f, "ChannelNetwork({n} endpoints)")
    }
}

/// The sending half of a [`ChannelNetwork`] endpoint.
#[derive(Clone)]
pub struct ChannelTransport {
    local: NodeId,
    registry: Arc<RwLock<Registry>>,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelTransport(local={})", self.local)
    }
}

impl WireTransport for ChannelTransport {
    fn local(&self) -> NodeId {
        self.local
    }

    fn send(&self, dst: NodeId, payload: Bytes) -> Result<(), TransportError> {
        // Clone the sender inside the lock, hand off outside it: a full
        // queue must never block readers of (or writers to) the registry.
        let tx = {
            let registry = self.registry.read();
            registry
                .inboxes
                .get(&dst)
                .ok_or(TransportError::UnknownPeer(dst))?
                .clone()
        };
        tx.try_send(Packet {
            src: self.local,
            dst,
            payload,
        })
        .map_err(|e| match e {
            TrySendError::Full(_) => TransportError::Overloaded(dst),
            TrySendError::Disconnected(_) => TransportError::Closed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_between_two_endpoints() {
        let net = ChannelNetwork::new();
        let (a, a_rx) = net.endpoint(NodeId::from_index(0));
        let (b, b_rx) = net.endpoint(NodeId::from_index(1));
        a.send(b.local(), Bytes::from_static(b"ping")).unwrap();
        let pkt = b_rx.recv().unwrap();
        assert_eq!(&pkt.payload[..], b"ping");
        b.send(pkt.src, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(&a_rx.recv().unwrap().payload[..], b"pong");
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let net = ChannelNetwork::new();
        let (a, _rx) = net.endpoint(NodeId::from_index(0));
        let err = a
            .send(NodeId::from_index(9), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, TransportError::UnknownPeer(_)));
    }

    #[test]
    fn removed_peer_becomes_unreachable() {
        let net = ChannelNetwork::new();
        let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
        let (_b, _b_rx) = net.endpoint(NodeId::from_index(1));
        net.remove(NodeId::from_index(1));
        assert!(a.send(NodeId::from_index(1), Bytes::new()).is_err());
    }

    #[test]
    fn full_inbox_sheds_with_overloaded() {
        let net = ChannelNetwork::with_capacity(2);
        let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
        let (_b, b_rx) = net.endpoint(NodeId::from_index(1));
        a.send(NodeId::from_index(1), Bytes::from_static(b"1"))
            .unwrap();
        a.send(NodeId::from_index(1), Bytes::from_static(b"2"))
            .unwrap();
        let err = a
            .send(NodeId::from_index(1), Bytes::from_static(b"3"))
            .unwrap_err();
        assert!(matches!(err, TransportError::Overloaded(_)));
        assert_eq!(b_rx.stats().shed(), 1);
        assert_eq!(b_rx.stats().peak_depth(), 2);
        // Draining restores capacity.
        assert_eq!(&b_rx.recv().unwrap().payload[..], b"1");
        a.send(NodeId::from_index(1), Bytes::from_static(b"4"))
            .unwrap();
    }

    #[test]
    fn per_peer_ordering_is_preserved() {
        let net = ChannelNetwork::new();
        let (a, _a_rx) = net.endpoint(NodeId::from_index(0));
        let (_b, b_rx) = net.endpoint(NodeId::from_index(1));
        for i in 0..100u8 {
            a.send(NodeId::from_index(1), Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b_rx.recv().unwrap().payload[0], i);
        }
    }
}
