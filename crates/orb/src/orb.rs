//! The sans-IO ORB core: invocation, correlation and dispatch.
//!
//! [`OrbCore`] owns one node's outgoing request table and its
//! [`ObjectAdapter`]. It is driven by whichever runtime hosts it: feed it
//! incoming packets with [`OrbCore::handle_packet`] and give every call an
//! [`Outbox`] to emit wire traffic into.
//!
//! Two kinds of targets exist above this layer. Ordinary servants are
//! registered in the adapter and dispatched automatically, with the reply
//! sent in the same turn — that is the plain-CORBA path of the paper's
//! Table 1. Protocol endpoints (the NewTop service object itself) are
//! *not* registered; their traffic comes back from `handle_packet` as an
//! [`OrbIncoming::Upcall`] so the owning state machine can run the group
//! protocols and reply later via [`OrbCore::send_reply`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use bytes::Bytes;

use newtop_net::sim::{Outbox, Packet};
use newtop_net::site::NodeId;

use crate::cdr::CdrEncoder;
use crate::giop::{FrameError, GiopMessage, ReplyStatus, SystemException};
use crate::ior::{ObjectKey, ObjectRef};
use crate::servant::{ObjectAdapter, ServantError};

/// Identifies an in-flight request issued by this ORB.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Why an invocation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvokeError {
    /// The ORB raised a system exception.
    System(SystemException),
    /// The servant raised a user exception with this payload.
    User(Bytes),
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::System(se) => write!(f, "system exception: {se}"),
            InvokeError::User(b) => write!(f, "user exception ({} bytes)", b.len()),
        }
    }
}

impl Error for InvokeError {}

/// Something `handle_packet` wants the owner to know about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrbIncoming {
    /// A reply to a request this ORB issued arrived.
    Reply {
        /// The completed request.
        request: RequestId,
        /// Its outcome.
        result: Result<Bytes, InvokeError>,
    },
    /// A request arrived for an object key with no registered servant —
    /// a protocol endpoint the owner must handle itself.
    Upcall {
        /// The invoking node.
        from: NodeId,
        /// The sender's request id; echo it in [`OrbCore::send_reply`].
        request_id: u64,
        /// Target key.
        key: ObjectKey,
        /// Operation name.
        operation: String,
        /// Marshalled arguments.
        body: Bytes,
        /// False for oneway invocations.
        response_expected: bool,
    },
}

#[derive(Debug)]
struct Pending {
    target: NodeId,
}

/// One node's ORB: request correlation plus servant dispatch.
pub struct OrbCore {
    local: NodeId,
    next_request: u64,
    pending: HashMap<u64, Pending>,
    adapter: ObjectAdapter,
    /// Capacity-retaining scratch buffer for the oneway hot path: frames
    /// are marshalled here and copied out once into a refcounted `Bytes`,
    /// so steady-state multicasts allocate nothing for the working buffer.
    scratch: CdrEncoder,
}

impl fmt::Debug for OrbCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrbCore")
            .field("local", &self.local)
            .field("pending", &self.pending.len())
            .field("adapter", &self.adapter)
            .finish()
    }
}

impl OrbCore {
    /// Creates an ORB for `local`.
    #[must_use]
    pub fn new(local: NodeId) -> Self {
        OrbCore {
            local,
            next_request: 1,
            pending: HashMap::new(),
            adapter: ObjectAdapter::new(),
            scratch: CdrEncoder::with_capacity(256),
        }
    }

    /// Borrows the ORB's scratch encoder so callers marshalling message
    /// bodies on the hot path can reuse its capacity instead of allocating
    /// per message. The scratch is always left empty between uses.
    pub fn scratch_encoder(&mut self) -> &mut CdrEncoder {
        &mut self.scratch
    }

    /// The node this ORB runs on.
    #[must_use]
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// The node's object adapter.
    pub fn adapter_mut(&mut self) -> &mut ObjectAdapter {
        &mut self.adapter
    }

    /// Number of requests awaiting replies.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Issues a request expecting a reply. The returned id identifies the
    /// eventual [`OrbIncoming::Reply`].
    pub fn invoke(
        &mut self,
        target: &ObjectRef,
        operation: &str,
        body: Bytes,
        out: &mut Outbox,
    ) -> RequestId {
        let id = self.next_request;
        self.next_request += 1;
        self.pending.insert(
            id,
            Pending {
                target: target.node,
            },
        );
        let msg = GiopMessage::Request {
            request_id: id,
            object_key: target.key.clone(),
            operation: operation.to_owned(),
            response_expected: true,
            body,
        };
        out.send(target.node, msg.to_frame());
        RequestId(id)
    }

    /// Issues a oneway (no-reply) request.
    pub fn oneway(&mut self, target: &ObjectRef, operation: &str, body: Bytes, out: &mut Outbox) {
        let id = self.next_request;
        self.next_request += 1;
        let frame = GiopMessage::encode_request_frame(
            &mut self.scratch,
            id,
            &target.key,
            operation,
            false,
            &body,
        );
        out.send(target.node, frame);
    }

    /// Issues the same oneway request to every target, encoding the wire
    /// frame exactly once: each recipient gets a cheap refcount clone of
    /// one shared `Bytes` frame. Returns how many sends were issued.
    ///
    /// All recipients share a single request id. That is safe for oneways
    /// — `response_expected` is false, nothing is entered in the pending
    /// table, and no reply will ever correlate against the id.
    pub fn oneway_fanout<I: IntoIterator<Item = NodeId>>(
        &mut self,
        targets: I,
        key: &ObjectKey,
        operation: &str,
        body: &[u8],
        out: &mut Outbox,
    ) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        let frame =
            GiopMessage::encode_request_frame(&mut self.scratch, id, key, operation, false, body);
        let mut sent = 0;
        for t in targets {
            out.send(t, frame.clone());
            sent += 1;
        }
        sent
    }

    /// Forgets an in-flight request (e.g. the owner timed it out). Returns
    /// whether it was still pending.
    pub fn abandon(&mut self, request: RequestId) -> bool {
        self.pending.remove(&request.0).is_some()
    }

    /// Fails every pending request addressed to `node` with
    /// [`SystemException::CommFailure`], returning the failed ids. Called
    /// by the owner when a peer is known to have crashed.
    pub fn fail_pending_to(&mut self, node: NodeId) -> Vec<RequestId> {
        let ids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.target == node)
            .map(|(&id, _)| id)
            .collect();
        let mut failed: Vec<RequestId> = ids
            .into_iter()
            .map(|id| {
                self.pending.remove(&id);
                RequestId(id)
            })
            .collect();
        failed.sort();
        failed
    }

    /// Answers an [`OrbIncoming::Upcall`].
    pub fn send_reply(
        &mut self,
        to: NodeId,
        request_id: u64,
        result: Result<Bytes, ServantError>,
        out: &mut Outbox,
    ) {
        let (status, body) = match result {
            Ok(b) => (ReplyStatus::NoException, b),
            Err(ServantError::User(b)) => (ReplyStatus::UserException, b),
            Err(ServantError::BadOperation(_)) => (
                ReplyStatus::SystemException(SystemException::BadOperation),
                Bytes::new(),
            ),
        };
        let msg = GiopMessage::Reply {
            request_id,
            status,
            body,
        };
        out.send(to, msg.to_frame());
    }

    /// Processes one incoming packet.
    ///
    /// Requests for registered servants are dispatched and answered here;
    /// everything the owner must act on is returned. Non-GIOP or
    /// malformed packets are dropped (returned as `None`), as are replies
    /// to unknown (abandoned) requests.
    pub fn handle_packet(&mut self, pkt: &Packet, out: &mut Outbox) -> Option<OrbIncoming> {
        let msg = match GiopMessage::from_frame(&pkt.payload) {
            Ok(m) => m,
            Err(FrameError::BadHeader | FrameError::BadBody(_)) => return None,
        };
        match msg {
            GiopMessage::Request {
                request_id,
                object_key,
                operation,
                response_expected,
                body,
            } => match self.adapter.dispatch(&object_key, &operation, &body) {
                Some(result) => {
                    if response_expected {
                        self.send_reply(pkt.src, request_id, result, out);
                    }
                    None
                }
                None => Some(OrbIncoming::Upcall {
                    from: pkt.src,
                    request_id,
                    key: object_key,
                    operation,
                    body,
                    response_expected,
                }),
            },
            GiopMessage::Reply {
                request_id,
                status,
                body,
            } => {
                self.pending.remove(&request_id)?;
                let result = match status {
                    ReplyStatus::NoException => Ok(body),
                    ReplyStatus::UserException => Err(InvokeError::User(body)),
                    ReplyStatus::SystemException(se) => Err(InvokeError::System(se)),
                };
                Some(OrbIncoming::Reply {
                    request: RequestId(request_id),
                    result,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_net::sim::{NodeEvent, Sim, SimConfig, SimNode};
    use newtop_net::site::Site;
    use newtop_net::time::SimTime;

    /// A sim node hosting an OrbCore with an "add_one" servant.
    struct ServerNode {
        orb: Option<OrbCore>,
    }

    impl SimNode for ServerNode {
        fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
            if let NodeEvent::Packet(pkt) = ev {
                if let Some(orb) = self.orb.as_mut() {
                    let _ = orb.handle_packet(&pkt, out);
                }
            }
        }
    }

    /// A sim node that calls "add_one" on the server and records the reply.
    struct ClientNode {
        orb: Option<OrbCore>,
        server: ObjectRef,
        reply: Option<Result<Bytes, InvokeError>>,
    }

    impl SimNode for ClientNode {
        fn on_event(&mut self, _now: SimTime, ev: NodeEvent, out: &mut Outbox) {
            let orb = self.orb.as_mut().expect("orb installed");
            match ev {
                NodeEvent::Start => {
                    let mut enc = crate::cdr::CdrEncoder::new();
                    enc.write_u32(41);
                    orb.invoke(&self.server, "add_one", enc.finish(), out);
                }
                NodeEvent::Packet(pkt) => {
                    if let Some(OrbIncoming::Reply { result, .. }) = orb.handle_packet(&pkt, out) {
                        self.reply = Some(result);
                    }
                }
                NodeEvent::Timer(..) => {}
            }
        }
    }

    fn add_one_servant() -> Box<dyn crate::servant::Servant> {
        Box::new(|op: &str, args: &[u8]| {
            if op != "add_one" {
                return Err(ServantError::BadOperation(op.to_owned()));
            }
            let mut dec = crate::cdr::CdrDecoder::new(args);
            let v = dec
                .read_u32()
                .map_err(|_| ServantError::User(Bytes::new()))?;
            let mut enc = crate::cdr::CdrEncoder::new();
            enc.write_u32(v + 1);
            Ok(enc.finish())
        })
    }

    fn run_invocation(op_registered: bool) -> Option<Result<Bytes, InvokeError>> {
        let mut sim = Sim::new(SimConfig::default());
        let server_id = sim.add_node(Site::Lan, Box::new(ServerNode { orb: None }));
        let client_id = sim.add_node(
            Site::Lan,
            Box::new(ClientNode {
                orb: None,
                server: ObjectRef::new(server_id, "svc"),
                reply: None,
            }),
        );
        {
            let mut orb = OrbCore::new(server_id);
            if op_registered {
                orb.adapter_mut().activate("svc", add_one_servant());
            }
            sim.node_mut::<ServerNode>(server_id).unwrap().orb = Some(orb);
            sim.node_mut::<ClientNode>(client_id).unwrap().orb = Some(OrbCore::new(client_id));
        }
        sim.run_until_idle();
        sim.node_mut::<ClientNode>(client_id).unwrap().reply.take()
    }

    #[test]
    fn end_to_end_invocation_over_the_sim() {
        let reply = run_invocation(true).expect("reply arrived");
        let body = reply.expect("no exception");
        let mut dec = crate::cdr::CdrDecoder::new(&body);
        assert_eq!(dec.read_u32().unwrap(), 42);
    }

    #[test]
    fn missing_servant_surfaces_as_upcall_not_reply() {
        // With no servant registered the server just drops the upcall, so
        // the client never gets a reply.
        assert!(run_invocation(false).is_none());
    }

    /// Runs `f` against a fresh detached outbox and returns the sends it
    /// produced.
    fn collect_sends(f: impl FnOnce(&mut Outbox)) -> Vec<(NodeId, Bytes)> {
        let mut out = Outbox::detached(0);
        f(&mut out);
        out.into_parts().sends
    }

    #[test]
    fn bad_operation_becomes_system_exception() {
        let server_node = NodeId::from_index(0);
        let client_node = NodeId::from_index(1);
        let mut server = OrbCore::new(server_node);
        server.adapter_mut().activate("svc", add_one_servant());
        let mut client = OrbCore::new(client_node);
        let mut id = None;
        let mut sends = collect_sends(|out| {
            id = Some(client.invoke(
                &ObjectRef::new(server_node, "svc"),
                "no_such_op",
                Bytes::new(),
                out,
            ));
        });
        // Carry the request to the server by hand.
        let (dst, frame) = sends.pop().unwrap();
        assert_eq!(dst, server_node);
        let req = Packet {
            src: client_node,
            dst,
            payload: frame,
        };
        let mut sends = collect_sends(|out| {
            assert!(server.handle_packet(&req, out).is_none());
        });
        let (dst, frame) = sends.pop().unwrap();
        assert_eq!(dst, client_node);
        let rep = Packet {
            src: server_node,
            dst,
            payload: frame,
        };
        let mut incoming = None;
        collect_sends(|out| {
            incoming = client.handle_packet(&rep, out);
        });
        assert_eq!(
            incoming.unwrap(),
            OrbIncoming::Reply {
                request: id.unwrap(),
                result: Err(InvokeError::System(SystemException::BadOperation)),
            }
        );
    }

    #[test]
    fn abandoned_requests_ignore_late_replies() {
        let mut out = Outbox::detached(0);
        let server_node = NodeId::from_index(0);
        let mut client = OrbCore::new(NodeId::from_index(1));
        let id = client.invoke(
            &ObjectRef::new(server_node, "svc"),
            "op",
            Bytes::new(),
            &mut out,
        );
        assert!(client.abandon(id));
        assert!(!client.abandon(id));
        let reply = GiopMessage::Reply {
            request_id: 1,
            status: ReplyStatus::NoException,
            body: Bytes::new(),
        };
        let pkt = Packet {
            src: server_node,
            dst: client.local(),
            payload: reply.to_frame(),
        };
        assert!(client.handle_packet(&pkt, &mut out).is_none());
    }

    #[test]
    fn fail_pending_to_reports_only_that_node() {
        let mut out = Outbox::detached(0);
        let mut client = OrbCore::new(NodeId::from_index(9));
        let a = client.invoke(
            &ObjectRef::new(NodeId::from_index(1), "x"),
            "op",
            Bytes::new(),
            &mut out,
        );
        let _b = client.invoke(
            &ObjectRef::new(NodeId::from_index(2), "x"),
            "op",
            Bytes::new(),
            &mut out,
        );
        let failed = client.fail_pending_to(NodeId::from_index(1));
        assert_eq!(failed, vec![a]);
        assert_eq!(client.pending_count(), 1);
    }

    #[test]
    fn garbage_packets_are_dropped() {
        let mut out = Outbox::detached(0);
        let mut orb = OrbCore::new(NodeId::from_index(0));
        let pkt = Packet {
            src: NodeId::from_index(1),
            dst: NodeId::from_index(0),
            payload: Bytes::from_static(b"not giop at all"),
        };
        assert!(orb.handle_packet(&pkt, &mut out).is_none());
    }

    #[test]
    fn oneway_requests_do_not_track_pending() {
        let mut out = Outbox::detached(0);
        let mut orb = OrbCore::new(NodeId::from_index(0));
        orb.oneway(
            &ObjectRef::new(NodeId::from_index(1), "x"),
            "notify",
            Bytes::new(),
            &mut out,
        );
        assert_eq!(orb.pending_count(), 0);
    }

    #[test]
    fn oneway_fanout_shares_one_frame_across_recipients() {
        let targets: Vec<NodeId> = (1..=4).map(NodeId::from_index).collect();
        let mut orb = OrbCore::new(NodeId::from_index(0));
        let mut sent = 0;
        let sends = collect_sends(|out| {
            sent = orb.oneway_fanout(
                targets.iter().copied(),
                &ObjectKey::new("svc"),
                "notify",
                b"shared body",
                out,
            );
        });
        assert_eq!(sent, 4);
        assert_eq!(orb.pending_count(), 0, "fanout oneways are untracked");
        let dsts: Vec<NodeId> = sends.iter().map(|(d, _)| *d).collect();
        assert_eq!(dsts, targets);
        // Every recipient got the *same* frame — byte-identical and, with
        // `Bytes`, the same refcounted allocation.
        let first = &sends[0].1;
        for (_, frame) in &sends {
            assert_eq!(frame, first);
            assert_eq!(frame.as_ptr(), first.as_ptr(), "shared, not copied");
        }
        // And that frame is exactly what a per-recipient oneway would
        // have sent for the same request id.
        let expected = GiopMessage::Request {
            request_id: 1,
            object_key: ObjectKey::new("svc"),
            operation: "notify".to_owned(),
            response_expected: false,
            body: Bytes::from_static(b"shared body"),
        }
        .to_frame();
        assert_eq!(first, &expected);
    }
}
