//! The committed allowlist (`analyze.allow`).
//!
//! Each entry suppresses one (rule, file, fn) cluster and must carry a
//! one-line justification. The file is capped at 10 entries so the
//! allowlist stays an exception record, not an escape hatch; entries
//! that no longer match anything are themselves errors, so the file
//! cannot rot.

use crate::rules::Finding;
use std::fmt::Write as _;

/// One allowlist entry: suppresses findings for `rule` inside `fn` of
/// `file`, with a mandatory justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub func: String,
    pub reason: String,
    /// 1-based line in `analyze.allow`, for error reporting.
    pub line: u32,
}

/// Hard cap on allowlist size (acceptance criterion: ≤ 10 entries).
pub const MAX_ENTRIES: usize = 10;

/// Parses `analyze.allow` text. Lines are
/// `rule=<rule> file=<path> fn=<name> reason=<free text>`; blank lines
/// and `#` comments are skipped.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let entry = parse_line(l, line).map_err(|e| format!("analyze.allow:{line}: {e}"))?;
        entries.push(entry);
    }
    if entries.len() > MAX_ENTRIES {
        return Err(format!(
            "analyze.allow has {} entries; the cap is {MAX_ENTRIES} — fix violations instead of allowlisting them",
            entries.len()
        ));
    }
    Ok(entries)
}

fn parse_line(l: &str, line: u32) -> Result<AllowEntry, String> {
    let rest = l
        .strip_prefix("rule=")
        .ok_or("expected `rule=<rule> file=<path> fn=<name> reason=<text>`")?;
    let (rule, rest) = rest
        .split_once(" file=")
        .ok_or("missing ` file=` after the rule")?;
    let (file, rest) = rest
        .split_once(" fn=")
        .ok_or("missing ` fn=` after the file")?;
    let (func, reason) = rest
        .split_once(" reason=")
        .ok_or("missing ` reason=` after the fn")?;
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("the justification after `reason=` must not be empty".to_owned());
    }
    for (key, val) in [("rule", rule), ("file", file), ("fn", func)] {
        if val.trim().is_empty() || val.contains(char::is_whitespace) {
            return Err(format!("`{key}=` value must be a single non-empty token"));
        }
    }
    Ok(AllowEntry {
        rule: rule.to_owned(),
        file: file.to_owned(),
        func: func.to_owned(),
        reason: reason.to_owned(),
        line,
    })
}

/// Splits findings into (suppressed, surviving) and reports entries that
/// matched nothing as errors — a stale allowlist line means the
/// violation it justified is gone and the entry must be removed.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> Result<(Vec<Finding>, Vec<Finding>), String> {
    let mut used = vec![false; entries.len()];
    let mut suppressed = Vec::new();
    let mut surviving = Vec::new();
    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file && e.func == f.func);
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => surviving.push(f),
        }
    }
    let mut stale = String::new();
    for (e, u) in entries.iter().zip(&used) {
        if !u {
            let _ = writeln!(
                stale,
                "analyze.allow:{}: entry matches no finding (rule={} file={} fn={}); remove it",
                e.line, e.rule, e.file, e.func
            );
        }
    }
    if stale.is_empty() {
        Ok((suppressed, surviving))
    } else {
        Err(stale.trim_end().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, func: &str) -> Finding {
        Finding {
            file: file.to_owned(),
            line: 1,
            rule,
            func: func.to_owned(),
            kind: "k",
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_comments() {
        let e = parse(
            "# comment\n\nrule=determinism file=crates/flow/src/queue.rs fn=recv_timeout reason=condvar wall-clock deadline\n",
        )
        .unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "determinism");
        assert_eq!(e[0].func, "recv_timeout");
        assert_eq!(e[0].reason, "condvar wall-clock deadline");
        assert_eq!(e[0].line, 3);
    }

    #[test]
    fn rejects_missing_reason_and_overflow() {
        assert!(parse("rule=r file=f fn=g reason=").is_err());
        assert!(parse("rule=r file=f fn=g").is_err());
        let many = (0..11)
            .map(|i| format!("rule=r file=f{i} fn=g reason=x"))
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse(&many).unwrap_err();
        assert!(err.contains("cap is 10"), "{err}");
    }

    #[test]
    fn apply_suppresses_and_flags_stale() {
        let entries = parse(
            "rule=determinism file=a.rs fn=f reason=ok\nrule=bounded file=b.rs fn=g reason=ok",
        )
        .unwrap();
        // Both entries used: one suppressed, one survives.
        let (supp, surv) = apply(
            vec![
                finding("determinism", "a.rs", "f"),
                finding("bounded", "b.rs", "g"),
                finding("panic-free", "a.rs", "f"),
            ],
            &entries,
        )
        .unwrap();
        assert_eq!(supp.len(), 2);
        assert_eq!(surv.len(), 1);
        assert_eq!(surv[0].rule, "panic-free");
        // Stale entry errors.
        let err = apply(vec![finding("determinism", "a.rs", "f")], &entries).unwrap_err();
        assert!(err.contains("matches no finding"), "{err}");
    }
}
