//! The NewTop service object (NSO).
//!
//! One [`Nso`] runs beside each application object and multiplexes every
//! group its node participates in (Fig. 2 of the paper): it owns the
//! node's mini-ORB, its group-communication member, the client- and
//! server-side invocation cores, and the application's group servants.
//! Group-communication traffic, invocation messages and binding-control
//! requests all arrive as ORB traffic on the node's
//! [`newtop_gcs::NSO_OBJECT_KEY`] endpoint and are routed here.
//!
//! The NSO is sans-IO: the hosting runtime (simulator or threads) feeds
//! [`Nso::on_packet`] / [`Nso::on_timer`] and applies the queued outbox
//! actions; results surface through [`Nso::take_outputs`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use bytes::Bytes;

use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId, Liveness, OrderProtocol};
use newtop_gcs::member::{GcsError, GcsMember, GcsNet, GcsOutput};
use newtop_gcs::messages::GcsMessage;
use newtop_gcs::view::View;
use newtop_gcs::{GCS_OPERATION, NSO_OBJECT_KEY};
use newtop_invocation::api::{
    BindingStyle, CallId, InvCommand, OpenOptimisation, Replication, ReplyMode,
};
use newtop_invocation::client::{ClientCore, ClientError, ClientEvent};
use newtop_invocation::g2g::G2gCaller;
use newtop_invocation::server::ServerCore;
use newtop_invocation::INV_OPERATION;
use newtop_net::sim::{Outbox, Packet};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecode, CdrEncode};
use newtop_orb::ior::ObjectRef;
use newtop_orb::orb::{InvokeError, OrbCore, OrbIncoming, RequestId};
use newtop_orb::servant::ServantError;

use crate::control::CtrlMessage;
use crate::tags;
use crate::INV_CTRL_OPERATION;

/// The implementation of a replicated object: operations with marshalled
/// arguments and results. Executed in the server group's total order, so
/// deterministic servants stay replica-consistent.
pub trait GroupServant: Send {
    /// Executes one operation.
    fn invoke(&mut self, op: &str, args: &[u8]) -> Bytes;
}

impl<F> GroupServant for F
where
    F: FnMut(&str, &[u8]) -> Bytes + Send,
{
    fn invoke(&mut self, op: &str, args: &[u8]) -> Bytes {
        self(op, args)
    }
}

/// Errors from the NSO API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NsoError {
    /// This node does not host the named server group.
    NotAServer(GroupId),
    /// No binding or monitor attachment exists under that group.
    Unbound(GroupId),
    /// The group id is already in use on this node.
    GroupInUse(GroupId),
    /// An error from the group communication layer.
    Gcs(GcsError),
    /// An error from the client invocation core.
    Client(ClientError),
}

impl fmt::Display for NsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsoError::NotAServer(g) => write!(f, "node does not serve group {g}"),
            NsoError::Unbound(g) => write!(f, "no binding for group {g}"),
            NsoError::GroupInUse(g) => write!(f, "group id already in use: {g}"),
            NsoError::Gcs(e) => write!(f, "group communication error: {e}"),
            NsoError::Client(e) => write!(f, "invocation error: {e}"),
        }
    }
}

impl Error for NsoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NsoError::Gcs(e) => Some(e),
            NsoError::Client(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GcsError> for NsoError {
    fn from(e: GcsError) -> Self {
        NsoError::Gcs(e)
    }
}

impl From<ClientError> for NsoError {
    fn from(e: ClientError) -> Self {
        NsoError::Client(e)
    }
}

/// Things the NSO reports to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NsoOutput {
    /// A binding initiated with [`Nso::bind_open`] / [`Nso::bind_closed`]
    /// is ready for invocations.
    BindingReady {
        /// The client/server group of the binding.
        group: GroupId,
    },
    /// A binding could not be established (server unreachable or not
    /// serving).
    BindFailed {
        /// The client/server group that failed.
        group: GroupId,
    },
    /// An invocation completed with the replies its mode required.
    InvocationComplete {
        /// The completed call.
        call: CallId,
        /// `(server, result)` pairs.
        replies: Vec<(NodeId, Bytes)>,
    },
    /// An open binding's request manager vanished (§4.1): rebind and
    /// retry.
    BindingBroken {
        /// The broken client/server group.
        group: GroupId,
        /// The manager that disappeared.
        manager: NodeId,
        /// Calls still pending on the binding.
        pending_calls: Vec<u64>,
    },
    /// A peer-group multicast was delivered.
    PeerDeliver {
        /// The peer group.
        group: GroupId,
        /// The multicasting member.
        sender: NodeId,
        /// Application payload.
        payload: Bytes,
    },
    /// A group-to-group call completed.
    G2gComplete {
        /// The origin (client) group.
        origin: GroupId,
        /// The origin group's call number.
        number: u64,
        /// `(server, result)` pairs.
        replies: Vec<(NodeId, Bytes)>,
    },
    /// A view change in any group this node belongs to.
    ViewChanged {
        /// The group.
        group: GroupId,
        /// Its new view.
        view: View,
    },
    /// A plain (non-group) ORB invocation issued with
    /// [`Nso::plain_invoke`] completed.
    PlainReply {
        /// The request.
        request: RequestId,
        /// Its outcome.
        result: Result<Bytes, InvokeError>,
    },
    /// This node became the primary of a passively replicated server
    /// group and replayed its backlog.
    Promoted {
        /// The server group.
        group: GroupId,
        /// Requests replayed from the backlog.
        replayed: usize,
    },
}

/// Options for creating a binding.
#[derive(Clone, Debug)]
pub struct BindOptions {
    /// Total-order protocol of the client/server group.
    pub ordering: OrderProtocol,
    /// Time-silence period of the client/server group.
    pub time_silence: Duration,
    /// How long to wait for the servers' acknowledgements.
    pub timeout: Duration,
    /// Explicit group id; autogenerated when `None`.
    pub group_id: Option<GroupId>,
}

impl Default for BindOptions {
    /// Asymmetric ordering and a 100 ms time-silence period. Client/server
    /// groups are numerous (one per client), so their heartbeats are
    /// deliberately coarser than a server group's: a server in n bindings
    /// pays n per-member null fan-outs per period.
    fn default() -> Self {
        BindOptions {
            ordering: OrderProtocol::Asymmetric,
            time_silence: Duration::from_millis(100),
            timeout: Duration::from_secs(2),
            group_id: None,
        }
    }
}

#[derive(Clone, Debug)]
enum GroupRole {
    /// I am the client of this client/server group.
    ClientBinding,
    /// I am a replica of this server group.
    ServerGroup,
    /// I am the server of this client/server group; requests route to the
    /// named server group's core.
    Served { server_group: GroupId },
    /// I am the request manager of this client monitor group.
    MonitorManager { server_group: GroupId },
    /// I am an origin-group member in this monitor group.
    MonitorCaller,
    /// A plain peer group: deliveries go straight to the application.
    Peer,
}

#[derive(Debug)]
struct PendingBind {
    style: BindingStyle,
    members: Vec<NodeId>,
    server_count: usize,
    outstanding: usize,
    config: GroupConfig,
}

#[derive(Debug)]
enum NsoTimer {
    BindTimeout(GroupId),
}

/// The NewTop service object. See the [module docs](self).
pub struct Nso {
    node: NodeId,
    orb: OrbCore,
    gcs: GcsMember,
    client: ClientCore,
    servers: HashMap<GroupId, ServerCore>,
    servants: HashMap<GroupId, Box<dyn GroupServant>>,
    g2g_callers: HashMap<GroupId, G2gCaller>,
    roles: HashMap<GroupId, GroupRole>,
    pending_bind_requests: HashMap<RequestId, GroupId>,
    binds: HashMap<GroupId, PendingBind>,
    was_primary: HashMap<GroupId, bool>,
    nso_timers: HashMap<u64, NsoTimer>,
    next_tag: u64,
    next_binding: u64,
    outputs: Vec<NsoOutput>,
}

impl fmt::Debug for Nso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Nso")
            .field("node", &self.node)
            .field("groups", &self.roles.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Nso {
    /// Creates the service object for `node`.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        Nso {
            node,
            orb: OrbCore::new(node),
            gcs: GcsMember::new(node, tags::GCS_BASE),
            client: ClientCore::new(node),
            servers: HashMap::new(),
            servants: HashMap::new(),
            g2g_callers: HashMap::new(),
            roles: HashMap::new(),
            pending_bind_requests: HashMap::new(),
            binds: HashMap::new(),
            was_primary: HashMap::new(),
            nso_timers: HashMap::new(),
            next_tag: 0,
            next_binding: 1,
            outputs: Vec::new(),
        }
    }

    /// The hosting node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current view of a group this node belongs to.
    #[must_use]
    pub fn view_of(&self, group: &GroupId) -> Option<&View> {
        self.gcs.view_of(group)
    }

    /// Group-communication diagnostics for one group.
    #[doc(hidden)]
    #[must_use]
    pub fn gcs_diagnostics(&self, group: &GroupId) -> String {
        self.gcs.diagnostics(group)
    }

    /// Server-core access for diagnostics.
    #[doc(hidden)]
    #[must_use]
    pub fn server_core(&self, group: &GroupId) -> Option<&ServerCore> {
        self.servers.get(group)
    }

    /// Drains the outputs produced since the last call. Runtimes loop on
    /// this after every event so application reactions (which may enqueue
    /// further outputs) are all surfaced.
    pub fn take_outputs(&mut self) -> Vec<NsoOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// Whether a timer tag belongs to this NSO (as opposed to the
    /// application layer).
    #[must_use]
    pub fn owns_tag(&self, tag: u64) -> bool {
        self.gcs.owns_tag(tag) || self.nso_timers.contains_key(&tag)
    }

    // --- server-side setup ------------------------------------------------

    /// Statically creates a server group on this replica (every listed
    /// member must call this with the same arguments), with the given
    /// replication discipline and open-group optimisation policy.
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from group creation.
    #[allow(clippy::too_many_arguments)]
    pub fn create_server_group(
        &mut self,
        group: GroupId,
        members: Vec<NodeId>,
        replication: Replication,
        optimisation: OpenOptimisation,
        config: GroupConfig,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        let outs = {
            let mut net = GcsNet::new(&mut self.orb, out);
            self.gcs
                .create_group(group.clone(), config, members.clone(), now, &mut net)?
        };
        let mut core = ServerCore::new(self.node, group.clone(), replication, optimisation);
        core.set_server_view(members);
        self.was_primary.insert(group.clone(), core.is_primary());
        self.servers.insert(group.clone(), core);
        self.roles.insert(group.clone(), GroupRole::ServerGroup);
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// Registers the application servant executed for a server group's
    /// requests.
    pub fn register_group_servant(&mut self, group: GroupId, servant: Box<dyn GroupServant>) {
        self.servants.insert(group, servant);
    }

    /// The designated request manager of a server group this node hosts
    /// (for the restricted-group optimisation).
    #[must_use]
    pub fn designated_manager(&self, server_group: &GroupId) -> Option<NodeId> {
        self.servers.get(server_group)?.designated_manager()
    }

    // --- client-side bindings ----------------------------------------------

    /// Starts an **open** binding: asks `manager` (a member of
    /// `server_group`) to form a two-member client/server group.
    /// Completion surfaces as [`NsoOutput::BindingReady`].
    ///
    /// # Errors
    ///
    /// [`NsoError::GroupInUse`] if the chosen group id already exists.
    pub fn bind_open(
        &mut self,
        server_group: GroupId,
        manager: NodeId,
        opts: BindOptions,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupId, NsoError> {
        let members = vec![self.node, manager];
        self.start_bind(
            server_group,
            members,
            BindingStyle::Open { manager },
            0,
            opts,
            now,
            out,
        )
    }

    /// Starts a **closed** binding: asks every server to form a
    /// client/server group containing the client and the full server
    /// group. Completion surfaces as [`NsoOutput::BindingReady`].
    ///
    /// # Errors
    ///
    /// [`NsoError::GroupInUse`] if the chosen group id already exists.
    pub fn bind_closed(
        &mut self,
        server_group: GroupId,
        servers: Vec<NodeId>,
        opts: BindOptions,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupId, NsoError> {
        let mut members = vec![self.node];
        members.extend(servers.iter().copied());
        let count = servers.len();
        self.start_bind(
            server_group,
            members,
            BindingStyle::Closed,
            count,
            opts,
            now,
            out,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn start_bind(
        &mut self,
        server_group: GroupId,
        members: Vec<NodeId>,
        style: BindingStyle,
        server_count: usize,
        opts: BindOptions,
        _now: SimTime,
        out: &mut Outbox,
    ) -> Result<GroupId, NsoError> {
        let group = opts.group_id.unwrap_or_else(|| {
            let id = GroupId::new(format!("cs:{}:{}", self.node, self.next_binding));
            self.next_binding += 1;
            id
        });
        if self.roles.contains_key(&group) || self.binds.contains_key(&group) {
            return Err(NsoError::GroupInUse(group));
        }
        let config = GroupConfig {
            ordering: opts.ordering,
            liveness: Liveness::EventDriven,
            time_silence: opts.time_silence,
            ..GroupConfig::default()
        };
        let ctrl = CtrlMessage::BindRequest {
            group: group.clone(),
            client: self.node,
            server_group: server_group.clone(),
            members: members.clone(),
            closed: style == BindingStyle::Closed,
            ordering: opts.ordering,
            time_silence_micros: opts.time_silence.as_micros() as u64,
        };
        let body = ctrl.to_cdr();
        let servers: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&m| m != self.node)
            .collect();
        for &s in &servers {
            let req = self.orb.invoke(
                &ObjectRef::new(s, NSO_OBJECT_KEY),
                INV_CTRL_OPERATION,
                body.clone(),
                out,
            );
            self.pending_bind_requests.insert(req, group.clone());
        }
        self.binds.insert(
            group.clone(),
            PendingBind {
                style,
                members,
                server_count,
                outstanding: servers.len(),
                config,
            },
        );
        let tag = self.alloc_tag(NsoTimer::BindTimeout(group.clone()));
        out.set_timer(opts.timeout, tag);
        Ok(group)
    }

    /// Tears down a client binding: leaves the client/server group and
    /// forgets it.
    ///
    /// # Errors
    ///
    /// [`NsoError::Unbound`] if no such binding exists.
    pub fn unbind(
        &mut self,
        group: &GroupId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        if !matches!(self.roles.get(group), Some(GroupRole::ClientBinding)) {
            return Err(NsoError::Unbound(group.clone()));
        }
        self.roles.remove(group);
        self.client.remove_binding(group);
        let outs = {
            let mut net = GcsNet::new(&mut self.orb, out);
            self.gcs
                .leave_group(group, now, &mut net)
                .unwrap_or_default()
        };
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// Invokes an operation over a binding with the given reply mode.
    /// Completion surfaces as [`NsoOutput::InvocationComplete`].
    ///
    /// # Errors
    ///
    /// [`NsoError::Client`] if the binding is unknown.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke(
        &mut self,
        binding: &GroupId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<CallId, NsoError> {
        let (call, cmds, events) = self.client.invoke(binding, op, args, mode)?;
        self.run_commands(cmds, now, out);
        self.map_client_events(events, now, out);
        Ok(call)
    }

    /// Re-issues a pending call over a (new) binding with its original
    /// call number (§4.1 rebind-and-retry).
    ///
    /// # Errors
    ///
    /// [`NsoError::Client`] if the call or binding is unknown.
    pub fn retry(
        &mut self,
        call_number: u64,
        binding: &GroupId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        let cmds = self.client.retry(call_number, binding)?;
        self.run_commands(cmds, now, out);
        Ok(())
    }

    // --- peer groups ---------------------------------------------------------

    /// Statically creates a peer group (every member calls this with the
    /// same arguments). Deliveries surface as [`NsoOutput::PeerDeliver`].
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] from group creation.
    pub fn create_peer_group(
        &mut self,
        group: GroupId,
        members: Vec<NodeId>,
        config: GroupConfig,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        let outs = {
            let mut net = GcsNet::new(&mut self.orb, out);
            self.gcs
                .create_group(group.clone(), config, members, now, &mut net)?
        };
        self.roles.insert(group, GroupRole::Peer);
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// Dynamically joins an existing peer group through `contact`, a
    /// current member (the GCS join protocol: the contact triggers a view
    /// change that admits this node). Completion surfaces as a
    /// [`NsoOutput::ViewChanged`] whose view contains this node.
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] (e.g. already a member).
    pub fn join_peer_group(
        &mut self,
        group: GroupId,
        config: GroupConfig,
        contact: NodeId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        {
            let mut net = GcsNet::new(&mut self.orb, out);
            self.gcs.join_group(group.clone(), config, contact, now, &mut net)?;
        }
        self.roles.insert(group, GroupRole::Peer);
        Ok(())
    }

    /// Gracefully leaves a peer group; the remaining members install a
    /// view without this node.
    ///
    /// # Errors
    ///
    /// [`NsoError::Unbound`] if this node is not a member.
    pub fn leave_peer_group(
        &mut self,
        group: &GroupId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        if !matches!(self.roles.get(group), Some(GroupRole::Peer)) {
            return Err(NsoError::Unbound(group.clone()));
        }
        let outs = {
            let mut net = GcsNet::new(&mut self.orb, out);
            self.gcs.leave_group(group, now, &mut net)?
        };
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// One-way multicast in a peer group (the peer-participation mode).
    ///
    /// # Errors
    ///
    /// Any [`GcsError`] if the node is not a member.
    pub fn peer_send(
        &mut self,
        group: &GroupId,
        payload: Bytes,
        order: DeliveryOrder,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        let mut net = GcsNet::new(&mut self.orb, out);
        self.gcs.multicast(group, order, payload, now, &mut net)?;
        Ok(())
    }

    // --- group-to-group -------------------------------------------------------

    /// Statically sets up a client monitor group (Fig. 6) for
    /// group-to-group invocation: `members` must be the origin group's
    /// members plus the request `manager` (a member of `server_group`),
    /// and every one of them calls this with the same arguments.
    ///
    /// # Errors
    ///
    /// [`NsoError::NotAServer`] at the manager if it does not host
    /// `server_group`; any [`GcsError`] from group creation.
    #[allow(clippy::too_many_arguments)]
    pub fn setup_monitor_group(
        &mut self,
        monitor: GroupId,
        origin: GroupId,
        manager: NodeId,
        server_group: GroupId,
        members: Vec<NodeId>,
        config: GroupConfig,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), NsoError> {
        if self.node == manager && !self.servers.contains_key(&server_group) {
            return Err(NsoError::NotAServer(server_group));
        }
        let outs = {
            let mut net = GcsNet::new(&mut self.orb, out);
            self.gcs
                .create_group(monitor.clone(), config, members, now, &mut net)?
        };
        if self.node == manager {
            self.servers
                .get_mut(&server_group)
                .expect("checked")
                .register_monitor_group(monitor.clone(), origin);
            self.roles
                .insert(monitor, GroupRole::MonitorManager { server_group });
        } else {
            self.g2g_callers.insert(
                monitor.clone(),
                G2gCaller::new(self.node, origin, monitor.clone()),
            );
            self.roles.insert(monitor, GroupRole::MonitorCaller);
        }
        self.route_gcs(outs, now, out);
        Ok(())
    }

    /// Issues this origin-group member's copy of a group-to-group call.
    /// All origin members must call in the same relative order.
    /// Completion surfaces as [`NsoOutput::G2gComplete`].
    ///
    /// # Errors
    ///
    /// [`NsoError::Unbound`] if the monitor group is not attached.
    #[allow(clippy::too_many_arguments)]
    pub fn g2g_invoke(
        &mut self,
        monitor: &GroupId,
        op: &str,
        args: Bytes,
        mode: ReplyMode,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<u64, NsoError> {
        let caller = self
            .g2g_callers
            .get_mut(monitor)
            .ok_or_else(|| NsoError::Unbound(monitor.clone()))?;
        let (number, cmds, done) = caller.invoke(op, args, mode);
        if let Some(done) = done {
            self.outputs.push(NsoOutput::G2gComplete {
                origin: done.origin,
                number: done.number,
                replies: done.replies,
            });
        }
        self.run_commands(cmds, now, out);
        Ok(number)
    }

    // --- plain ORB access (the non-replicated baseline) -------------------------

    /// Issues a plain one-to-one ORB request (no groups involved). The
    /// reply surfaces as [`NsoOutput::PlainReply`].
    pub fn plain_invoke(
        &mut self,
        target: &ObjectRef,
        op: &str,
        args: Bytes,
        out: &mut Outbox,
    ) -> RequestId {
        self.orb.invoke(target, op, args, out)
    }

    /// Registers an ordinary (non-group) servant in the node's object
    /// adapter; the ORB answers its requests directly.
    pub fn register_plain_servant(
        &mut self,
        key: &str,
        servant: Box<dyn newtop_orb::servant::Servant>,
    ) {
        self.orb.adapter_mut().activate(key, servant);
    }

    // --- event entry points -------------------------------------------------------

    /// Feeds one incoming packet. Outputs accumulate for
    /// [`Nso::take_outputs`].
    pub fn on_packet(&mut self, pkt: &Packet, now: SimTime, out: &mut Outbox) {
        let Some(incoming) = self.orb.handle_packet(pkt, out) else {
            return;
        };
        match incoming {
            OrbIncoming::Reply { request, result } => {
                if let Some(group) = self.pending_bind_requests.remove(&request) {
                    self.on_bind_ack(group, result.is_ok(), now, out);
                } else {
                    self.outputs.push(NsoOutput::PlainReply { request, result });
                }
            }
            OrbIncoming::Upcall {
                from,
                request_id,
                key,
                operation,
                body,
                response_expected,
            } => {
                if key.as_str() != NSO_OBJECT_KEY {
                    if response_expected {
                        self.orb.send_reply(
                            from,
                            request_id,
                            Err(ServantError::BadOperation(operation)),
                            out,
                        );
                    }
                    return;
                }
                match operation.as_str() {
                    GCS_OPERATION => {
                        if let Ok(msg) = GcsMessage::from_cdr(&body) {
                            let outs = {
                                let mut net = GcsNet::new(&mut self.orb, out);
                                self.gcs.on_message(msg, now, &mut net)
                            };
                            self.route_gcs(outs, now, out);
                        }
                    }
                    INV_OPERATION => {
                        let events = self.client.on_message(&body);
                        self.map_client_events(events, now, out);
                    }
                    INV_CTRL_OPERATION => {
                        let result = self.handle_ctrl(&body, now, out);
                        if response_expected {
                            self.orb.send_reply(from, request_id, result, out);
                        }
                    }
                    other => {
                        if response_expected {
                            self.orb.send_reply(
                                from,
                                request_id,
                                Err(ServantError::BadOperation(other.to_owned())),
                                out,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Feeds a fired timer whose tag this NSO owns.
    pub fn on_timer(&mut self, tag: u64, now: SimTime, out: &mut Outbox) {
        if self.gcs.owns_tag(tag) {
            let outs = {
                let mut net = GcsNet::new(&mut self.orb, out);
                self.gcs.on_timer(tag, now, &mut net)
            };
            self.route_gcs(outs, now, out);
            return;
        }
        if let Some(timer) = self.nso_timers.remove(&tag) {
            match timer {
                NsoTimer::BindTimeout(group) => {
                    if self.binds.remove(&group).is_some() {
                        self.pending_bind_requests.retain(|_, g| g != &group);
                        self.outputs.push(NsoOutput::BindFailed { group });
                    }
                }
            }
        }
    }

    // --- internals ---------------------------------------------------------------

    fn alloc_tag(&mut self, timer: NsoTimer) -> u64 {
        let tag = tags::NSO_BASE + self.next_tag;
        self.next_tag += 1;
        self.nso_timers.insert(tag, timer);
        tag
    }

    /// Server side of the binding-control protocol.
    fn handle_ctrl(
        &mut self,
        body: &[u8],
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<Bytes, ServantError> {
        let msg = CtrlMessage::from_cdr(body)
            .map_err(|_| ServantError::User(Bytes::from_static(b"malformed control message")))?;
        match msg {
            CtrlMessage::BindRequest {
                group,
                client,
                server_group,
                members,
                closed,
                ordering,
                time_silence_micros,
            } => {
                if !self.servers.contains_key(&server_group) {
                    return Err(ServantError::User(Bytes::from_static(
                        b"not a member of that server group",
                    )));
                }
                if !self.roles.contains_key(&group) {
                    let config = GroupConfig {
                        ordering,
                        liveness: Liveness::EventDriven,
                        time_silence: Duration::from_micros(time_silence_micros),
                        ..GroupConfig::default()
                    };
                    let outs = {
                        let mut net = GcsNet::new(&mut self.orb, out);
                        self.gcs
                            .create_group(group.clone(), config, members, now, &mut net)
                            .map_err(|_| {
                                ServantError::User(Bytes::from_static(b"group creation failed"))
                            })?
                    };
                    self.servers
                        .get_mut(&server_group)
                        .expect("checked")
                        .register_client_group(group.clone(), client, closed);
                    self.roles
                        .insert(group.clone(), GroupRole::Served { server_group });
                    self.route_gcs(outs, now, out);
                }
                Ok(Bytes::new())
            }
        }
    }

    /// Client side: one server acknowledged (or refused) a bind.
    fn on_bind_ack(&mut self, group: GroupId, ok: bool, now: SimTime, out: &mut Outbox) {
        let Some(bind) = self.binds.get_mut(&group) else {
            return; // timed out already
        };
        if !ok {
            self.binds.remove(&group);
            self.pending_bind_requests.retain(|_, g| g != &group);
            self.outputs.push(NsoOutput::BindFailed { group });
            return;
        }
        bind.outstanding = bind.outstanding.saturating_sub(1);
        if bind.outstanding > 0 {
            return;
        }
        let bind = self.binds.remove(&group).expect("present");
        let outs = {
            let mut net = GcsNet::new(&mut self.orb, out);
            match self.gcs.create_group(
                group.clone(),
                bind.config.clone(),
                bind.members.clone(),
                now,
                &mut net,
            ) {
                Ok(o) => o,
                Err(_) => {
                    self.outputs.push(NsoOutput::BindFailed { group });
                    return;
                }
            }
        };
        self.client
            .register_binding(group.clone(), bind.style.clone(), bind.server_count);
        self.roles.insert(group.clone(), GroupRole::ClientBinding);
        self.outputs.push(NsoOutput::BindingReady { group });
        self.route_gcs(outs, now, out);
    }

    fn run_commands(&mut self, cmds: Vec<InvCommand>, now: SimTime, out: &mut Outbox) {
        for cmd in cmds {
            match cmd {
                InvCommand::Multicast { group, payload } => {
                    let mut net = GcsNet::new(&mut self.orb, out);
                    let _ = self
                        .gcs
                        .multicast(&group, DeliveryOrder::Total, payload, now, &mut net);
                }
                InvCommand::Direct { to, payload } => {
                    self.orb.oneway(
                        &ObjectRef::new(to, NSO_OBJECT_KEY),
                        INV_OPERATION,
                        payload,
                        out,
                    );
                }
            }
        }
    }

    fn map_client_events(&mut self, events: Vec<ClientEvent>, now: SimTime, out: &mut Outbox) {
        for ev in events {
            match ev {
                ClientEvent::Complete { call, replies } => {
                    self.outputs
                        .push(NsoOutput::InvocationComplete { call, replies });
                }
                ClientEvent::BindingBroken {
                    group,
                    manager,
                    pending_calls,
                } => {
                    self.roles.remove(&group);
                    let _ = {
                        let mut net = GcsNet::new(&mut self.orb, out);
                        self.gcs.leave_group(&group, now, &mut net)
                    };
                    self.outputs.push(NsoOutput::BindingBroken {
                        group,
                        manager,
                        pending_calls,
                    });
                }
            }
        }
    }

    fn route_gcs(&mut self, outs: Vec<GcsOutput>, now: SimTime, out: &mut Outbox) {
        for o in outs {
            match o {
                GcsOutput::Delivered {
                    group,
                    sender,
                    payload,
                    ..
                } => self.route_delivery(&group, sender, payload, now, out),
                GcsOutput::ViewInstalled { group, view, .. } => {
                    self.route_view_change(&group, &view, now, out);
                    self.outputs.push(NsoOutput::ViewChanged { group, view });
                }
                GcsOutput::LeftGroup { group } => {
                    self.roles.remove(&group);
                }
            }
        }
    }

    fn route_delivery(
        &mut self,
        group: &GroupId,
        sender: NodeId,
        payload: Bytes,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(role) = self.roles.get(group).cloned() else {
            return;
        };
        match role {
            GroupRole::ClientBinding => {
                let events = self.client.on_message(&payload);
                self.map_client_events(events, now, out);
            }
            GroupRole::ServerGroup => {
                self.serve_delivery(group.clone(), group, sender, &payload, now, out);
            }
            GroupRole::Served { server_group } | GroupRole::MonitorManager { server_group } => {
                self.serve_delivery(server_group, group, sender, &payload, now, out);
            }
            GroupRole::MonitorCaller => {
                if let Some(caller) = self.g2g_callers.get_mut(group) {
                    if let Some(done) = caller.on_delivered(group, &payload) {
                        self.outputs.push(NsoOutput::G2gComplete {
                            origin: done.origin,
                            number: done.number,
                            replies: done.replies,
                        });
                    }
                }
            }
            GroupRole::Peer => {
                self.outputs.push(NsoOutput::PeerDeliver {
                    group: group.clone(),
                    sender,
                    payload,
                });
            }
        }
    }

    /// Routes a delivery to a server core, running the group servant.
    #[allow(clippy::too_many_arguments)]
    fn serve_delivery(
        &mut self,
        server_group: GroupId,
        delivered_in: &GroupId,
        sender: NodeId,
        payload: &[u8],
        now: SimTime,
        out: &mut Outbox,
    ) {
        let cmds = {
            let Some(core) = self.servers.get_mut(&server_group) else {
                return;
            };
            let mut servant = self.servants.get_mut(&server_group);
            let mut exec = |op: &str, args: &[u8]| -> Bytes {
                match servant {
                    Some(ref mut s) => s.invoke(op, args),
                    None => Bytes::new(),
                }
            };
            core.on_delivered(delivered_in, sender, payload, &mut exec)
        };
        self.run_commands(cmds, now, out);
    }

    fn route_view_change(&mut self, group: &GroupId, view: &View, now: SimTime, out: &mut Outbox) {
        let Some(role) = self.roles.get(group).cloned() else {
            return;
        };
        match role {
            GroupRole::ClientBinding => {
                let events = self.client.on_binding_view_change(group, view.members());
                self.map_client_events(events, now, out);
            }
            GroupRole::ServerGroup => {
                let (replayed, quorum_cmds) = {
                    let Some(core) = self.servers.get_mut(group) else {
                        return;
                    };
                    let quorum_cmds = core.set_server_view(view.members().to_vec());
                    let was = self.was_primary.insert(group.clone(), core.is_primary());
                    if core.replication() == Replication::Passive
                        && core.is_primary()
                        && was == Some(false)
                    {
                        let mut servant = self.servants.get_mut(group);
                        let mut exec = |op: &str, args: &[u8]| -> Bytes {
                            match servant {
                                Some(ref mut s) => s.invoke(op, args),
                                None => Bytes::new(),
                            }
                        };
                        (Some(core.promote(&mut exec)), quorum_cmds)
                    } else {
                        (None, quorum_cmds)
                    }
                };
                self.run_commands(quorum_cmds, now, out);
                if let Some(replayed) = replayed {
                    self.outputs.push(NsoOutput::Promoted {
                        group: group.clone(),
                        replayed,
                    });
                }
            }
            GroupRole::Served { server_group } => {
                // If the client departed, the binding is dead: drop it.
                if view.len() <= 1 {
                    if let Some(core) = self.servers.get_mut(&server_group) {
                        core.remove_client_group(group);
                    }
                    self.roles.remove(group);
                    let _ = {
                        let mut net = GcsNet::new(&mut self.orb, out);
                        self.gcs.leave_group(group, now, &mut net)
                    };
                }
            }
            GroupRole::MonitorManager { .. } | GroupRole::MonitorCaller | GroupRole::Peer => {}
        }
    }
}
