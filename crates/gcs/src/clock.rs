//! Logical clocks.
//!
//! NewTop's symmetric total-order protocol orders messages by Lamport
//! timestamp (ties broken by member id). One [`LamportClock`] is shared by
//! *all* the groups a member belongs to — that sharing is what keeps total
//! order causality-consistent for multi-group (overlapping-group) members,
//! the distinguishing property of the NewTop protocols.
//!
//! Causal delivery uses [`DepsVector`]s: per-sender delivered-sequence
//! vectors piggybacked on every data message.

use std::collections::BTreeMap;

use newtop_net::site::NodeId;

/// A Lamport logical clock.
///
/// `tick` before each send; `observe` on each receive. If event `a`
/// happened-before event `b`, then `ts(a) < ts(b)`.
///
/// ```
/// use newtop_gcs::clock::LamportClock;
///
/// let mut c = LamportClock::new();
/// let t1 = c.tick();
/// c.observe(100);
/// let t2 = c.tick();
/// assert!(t2 > 100 && t2 > t1);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LamportClock {
    value: u64,
}

impl LamportClock {
    /// A clock at zero.
    #[must_use]
    pub fn new() -> Self {
        LamportClock::default()
    }

    /// The current value (the timestamp of the last local event).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Advances for a local send event and returns the new timestamp.
    pub fn tick(&mut self) -> u64 {
        self.value += 1;
        self.value
    }

    /// Folds in a timestamp observed on a received message.
    pub fn observe(&mut self, ts: u64) {
        self.value = self.value.max(ts);
    }
}

/// A per-sender sequence-number vector: for causal delivery, the set of
/// messages (per sender, a prefix) that the sending member had delivered
/// when it multicast a message. A receiver may deliver the message only
/// after delivering at least that prefix from every sender.
///
/// Entries with sequence 0 are never stored (an empty prefix constrains
/// nothing).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepsVector {
    entries: BTreeMap<NodeId, u64>,
}

impl DepsVector {
    /// An empty vector (no causal constraints).
    #[must_use]
    pub fn new() -> Self {
        DepsVector::default()
    }

    /// Builds a vector from `(sender, delivered-up-to)` pairs, dropping
    /// zero entries.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, u64)>) -> Self {
        let mut v = DepsVector::new();
        for (n, s) in pairs {
            v.set(n, s);
        }
        v
    }

    /// Records that messages from `sender` up to `seq` are required.
    pub fn set(&mut self, sender: NodeId, seq: u64) {
        if seq == 0 {
            self.entries.remove(&sender);
        } else {
            self.entries.insert(sender, seq);
        }
    }

    /// The required prefix from `sender` (0 if unconstrained).
    #[must_use]
    pub fn get(&self, sender: NodeId) -> u64 {
        self.entries.get(&sender).copied().unwrap_or(0)
    }

    /// Iterates the non-zero entries in sender order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries.iter().map(|(&n, &s)| (n, s))
    }

    /// True if `delivered` covers every requirement: for each entry
    /// `(q, s)`, `delivered(q) >= s`.
    #[must_use]
    pub fn satisfied_by(&self, delivered: impl Fn(NodeId) -> u64) -> bool {
        self.entries.iter().all(|(&q, &s)| delivered(q) >= s)
    }

    /// Pointwise maximum with another vector.
    pub fn merge(&mut self, other: &DepsVector) {
        for (n, s) in other.iter() {
            let cur = self.get(n);
            if s > cur {
                self.set(n, s);
            }
        }
    }

    /// True if this vector requires nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of constrained senders.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `self ≤ other` pointwise — every requirement of `self` is implied
    /// by `other`. This is the happened-before-or-equal relation on
    /// dependency knowledge.
    #[must_use]
    pub fn dominated_by(&self, other: &DepsVector) -> bool {
        self.entries.iter().all(|(&q, &s)| other.get(q) >= s)
    }
}

impl FromIterator<(NodeId, u64)> for DepsVector {
    fn from_iter<I: IntoIterator<Item = (NodeId, u64)>>(iter: I) -> Self {
        DepsVector::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn lamport_is_monotonic() {
        let mut c = LamportClock::new();
        let mut prev = 0;
        for _ in 0..10 {
            let t = c.tick();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn lamport_observe_jumps_forward_never_back() {
        let mut c = LamportClock::new();
        c.tick();
        c.observe(50);
        assert_eq!(c.value(), 50);
        c.observe(3);
        assert_eq!(c.value(), 50);
        assert_eq!(c.tick(), 51);
    }

    #[test]
    fn deps_zero_entries_are_dropped() {
        let mut v = DepsVector::new();
        v.set(n(1), 0);
        assert!(v.is_empty());
        v.set(n(1), 2);
        assert_eq!(v.len(), 1);
        v.set(n(1), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn satisfied_by_checks_prefixes() {
        let v = DepsVector::from_pairs([(n(1), 3), (n(2), 1)]);
        assert!(v.satisfied_by(|q| if q == n(1) { 3 } else { 5 }));
        assert!(!v.satisfied_by(|q| if q == n(1) { 2 } else { 5 }));
        assert!(DepsVector::new().satisfied_by(|_| 0));
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = DepsVector::from_pairs([(n(1), 3), (n(2), 1)]);
        let b = DepsVector::from_pairs([(n(1), 2), (n(3), 7)]);
        a.merge(&b);
        assert_eq!(a.get(n(1)), 3);
        assert_eq!(a.get(n(2)), 1);
        assert_eq!(a.get(n(3)), 7);
    }

    #[test]
    fn domination_is_reflexive_and_ordered() {
        let a = DepsVector::from_pairs([(n(1), 2)]);
        let b = DepsVector::from_pairs([(n(1), 3), (n(2), 1)]);
        assert!(a.dominated_by(&a));
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    proptest! {
        #[test]
        fn prop_merge_dominates_both(
            xs in proptest::collection::vec((0u32..8, 1u64..100), 0..8),
            ys in proptest::collection::vec((0u32..8, 1u64..100), 0..8),
        ) {
            let a = DepsVector::from_pairs(xs.iter().map(|&(i, s)| (n(i), s)));
            let b = DepsVector::from_pairs(ys.iter().map(|&(i, s)| (n(i), s)));
            let mut m = a.clone();
            m.merge(&b);
            prop_assert!(a.dominated_by(&m));
            prop_assert!(b.dominated_by(&m));
        }

        #[test]
        fn prop_lamport_respects_happened_before(seq in proptest::collection::vec(0u64..1000, 1..50)) {
            // A chain of send/observe events yields strictly increasing sends.
            let mut c = LamportClock::new();
            let mut last = 0;
            for obs in seq {
                c.observe(obs);
                let t = c.tick();
                prop_assert!(t > last);
                prop_assert!(t > obs);
                last = t;
            }
        }
    }
}
