//! One-shot performance snapshot for the directory + durable-recovery
//! PR.
//!
//! Prints a JSON document with the numbers the PR's acceptance criteria
//! track:
//!
//! * cold-restart rejoin latency — virtual time from the recovery
//!   replay (snapshot + log) to the rejoin view installing at the
//!   victim, per group and ordering, from the campaign's
//!   kill-and-recover scenario; the replay/delta breakdown rides along
//!   (records replayed from durable state, delta bytes vs the full
//!   history a naive transfer would ship);
//! * directory resolve throughput — `DirRequest::Resolve` round trips
//!   per second through a populated member table, decode + lookup +
//!   encode included (the per-member serving cost of name-based
//!   binding).
//!
//! `scripts/bench_snapshot.sh` redirects this into `BENCH_PR9.json`.
//! `NEWTOP_BENCH_SEED` varies the simulation seed (default 2000).

use std::time::Instant;

use newtop::directory::{DirReply, DirRequest, GroupRecord};
use newtop_bench::bench_seed;
use newtop_check::recovery::RecoveryScenario;
use newtop_dir::directory::DirectoryState;
use newtop_gcs::group::{GroupConfig, OrderProtocol};
use newtop_gcs::view::ViewId;
use newtop_net::site::NodeId;
use newtop_orb::cdr::{CdrDecode, CdrEncode};

const DIR_RECORDS: usize = 64;
const RESOLVE_ITERS: u64 = 200_000;

/// One ordering's cold-restart evidence, flattened for JSON.
struct ColdRestart {
    recovered_at_ms: f64,
    /// `(group, rejoin latency ms, replayed recs, delta bytes, full bytes)`.
    groups: Vec<(String, f64, usize, u64, u64)>,
    replayed_log_records: u64,
    from_snapshot: bool,
}

fn measure_cold_restart(seed: u64, ordering: OrderProtocol) -> ColdRestart {
    let run = RecoveryScenario::new(seed, ordering).run();
    let violations = run.recovery_violations();
    assert!(
        violations.is_empty(),
        "recovery obligations failed under {ordering:?}: {violations:?}"
    );
    let recovered_at = run.recovered_at.expect("victim recovered");
    let groups = run
        .groups
        .iter()
        .map(|g| {
            let rejoined = g.rejoined_at.expect("victim rejoined");
            let full_bytes: u64 = g.survivor_full.iter().map(|r| r.payload.len() as u64).sum();
            (
                g.group.to_string(),
                rejoined.saturating_since(recovered_at).as_secs_f64() * 1e3,
                g.replayed.len(),
                g.delta_bytes,
                full_bytes,
            )
        })
        .collect();
    ColdRestart {
        recovered_at_ms: recovered_at.as_millis_f64(),
        groups,
        replayed_log_records: run.replayed_log_records,
        from_snapshot: run.recovered_from_snapshot,
    }
}

/// Resolve round trips per second through one member's table: decode
/// the request, look the name up, encode the reply — the servant-side
/// cost of a cache-miss `bind`.
fn measure_resolve_throughput() -> f64 {
    let mut state = DirectoryState::default();
    for i in 0..DIR_RECORDS {
        state.apply(GroupRecord {
            name: format!("svc-{i}"),
            config: GroupConfig::request_reply(),
            members: (0..3u32).map(NodeId::from_index).collect(),
            view: ViewId(1),
        });
    }
    let requests: Vec<Vec<u8>> = (0..DIR_RECORDS)
        .map(|i| {
            DirRequest::Resolve {
                name: format!("svc-{i}"),
            }
            .to_cdr()
            .to_vec()
        })
        .collect();
    let mut found = 0u64;
    let start = Instant::now();
    for n in 0..RESOLVE_ITERS {
        let body = &requests[(n as usize) % DIR_RECORDS];
        let reply = state.handle_raw(body).expect("well-formed request");
        if matches!(DirReply::from_cdr(&reply), Ok(DirReply::Found { .. })) {
            found += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(found, RESOLVE_ITERS, "every resolve must hit");
    assert_eq!(state.resolves, RESOLVE_ITERS);
    RESOLVE_ITERS as f64 / secs
}

fn print_cold_restart(label: &str, c: &ColdRestart, trailing_comma: bool) {
    println!("    \"{label}\": {{");
    println!("      \"recovered_at_ms\": {:.3},", c.recovered_at_ms);
    println!(
        "      \"replayed_log_records\": {},",
        c.replayed_log_records
    );
    println!("      \"from_snapshot\": {},", c.from_snapshot);
    println!("      \"groups\": {{");
    for (i, (group, latency, replayed, delta, full)) in c.groups.iter().enumerate() {
        let comma = if i + 1 < c.groups.len() { "," } else { "" };
        println!(
            "        \"{group}\": {{ \"rejoin_latency_ms\": {latency:.3}, \
             \"replayed_records\": {replayed}, \"delta_bytes\": {delta}, \
             \"full_history_bytes\": {full} }}{comma}"
        );
    }
    println!("      }}");
    println!("    }}{}", if trailing_comma { "," } else { "" });
}

fn main() {
    let seed = bench_seed();
    let symmetric = measure_cold_restart(seed, OrderProtocol::Symmetric);
    let asymmetric = measure_cold_restart(seed, OrderProtocol::Asymmetric);
    let resolves_per_sec = measure_resolve_throughput();

    println!("{{");
    println!("  \"pr\": 9,");
    println!("  \"seed\": {seed},");
    println!("  \"cold_restart\": {{");
    print_cold_restart("symmetric", &symmetric, true);
    print_cold_restart("asymmetric", &asymmetric, false);
    println!("  }},");
    println!("  \"directory_resolve\": {{");
    println!("    \"records\": {DIR_RECORDS},");
    println!("    \"resolves\": {RESOLVE_ITERS},");
    println!("    \"resolves_per_sec\": {resolves_per_sec:.0}");
    println!("  }}");
    println!("}}");
}
