#!/usr/bin/env bash
# Performance snapshots:
#
# * BENCH_PR2.json — the encode-once fan-out PR's numbers (LAN
#   closed-group invocation latency + fan-out encode throughput), from
#   the bench_snapshot binary.
# * BENCH_PR4.json — the flow-control PR's numbers (closed-loop knee,
#   open-loop saturation sheds and peak queue depth, threaded-runtime
#   latency percentiles), from the loadgen binary at shards=1 (the
#   single-engine configuration those numbers were first taken in).
# * BENCH_PR6.json — the sharded-engine PR's numbers: the same report
#   at shards=4 with send-path batching, whose multi_group_sim section
#   is the headline (aggregate throughput across independent groups).
# * BENCH_PR8.json — the scale-model PR's numbers: the geo-distributed
#   capacity sweep (max sustainable modeled clients per configuration
#   cell at the p99 bound), from the scale binary.
# * BENCH_PR9.json — the directory + durable-recovery PR's numbers:
#   cold-restart rejoin latency (recovery replay to rejoin view, with
#   the replay/delta breakdown) and directory resolve throughput, from
#   the recovery_bench binary.
#
# Offline-friendly; NEWTOP_BENCH_SEED overrides the simulation seed.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="BENCH_PR2.json"

echo "==> cargo run --release -p newtop-bench --bin bench_snapshot"
cargo run --release --offline -p newtop-bench --bin bench_snapshot > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"

OUT4="BENCH_PR4.json"

echo "==> cargo run --release -p newtop-bench --bin loadgen -- --json --shards 1"
cargo run --release --offline -p newtop-bench --bin loadgen -- --json --shards 1 > "$OUT4"

echo "==> wrote $OUT4"
cat "$OUT4"

OUT6="BENCH_PR6.json"

echo "==> cargo run --release -p newtop-bench --bin loadgen -- --json --shards 4"
cargo run --release --offline -p newtop-bench --bin loadgen -- --json --shards 4 > "$OUT6"

echo "==> wrote $OUT6"
cat "$OUT6"

OUT8="BENCH_PR8.json"

echo "==> cargo run --release -p newtop-bench --bin scale -- --json"
cargo run --release --offline -p newtop-bench --bin scale -- --json > "$OUT8"

echo "==> wrote $OUT8"
cat "$OUT8"

OUT9="BENCH_PR9.json"

echo "==> cargo run --release -p newtop-bench --bin recovery_bench"
cargo run --release --offline -p newtop-bench --bin recovery_bench > "$OUT9"

echo "==> wrote $OUT9"
cat "$OUT9"
