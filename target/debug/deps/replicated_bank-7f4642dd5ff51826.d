/root/repo/target/debug/deps/replicated_bank-7f4642dd5ff51826.d: examples/src/bin/replicated_bank.rs Cargo.toml

/root/repo/target/debug/deps/libreplicated_bank-7f4642dd5ff51826.rmeta: examples/src/bin/replicated_bank.rs Cargo.toml

examples/src/bin/replicated_bank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
