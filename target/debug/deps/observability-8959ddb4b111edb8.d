/root/repo/target/debug/deps/observability-8959ddb4b111edb8.d: tests/tests/observability.rs

/root/repo/target/debug/deps/observability-8959ddb4b111edb8: tests/tests/observability.rs

tests/tests/observability.rs:
