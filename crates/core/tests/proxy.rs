//! The smart proxy end to end: queued calls, automatic rebind-and-retry
//! across a request-manager crash, and give-up when every replica dies.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, Nso, NsoOutput};
use newtop::proxy::{ProxyEvent, ProxyStyle, SmartProxy};
use newtop::simnode::{NsoApp, NsoNode};
use newtop_gcs::group::{GroupConfig, GroupId, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;

fn gid() -> GroupId {
    GroupId::new("proxied-svc")
}

struct Server {
    members: Vec<NodeId>,
}

impl NsoApp for Server {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            gid(),
            self.members.clone(),
            Replication::Active,
            OpenOptimisation::None,
            GroupConfig {
                ordering: OrderProtocol::Asymmetric,
                time_silence: Duration::from_millis(20),
                ..GroupConfig::request_reply()
            },
            now,
            out,
        )
        .expect("server group");
        nso.register_group_servant(
            gid(),
            Box::new(move |_: &str, args: &[u8]| Bytes::copy_from_slice(args)),
        );
    }
    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

/// An app driving everything through the proxy.
struct ProxyClient {
    proxy: SmartProxy,
    total: u64,
    issued: u64,
    events: Vec<ProxyEvent>,
}

impl ProxyClient {
    fn maybe_issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        while self.issued < self.total && self.proxy.pending() < 1 {
            self.issued += 1;
            let n = self.proxy.invoke(
                nso,
                "echo",
                Bytes::from(vec![self.issued as u8]),
                ReplyMode::All,
                now,
                out,
            );
            assert_eq!(n, self.issued, "proxy numbers are sequential");
        }
    }
}

impl NsoApp for ProxyClient {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        self.proxy.start(nso, now, out);
        // Calls made before the binding is up are queued.
        self.maybe_issue(nso, now, out);
    }
    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        self.proxy.on_timer(nso, tag, now, out);
    }
    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        if let Some(ev) = self.proxy.on_output(nso, &output, now, out) {
            self.events.push(ev);
            self.maybe_issue(nso, now, out);
        }
    }
}

fn build(open: bool, total: u64, seed: u64) -> (Sim, Vec<NodeId>, NodeId) {
    let mut sim = Sim::new(SimConfig::lan(seed));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(Server {
                    members: servers.clone(),
                }),
            )),
        );
    }
    let style = if open {
        ProxyStyle::Open { restricted: false }
    } else {
        ProxyStyle::Closed
    };
    let proxy = SmartProxy::new(
        gid(),
        servers.clone(),
        style,
        BindOptions {
            time_silence: Duration::from_millis(20),
            ..BindOptions::default()
        },
    )
    .with_retry_interval(Duration::from_millis(150));
    let client = NodeId::from_index(3);
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(ProxyClient {
                proxy,
                total,
                issued: 0,
                events: Vec::new(),
            }),
        )),
    );
    (sim, servers, client)
}

fn completions(sim: &Sim, client: NodeId) -> Vec<u64> {
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<ProxyClient>()
        .unwrap();
    let mut done: Vec<u64> = app
        .events
        .iter()
        .filter_map(|e| match e {
            ProxyEvent::Complete { number, .. } => Some(*number),
            _ => None,
        })
        .collect();
    done.sort_unstable();
    done
}

#[test]
fn proxy_queues_then_completes_everything() {
    let (mut sim, _, client) = build(true, 20, 91);
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(completions(&sim, client), (1..=20).collect::<Vec<_>>());
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<ProxyClient>()
        .unwrap();
    assert!(app.events.contains(&ProxyEvent::Ready));
    assert_eq!(app.proxy.pending(), 0);
}

#[test]
fn proxy_rebinds_and_loses_nothing_when_the_manager_dies() {
    let (mut sim, servers, client) = build(true, 60, 92);
    sim.schedule_crash(SimTime::from_millis(60), servers[0]);
    sim.run_until(SimTime::from_secs(20));
    assert_eq!(completions(&sim, client), (1..=60).collect::<Vec<_>>());
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<ProxyClient>()
        .unwrap();
    assert!(
        app.events
            .iter()
            .any(|e| matches!(e, ProxyEvent::Rebound { .. })),
        "the proxy rebound automatically"
    );
}

#[test]
fn closed_proxy_masks_failures_without_rebinding() {
    let (mut sim, servers, client) = build(false, 60, 93);
    sim.schedule_crash(SimTime::from_millis(60), servers[2]);
    sim.run_until(SimTime::from_secs(20));
    assert_eq!(completions(&sim, client), (1..=60).collect::<Vec<_>>());
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<ProxyClient>()
        .unwrap();
    assert!(
        !app.events
            .iter()
            .any(|e| matches!(e, ProxyEvent::Rebound { .. })),
        "closed groups need no rebinding"
    );
}

#[test]
fn proxy_gives_up_when_every_replica_is_dead() {
    let (mut sim, servers, client) = build(true, 5, 94);
    for &s in &servers {
        sim.schedule_crash(SimTime::ZERO, s);
    }
    sim.run_until(SimTime::from_secs(60));
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<ProxyClient>()
        .unwrap();
    assert!(
        app.events.contains(&ProxyEvent::GaveUp),
        "events: {:?}",
        app.events
    );
    assert!(completions(&sim, client).is_empty());
}
