//! Directory cache-staleness tests: a client that resolves through a
//! TTL-live cached record while the service's membership is changing
//! underneath it must converge to the new membership — no ghost
//! deliveries from the departed replica, every call exactly once.
//!
//! The dangerous window is deliberately engineered: the client's first
//! binding is open (client + manager only), so crashing a *different*
//! replica gives the client no eager-invalidation evidence — its cached
//! record stays TTL-live and stale. A scripted rebind then resolves
//! through that stale record into a closed binding that lists the dead
//! replica, and the test checks the stack digs itself out: the stale
//! bind fails (or views the corpse out), the failure invalidates the
//! cache, the fresh resolve returns the post-view-change record, and
//! the retried calls complete exactly once on the new membership.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput, ResolveStyle};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_dir::app::DirectoryApp;
use newtop_dir::directory::shared_directory;
use newtop_gcs::group::{GroupConfig, GroupId, Liveness, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use newtop_workloads::apps::ServerApp;

const SERVICE: &str = "svc";
const BIND_TAG: u64 = tags::APP_BASE;
const SWITCH_TAG: u64 = tags::APP_BASE + 1;
const RETRY_TAG: u64 = tags::APP_BASE + 2;

/// A closed-loop client that binds by name, then — on a scripted timer,
/// inside the cached record's TTL — rebinds through the cache while one
/// of the listed replicas is already dead.
struct StaleClient {
    service: GroupId,
    directory: Vec<NodeId>,
    /// The replica the test crashes (never this client's open manager).
    doomed: NodeId,
    /// Completions at or after this time must not carry a reply from
    /// `doomed` — by then the new view is long installed, so such a
    /// reply would be a ghost delivery.
    ghost_after: SimTime,
    style: ResolveStyle,
    total_calls: usize,
    issued: usize,
    completions: Vec<(u64, SimTime)>,
    /// Replies from `doomed` observed at or after `ghost_after`.
    ghost_replies: u32,
    duplicates: u32,
    bind_failures: u32,
    rebinds: u32,
    /// At the scripted rebind: was the cached record TTL-live and did it
    /// still list the doomed replica? `None` until the switch fires.
    stale_hit: Option<bool>,
    /// Membership of the most recent view of the active binding.
    final_members: Vec<NodeId>,
    binding: Option<GroupHandle>,
    bound_as: Option<GroupId>,
    issued_at: HashMap<u64, SimTime>,
}

impl StaleClient {
    fn new(directory: Vec<NodeId>, doomed: NodeId, ghost_after: SimTime) -> Self {
        StaleClient {
            service: GroupId::new(SERVICE),
            directory,
            doomed,
            ghost_after,
            style: ResolveStyle::Open { rank: 0 },
            total_calls: 60,
            issued: 0,
            completions: Vec::new(),
            ghost_replies: 0,
            duplicates: 0,
            bind_failures: 0,
            rebinds: 0,
            stale_hit: None,
            final_members: Vec::new(),
            binding: None,
            bound_as: None,
            issued_at: HashMap::new(),
        }
    }

    fn bind(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let opts = BindOptions::resolve(SERVICE, self.directory.clone())
            .with_resolve_style(self.style)
            // Short server-ack timeout so a bind into a membership that
            // still lists the corpse fails fast instead of stalling.
            .with_timeout(Duration::from_millis(300));
        match nso.bind(self.service.clone(), opts, now, out) {
            Ok(handle) => self.bound_as = Some(handle.id().clone()),
            Err(_) => {
                // Resolution raced a teardown; the retry timer rebinds.
            }
        }
    }

    fn issue(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        if self.issued >= self.total_calls {
            return;
        }
        let Some(binding) = self.binding.clone() else {
            return;
        };
        if let Ok(call) = binding.invoke(nso, "rand", Bytes::new(), ReplyMode::All, now, out) {
            self.issued += 1;
            self.issued_at.insert(call.number, now);
        }
    }
}

impl NsoApp for StaleClient {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        // Bind after the first registration has replicated; switch to
        // the stale-cache rebind well inside the record's 500 ms TTL.
        out.set_timer(Duration::from_millis(20), BIND_TAG);
        out.set_timer(Duration::from_millis(350), SWITCH_TAG);
        out.set_timer(Duration::from_millis(400), RETRY_TAG);
    }

    fn on_timer(&mut self, nso: &mut Nso, tag: u64, now: SimTime, out: &mut Outbox) {
        match tag {
            BIND_TAG => self.bind(nso, now, out),
            SWITCH_TAG => {
                // The crash gave this client no eager-invalidation
                // evidence (its open binding excludes the victim), so
                // the record it resolves through here is the stale one.
                self.stale_hit = Some(
                    nso.dir_cache()
                        .lookup(SERVICE, now)
                        .is_some_and(|r| r.members.contains(&self.doomed)),
                );
                if let Some(binding) = self.binding.take() {
                    let _ = binding.unbind(nso, now, out);
                }
                self.bound_as = None;
                self.style = ResolveStyle::Closed;
                self.bind(nso, now, out);
            }
            _ => {
                if self.binding.is_none() && self.bound_as.is_none() {
                    self.bind(nso, now, out);
                } else if let Some(binding) = self.binding.clone() {
                    let mut stalled: Vec<u64> = self
                        .issued_at
                        .iter()
                        .filter(|(_, &at)| now.saturating_since(at) > Duration::from_millis(300))
                        .map(|(&n, _)| n)
                        .collect();
                    stalled.sort_unstable();
                    for number in stalled {
                        let _ = binding.retry(nso, number, now, out);
                    }
                }
                out.set_timer(Duration::from_millis(200), RETRY_TAG);
            }
        }
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                if self.bound_as.as_ref() != Some(&group) {
                    return;
                }
                let Some(binding) = nso.handle_for(&group) else {
                    return;
                };
                self.binding = Some(binding.clone());
                let mut pending: Vec<u64> = self.issued_at.keys().copied().collect();
                pending.sort_unstable();
                if pending.is_empty() {
                    self.issue(nso, now, out);
                }
                for number in pending {
                    let _ = binding.retry(nso, number, now, out);
                }
            }
            NsoOutput::BindFailed { group } => {
                if self.bound_as.as_ref() != Some(&group) {
                    return;
                }
                self.bind_failures += 1;
                self.bound_as = None;
                self.bind(nso, now, out);
            }
            NsoOutput::BindingBroken { group, .. } => {
                if self.bound_as.as_ref() != Some(&group) {
                    return;
                }
                self.rebinds += 1;
                self.binding = None;
                self.bound_as = None;
                self.bind(nso, now, out);
            }
            NsoOutput::InvocationComplete { call, replies } => {
                if now >= self.ghost_after && replies.iter().any(|(s, _)| *s == self.doomed) {
                    self.ghost_replies += 1;
                }
                if self.issued_at.remove(&call.number).is_some() {
                    self.completions.push((call.number, now));
                } else {
                    self.duplicates += 1;
                }
                self.issue(nso, now, out);
            }
            NsoOutput::ViewChanged { group, view } if self.bound_as.as_ref() == Some(&group) => {
                self.final_members = view.members().to_vec();
            }
            _ => {}
        }
    }
}

fn run_staleness_case(ordering: OrderProtocol, seed: u64) {
    let mut sim = Sim::new(SimConfig::lan(seed));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    let client = NodeId::from_index(3);
    let dirs: Vec<NodeId> = (4..7).map(NodeId::from_index).collect();
    let doomed = servers[2];
    let crash_at = SimTime::from_millis(150);

    // Lively liveness: under the asymmetric protocol the sequencer keeps
    // delivering without the dead replica, so an event-driven detector
    // would go quiet and never view the corpse out — the directory would
    // keep publishing the stale membership forever.
    let config = GroupConfig {
        ordering,
        time_silence: Duration::from_millis(20),
        liveness: Liveness::Lively,
        ..GroupConfig::request_reply()
    };
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(ServerApp {
                    group: GroupId::new(SERVICE),
                    members: servers.clone(),
                    replication: Replication::Active,
                    optimisation: OpenOptimisation::None,
                    config: config.clone(),
                    seed,
                    directory: dirs.clone(),
                }),
            )),
        );
    }
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            client,
            Box::new(StaleClient::new(
                dirs.clone(),
                doomed,
                crash_at + Duration::from_secs(2),
            )),
        )),
    );
    for &d in &dirs {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                d,
                Box::new(DirectoryApp::new(dirs.clone(), shared_directory())),
            )),
        );
    }
    sim.schedule_crash(crash_at, doomed);
    sim.run_until(SimTime::from_secs(15));

    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<StaleClient>()
        .unwrap();

    // The scripted rebind really went through a TTL-live record that
    // still listed the corpse — the staleness window was exercised, not
    // dodged by eager invalidation or TTL expiry.
    assert_eq!(
        app.stale_hit,
        Some(true),
        "{ordering:?}: the cached record was not stale at the rebind"
    );
    // Convergence: the client ended up bound, and the binding's final
    // membership is the post-crash one.
    assert!(
        app.binding.is_some(),
        "{ordering:?}: client never converged to a live binding"
    );
    assert!(
        !app.final_members.is_empty() && !app.final_members.contains(&doomed),
        "{ordering:?}: final membership {:?} still lists the crashed replica",
        app.final_members
    );
    assert!(
        app.final_members.contains(&client),
        "{ordering:?}: final membership {:?} lost the client",
        app.final_members
    );
    // No ghost deliveries: nothing completed twice, and no reply from
    // the dead replica surfaced after the new membership settled.
    assert_eq!(app.duplicates, 0, "{ordering:?}: duplicate completions");
    assert_eq!(
        app.ghost_replies, 0,
        "{ordering:?}: replies from the crashed replica after convergence"
    );
    let mut numbers: Vec<u64> = app.completions.iter().map(|&(n, _)| n).collect();
    numbers.sort_unstable();
    numbers.dedup();
    assert_eq!(
        numbers.len(),
        app.completions.len(),
        "{ordering:?}: some call completed more than once"
    );
    assert_eq!(
        numbers.len(),
        app.total_calls,
        "{ordering:?}: {} of {} calls completed",
        numbers.len(),
        app.total_calls
    );
    // The stale bind left a visible scar: it either failed outright or
    // broke once the corpse was viewed out — silence would mean the
    // stale path was never taken.
    assert!(
        app.bind_failures + app.rebinds >= 1,
        "{ordering:?}: the stale rebind left no trace"
    );
}

#[test]
fn stale_cached_record_converges_symmetric() {
    run_staleness_case(OrderProtocol::Symmetric, 61);
}

#[test]
fn stale_cached_record_converges_asymmetric() {
    run_staleness_case(OrderProtocol::Asymmetric, 62);
}
