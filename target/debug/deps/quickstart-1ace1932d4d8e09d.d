/root/repo/target/debug/deps/quickstart-1ace1932d4d8e09d.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-1ace1932d4d8e09d.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
