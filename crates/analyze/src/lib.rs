//! `newtop-analyze`: protocol-invariant static analysis for the NewTop
//! workspace.
//!
//! PRs 3–4 caught determinism and boundedness bugs *dynamically*, via
//! seeded campaigns; this crate enforces the underlying properties
//! *statically*, as a `check.sh` gate. Five rule families (see
//! [`rules`]):
//!
//! 1. **determinism** — no wall-clock, OS randomness, or
//!    `HashMap`-iteration-order dependence in the protocol crates; time
//!    flows through `newtop_net::time`.
//! 2. **panic-free** — no `unwrap`/`expect`/panicking macro/raw indexing
//!    in functions reachable from network-input decode/ingest entry
//!    points; malformed bytes surface as `NewtopError::Malformed`.
//! 3. **bounded** — no unbounded channels outside `newtop-flow`.
//! 4. **lock-hygiene** — no `Mutex`/`RwLock` guard held across a
//!    transport send or queue hand-off.
//! 5. **durability** — no buffered log write acknowledged before its
//!    flush point: a `newtop-dir` event handler that stages a store
//!    append must reach a `sync` before it returns.
//!
//! The analysis is a hand-rolled token scan ([`lexer`] → [`items`] →
//! [`rules`]): the vendored offline workspace has no `syn`, and the
//! rules only need token shapes plus a name-based call graph. That makes
//! them over-approximate by design; the committed [`allow`]list (≤ 10
//! entries, each justified) records the exceptions, and
//! [`selftest`] proves every family still fires on injected-bad input.

pub mod allow;
pub mod cache;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod selftest;

use rules::Finding;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collects every production `.rs` file under `crates/*/src`, sorted.
/// Harness code (the `tests/` workspace member, `examples/`, vendored
/// stand-ins) is out of scope: the rules guard the protocol stack.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} not found; run from the workspace root",
                crates_dir.display()
            ),
        ));
    }
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A full workspace analysis: the findings plus report warnings
/// (skipped macro bodies, cache statistics).
pub struct Analysis {
    /// Sorted, deduplicated findings from every rule family.
    pub findings: Vec<Finding>,
    /// Non-fatal coverage warnings, surfaced in the JSON report so
    /// skipped code is never silent.
    pub warnings: Vec<String>,
    /// Token-cache hits (for the runtime summary line).
    pub cache_hits: usize,
    /// Files lexed fresh.
    pub cache_misses: usize,
}

/// Lexes, parses and runs every rule over the workspace at `root`.
/// Finding paths are workspace-relative with `/` separators. When
/// `use_cache` is set, per-file token streams are memoized under
/// `<root>/target/analyze-cache/`.
pub fn analyze_workspace_cached(root: &Path, use_cache: bool) -> io::Result<Analysis> {
    let mut parse_cache = cache::ParseCache::new(root, use_cache);
    let mut parsed = Vec::new();
    let mut skipped_macros = 0u32;
    for path in collect_files(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let file = items::parse_file(&rel, parse_cache.tokens(&rel, &src));
        skipped_macros += file.skipped_macros;
        parsed.push(file);
    }
    let mut warnings = Vec::new();
    if skipped_macros > 0 {
        warnings.push(format!(
            "{skipped_macros} macro definition bod{} skipped (unexpanded token soup is invisible to the scanner)",
            if skipped_macros == 1 { "y" } else { "ies" }
        ));
    }
    Ok(Analysis {
        findings: rules::run_all(&parsed),
        warnings,
        cache_hits: parse_cache.hits,
        cache_misses: parse_cache.misses,
    })
}

/// [`analyze_workspace_cached`] without the cache or warnings — the
/// findings alone.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_workspace_cached(root, false)?.findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_rejects_non_workspace_roots() {
        let err = collect_files(Path::new("/definitely/not/a/workspace")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
