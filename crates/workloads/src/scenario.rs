//! Scenario construction and metric extraction.
//!
//! The paper's experiments share one skeleton: place servers and clients
//! on a LAN or across Newcastle/London/Pisa, run closed-loop traffic for
//! a while, and report the mean client response time plus aggregate
//! server throughput inside a measurement window (discarding warm-up and
//! tail). [`run_request_reply`], [`run_plain`] and [`run_peer`] implement
//! that skeleton over the deterministic simulator.

use std::time::Duration;

use newtop::nso::NsoOptions;
use newtop::simnode::NsoNode;
use newtop_gcs::group::{FanoutMode, GroupConfig, GroupId, Liveness, OrderProtocol};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::faults::FaultPlan;
use newtop_net::sim::{Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use newtop_net::trace::TraceEvent;

use newtop::nso::ResolveStyle;
use newtop::simnode::NsoApp;
use newtop_dir::app::DirectoryApp;
use newtop_dir::directory::shared_directory;

use crate::apps::{ClientApp, ClientStyle, HubApp, PeerApp, ServerApp};
use crate::plain::{PlainClient, PlainServer};

/// The three client/server placements of §5.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Clients and servers all on the same LAN.
    AllLan,
    /// Servers on the Newcastle LAN; clients split between London and
    /// Pisa.
    ServersLanClientsWan,
    /// Servers and clients geographically separated across Newcastle,
    /// London and Pisa.
    AllWan,
}

impl Placement {
    /// Where the `i`-th server lives.
    #[must_use]
    pub fn server_site(self, i: usize) -> Site {
        match self {
            Placement::AllLan => Site::Lan,
            Placement::ServersLanClientsWan => Site::Lan,
            Placement::AllWan => [Site::Newcastle, Site::London, Site::Pisa][i % 3],
        }
    }

    /// Where the `i`-th client lives.
    #[must_use]
    pub fn client_site(self, i: usize) -> Site {
        match self {
            Placement::AllLan => Site::Lan,
            Placement::ServersLanClientsWan => [Site::London, Site::Pisa][i % 2],
            Placement::AllWan => [Site::Newcastle, Site::London, Site::Pisa][i % 3],
        }
    }

    /// The simulator configuration for this placement.
    #[must_use]
    pub fn sim_config(self, seed: u64) -> SimConfig {
        match self {
            Placement::AllLan => SimConfig::lan(seed),
            _ => SimConfig::internet(seed),
        }
    }

    /// How long to run so enough requests land in the window.
    #[must_use]
    pub fn default_duration(self) -> Duration {
        match self {
            Placement::AllLan => Duration::from_secs(2),
            _ => Duration::from_secs(8),
        }
    }

    /// A short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Placement::AllLan => "clients & servers on LAN",
            Placement::ServersLanClientsWan => "servers on LAN, clients distant",
            Placement::AllWan => "geographically separated",
        }
    }
}

/// A request-reply experiment.
#[derive(Clone, Debug)]
pub struct RequestReplyScenario {
    /// Number of service replicas (the paper used 3; 1 = non-replicated).
    pub servers: usize,
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Placement of the parties.
    pub placement: Placement,
    /// Binding style policy.
    pub binding: BindingPolicy,
    /// Reply-collection primitive.
    pub mode: ReplyMode,
    /// Replication discipline of the service.
    pub replication: Replication,
    /// Open-group optimisation.
    pub optimisation: OpenOptimisation,
    /// Ordering protocol (used for both the server group and the
    /// client/server groups).
    pub ordering: OrderProtocol,
    /// Virtual duration of the run.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Optional fault schedule, applied to the roster (servers first,
    /// then clients — so `FaultTarget::Sequencer` resolves to the
    /// lowest-ranked live server) when the run starts.
    pub faults: Option<FaultPlan>,
}

/// How clients attach to the service.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BindingPolicy {
    /// Every client forms a closed client/server group.
    Closed,
    /// Client `i` binds openly to server `i mod n` (Fig. 5(i)).
    OpenAnyServer,
    /// Every client binds openly to the designated manager — the
    /// restricted-group optimisation (Fig. 5(ii)).
    OpenRestricted,
    /// Clients resolve the service *name* through the replicated
    /// directory (PR 9) and form a closed binding to the resolved
    /// record's member set; servers publish themselves on every view
    /// change. The run gains [`DIRECTORY_MEMBERS`] directory nodes.
    Directory,
}

/// How many directory members a [`BindingPolicy::Directory`] run hosts.
pub const DIRECTORY_MEMBERS: usize = 3;

impl RequestReplyScenario {
    /// The paper's default: 3 active replicas, wait-for-all, asymmetric
    /// ordering, open bindings.
    #[must_use]
    pub fn paper_default(placement: Placement, clients: usize, seed: u64) -> Self {
        RequestReplyScenario {
            servers: 3,
            clients,
            placement,
            binding: BindingPolicy::OpenAnyServer,
            mode: ReplyMode::All,
            replication: Replication::Active,
            optimisation: OpenOptimisation::None,
            ordering: OrderProtocol::Asymmetric,
            duration: placement.default_duration(),
            seed,
            faults: None,
        }
    }
}

/// Results of a request-reply run.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct RequestReplyResult {
    /// Mean client response time inside the window.
    pub mean_response: Duration,
    /// Aggregate completions per second inside the window (the paper's
    /// server throughput).
    pub throughput: f64,
    /// Completions counted in the window.
    pub completed: u64,
    /// Rebinds observed (failure experiments).
    pub rebinds: u32,
    /// Replies that surfaced twice to a client application — must stay
    /// zero for exactly-once semantics (fault campaigns assert on it).
    pub duplicated: u32,
    /// Executions a server performed more than once for the same
    /// `(client, call)` pair, counted from the per-server trace rings —
    /// must stay zero (retries are answered from the reply cache).
    pub double_executions: u64,
    /// Virtual time of the last completion anywhere (whole run, not just
    /// the measurement window); fault campaigns use it to confirm the
    /// system made progress after the last fault cleared.
    pub last_completion_at: SimTime,
    /// Protocol counters summed over every node in the run.
    pub counts: ProtocolCounts,
}

/// Protocol counters harvested from every node's [`newtop::Nso::metrics`]
/// snapshot after a run and summed across the whole system. These are
/// whole-run totals (no warm-up window), so ratios against windowed
/// completion counts are approximate but comparable between
/// configurations.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounts {
    /// Group-communication messages sent (`gcs.msgs_sent`).
    pub msgs_sent: u64,
    /// Sequencer ordering records multicast (`gcs.order_records`) — the
    /// asymmetric protocol's redirection traffic; zero under the
    /// symmetric protocol.
    pub order_records: u64,
    /// Totally ordered deliveries (`gcs.delivered`).
    pub delivered: u64,
    /// Time-silence null messages sent (`ev.time_silence_null`).
    pub nulls: u64,
    /// Failure-detector suspicions raised (`ev.suspected`).
    pub suspicions: u64,
    /// Server-side request executions (`ev.executed`).
    pub executed: u64,
    /// Retries answered from the reply cache without re-execution
    /// (`ev.retry_deduped`).
    pub deduped: u64,
}

impl ProtocolCounts {
    /// Group-communication messages per completed request (zero when
    /// nothing completed).
    #[must_use]
    pub fn msgs_per_request(&self, completed: u64) -> f64 {
        if completed == 0 {
            0.0
        } else {
            self.msgs_sent as f64 / completed as f64
        }
    }

    /// Sequencer ordering records per totally ordered delivery — ≈1 for
    /// the asymmetric protocol (every delivery is redirected through the
    /// sequencer), 0 for the symmetric one.
    #[must_use]
    pub fn records_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.order_records as f64 / self.delivered as f64
        }
    }
}

/// Sums the listed nodes' metric snapshots into one count set. Nodes that
/// crashed mid-run still contribute the counts they accumulated.
pub(crate) fn harvest_counts(sim: &Sim, nodes: &[NodeId]) -> ProtocolCounts {
    let mut c = ProtocolCounts::default();
    for &id in nodes {
        let Some(node) = sim.node_ref::<NsoNode>(id) else {
            continue;
        };
        let snap = node.nso().metrics();
        c.msgs_sent += snap.counter("gcs.msgs_sent");
        c.order_records += snap.counter("gcs.order_records");
        c.delivered += snap.counter("gcs.delivered");
        c.nulls += snap.counter("ev.time_silence_null");
        c.suspicions += snap.counter("ev.suspected");
        c.executed += snap.counter("ev.executed");
        c.deduped += snap.counter("ev.retry_deduped");
    }
    c
}

fn window(duration: Duration) -> (SimTime, SimTime) {
    let d = duration.as_nanos() as u64;
    (SimTime::from_nanos(d / 4), SimTime::from_nanos(d * 19 / 20))
}

fn summarize(completions: &[(SimTime, Duration)], duration: Duration) -> RequestReplyResult {
    let (lo, hi) = window(duration);
    let in_window: Vec<Duration> = completions
        .iter()
        .filter(|(at, _)| *at >= lo && *at < hi)
        .map(|&(_, d)| d)
        .collect();
    let completed = in_window.len() as u64;
    let mean = if in_window.is_empty() {
        Duration::ZERO
    } else {
        Duration::from_nanos(
            (in_window.iter().map(Duration::as_nanos).sum::<u128>() / in_window.len() as u128)
                as u64,
        )
    };
    let span = (hi - lo).as_secs_f64();
    RequestReplyResult {
        mean_response: mean,
        throughput: completed as f64 / span,
        completed,
        rebinds: 0,
        duplicated: 0,
        double_executions: 0,
        last_completion_at: completions
            .iter()
            .map(|&(at, _)| at)
            .max()
            .unwrap_or(SimTime::ZERO),
        counts: ProtocolCounts::default(),
    }
}

/// Counts executions a server performed more than once for the same
/// `(client, call number)` pair, from its bounded trace ring. The ring
/// holds 512 records — far more than a campaign run's executions — but
/// even under eviction this can only under-count (miss a duplicate),
/// never report a false positive.
fn count_double_executions(sim: &Sim, servers: &[NodeId]) -> u64 {
    let mut doubles = 0u64;
    for &id in servers {
        let Some(node) = sim.node_ref::<NsoNode>(id) else {
            continue;
        };
        let mut seen: std::collections::HashMap<(NodeId, u64), u64> =
            std::collections::HashMap::new();
        for record in node.nso().trace() {
            if let TraceEvent::Executed { client, number } = record.event {
                *seen.entry((client, number)).or_insert(0) += 1;
            }
        }
        doubles += seen.values().map(|&c| c.saturating_sub(1)).sum::<u64>();
    }
    doubles
}

/// Runs a request-reply scenario through the NewTop service.
#[must_use]
pub fn run_request_reply(s: &RequestReplyScenario) -> RequestReplyResult {
    run_request_reply_latencies(s).0
}

/// Like [`run_request_reply`] but also returns every in-window
/// completion latency, in completion order — the `loadgen` binary
/// reports percentiles from these.
#[must_use]
pub fn run_request_reply_latencies(
    s: &RequestReplyScenario,
) -> (RequestReplyResult, Vec<Duration>) {
    let mut sim = Sim::new(s.placement.sim_config(s.seed));
    let group = GroupId::new("service");
    let server_ids: Vec<NodeId> = (0..s.servers)
        .map(|i| NodeId::from_index(i as u32))
        .collect();
    // Directory members (when the policy calls for them) take the node
    // indices after servers and clients, keeping fault plans — which
    // target the servers-then-clients roster by index — undisturbed.
    let dir_ids: Vec<NodeId> = match s.binding {
        BindingPolicy::Directory => (0..DIRECTORY_MEMBERS)
            .map(|j| NodeId::from_index((s.servers + s.clients + j) as u32))
            .collect(),
        _ => Vec::new(),
    };
    let gs_config = GroupConfig {
        ordering: s.ordering,
        liveness: Liveness::EventDriven,
        ..GroupConfig::default()
    };
    for (i, &id) in server_ids.iter().enumerate() {
        let app = ServerApp {
            group: group.clone(),
            members: server_ids.clone(),
            replication: s.replication,
            optimisation: s.optimisation,
            config: gs_config.clone(),
            seed: s.seed,
            directory: dir_ids.clone(),
        };
        let added = sim.add_node(
            s.placement.server_site(i),
            Box::new(NsoNode::new(id, Box::new(app))),
        );
        assert_eq!(added, id);
    }
    let mut client_ids = Vec::new();
    for i in 0..s.clients {
        let id = NodeId::from_index((s.servers + i) as u32);
        let style = match s.binding {
            BindingPolicy::Closed => ClientStyle::Closed,
            BindingPolicy::OpenAnyServer => ClientStyle::Open { manager_index: i },
            BindingPolicy::OpenRestricted => ClientStyle::Open { manager_index: 0 },
            BindingPolicy::Directory => ClientStyle::Directory {
                directory: dir_ids.clone(),
                style: ResolveStyle::Closed,
            },
        };
        // Stagger the binds so control traffic doesn't burst at t=0
        // (directory clients a little later, giving the first
        // registration time to replicate instead of burning a
        // resolve-retry round).
        let bind_delay = match s.binding {
            BindingPolicy::Directory => Duration::from_millis(10 + i as u64),
            _ => Duration::from_millis(1 + i as u64),
        };
        let app = ClientApp::new(
            group.clone(),
            server_ids.clone(),
            style,
            s.mode,
            s.ordering,
            bind_delay,
        );
        let added = sim.add_node(
            s.placement.client_site(i),
            Box::new(NsoNode::new(id, Box::new(app))),
        );
        assert_eq!(added, id);
        client_ids.push(id);
    }
    for (j, &id) in dir_ids.iter().enumerate() {
        let app: Box<dyn NsoApp> = Box::new(DirectoryApp::new(dir_ids.clone(), shared_directory()));
        let added = sim.add_node(s.placement.server_site(j), Box::new(NsoNode::new(id, app)));
        assert_eq!(added, id);
    }
    if let Some(plan) = &s.faults {
        let mut roster = server_ids.clone();
        roster.extend(client_ids.iter().copied());
        plan.apply(&mut sim, &roster);
    }
    sim.run_until(SimTime::ZERO + s.duration);
    let mut all = Vec::new();
    let mut rebinds = 0;
    let mut duplicated = 0;
    for &id in &client_ids {
        let node = sim.node_ref::<NsoNode>(id).expect("client node");
        let app = node.app_ref::<ClientApp>().expect("client app");
        all.extend(app.completions.iter().copied());
        rebinds += app.rebinds;
        duplicated += app.duplicate_completions;
    }
    let mut result = summarize(&all, s.duration);
    result.rebinds = rebinds;
    result.duplicated = duplicated;
    result.double_executions = count_double_executions(&sim, &server_ids);
    let mut nodes = server_ids;
    nodes.extend(client_ids);
    result.counts = harvest_counts(&sim, &nodes);
    let (lo, hi) = window(s.duration);
    let latencies = all
        .iter()
        .filter(|(at, _)| *at >= lo && *at < hi)
        .map(|&(_, d)| d)
        .collect();
    (result, latencies)
}

/// Runs the plain-CORBA baseline: `clients` closed-loop clients against
/// one unreplicated ORB server.
#[must_use]
pub fn run_plain(
    server_site: Site,
    client_sites: &[Site],
    duration: Duration,
    seed: u64,
) -> RequestReplyResult {
    let cfg = if server_site == Site::Lan && client_sites.iter().all(|&s| s == Site::Lan) {
        SimConfig::lan(seed)
    } else {
        SimConfig::internet(seed)
    };
    let mut sim = Sim::new(cfg);
    let server_id = NodeId::from_index(0);
    sim.add_node(server_site, Box::new(PlainServer::new(server_id, seed)));
    let mut client_ids = Vec::new();
    for (i, &site) in client_sites.iter().enumerate() {
        let id = NodeId::from_index(1 + i as u32);
        let added = sim.add_node(
            site,
            Box::new(PlainClient::new(
                id,
                PlainServer::object_ref(server_id),
                Duration::from_millis(1 + i as u64),
            )),
        );
        assert_eq!(added, id);
        client_ids.push(id);
    }
    sim.run_until(SimTime::ZERO + duration);
    let mut all = Vec::new();
    for id in client_ids {
        let client = sim.node_ref::<PlainClient>(id).expect("client");
        all.extend(client.completions.iter().copied());
    }
    summarize(&all, duration)
}

/// A peer-participation experiment (§5.2).
#[derive(Clone, Debug)]
pub struct PeerScenario {
    /// Group size.
    pub members: usize,
    /// True for the Newcastle/London/Pisa placement; false for the LAN.
    pub wan: bool,
    /// Ordering protocol under test.
    pub ordering: OrderProtocol,
    /// Multicast payload size (the paper used 100 characters).
    pub payload_len: usize,
    /// Interval between each member's send attempts.
    pub pace: Duration,
    /// Time-silence period of the group (the ablation benches sweep it).
    pub time_silence: Duration,
    /// Virtual duration.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
}

/// Results of a peer run.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PeerResult {
    /// Mean time for a multicast to become deliverable at *every* member
    /// (the paper's latency metric).
    pub mean_latency: Duration,
    /// The paper's group throughput: the sum over members of
    /// `1 / mean single-multicast time` (messages per second).
    pub group_throughput: f64,
    /// Multicasts measured.
    pub measured: u64,
    /// Protocol counters summed over every member.
    pub counts: ProtocolCounts,
}

/// Runs a peer-participation scenario.
#[must_use]
pub fn run_peer(s: &PeerScenario) -> PeerResult {
    let cfg = if s.wan {
        SimConfig::internet(s.seed)
    } else {
        SimConfig::lan(s.seed)
    };
    let mut sim = Sim::new(cfg);
    let group = GroupId::new("peers");
    let members: Vec<NodeId> = (0..s.members)
        .map(|i| NodeId::from_index(i as u32))
        .collect();
    let config = GroupConfig {
        ordering: s.ordering,
        liveness: Liveness::Lively,
        // Peer members multicast with the asynchronous method invocation
        // operation (§5.2): fan-outs do not chain round trips.
        fanout: FanoutMode::Asynchronous,
        time_silence: s.time_silence,
        ..GroupConfig::default()
    };
    let sites = [Site::Newcastle, Site::London, Site::Pisa];
    for (i, &id) in members.iter().enumerate() {
        let site = if s.wan { sites[i % 3] } else { Site::Lan };
        let app = PeerApp::new(
            group.clone(),
            members.clone(),
            config.clone(),
            s.payload_len,
            s.pace,
            32,
            Duration::from_millis(1 + i as u64),
        );
        let added = sim.add_node(site, Box::new(NsoNode::new(id, Box::new(app))));
        assert_eq!(added, id);
    }
    sim.run_until(SimTime::ZERO + s.duration);

    // For each multicast: latency = (last delivery anywhere) - (send).
    // Restrict to the measurement window and to messages delivered by
    // every member.
    let (lo, hi) = window(s.duration);
    let mut sent: std::collections::HashMap<(NodeId, u64), SimTime> =
        std::collections::HashMap::new();
    let mut last_delivery: std::collections::HashMap<(NodeId, u64), (SimTime, usize)> =
        std::collections::HashMap::new();
    for &id in &members {
        let node = sim.node_ref::<NsoNode>(id).expect("peer node");
        let app = node.app_ref::<PeerApp>().expect("peer app");
        for (&idx, &at) in &app.sent_at {
            sent.insert((id, idx), at);
        }
        for &(sender, idx, at) in &app.deliveries {
            let e = last_delivery
                .entry((sender, idx))
                .or_insert((SimTime::ZERO, 0));
            e.0 = e.0.max(at);
            e.1 += 1;
        }
    }
    // Per-member mean latency, then the paper's summed throughput.
    let mut per_member_latencies: std::collections::HashMap<NodeId, Vec<Duration>> =
        std::collections::HashMap::new();
    for ((sender, idx), (last, count)) in &last_delivery {
        if *count < s.members {
            continue; // not yet everywhere
        }
        let Some(&at) = sent.get(&(*sender, *idx)) else {
            continue;
        };
        if at < lo || at >= hi {
            continue;
        }
        per_member_latencies
            .entry(*sender)
            .or_default()
            .push(last.saturating_since(at));
    }
    let mut total_rate = 0.0;
    let mut all: Vec<Duration> = Vec::new();
    for lats in per_member_latencies.values() {
        if lats.is_empty() {
            continue;
        }
        let mean = lats.iter().map(Duration::as_secs_f64).sum::<f64>() / lats.len() as f64;
        if mean > 0.0 {
            total_rate += 1.0 / mean;
        }
        all.extend(lats.iter().copied());
    }
    let mean_latency = if all.is_empty() {
        Duration::ZERO
    } else {
        Duration::from_nanos(
            (all.iter().map(Duration::as_nanos).sum::<u128>() / all.len() as u128) as u64,
        )
    };
    PeerResult {
        mean_latency,
        group_throughput: total_rate,
        measured: all.len() as u64,
        counts: harvest_counts(&sim, &members),
    }
}

/// A multi-group experiment: `groups` independent replicated services
/// with disjoint server sets, and `hubs` client nodes each bound to all
/// of them, running a closed loop per binding. This is the workload the
/// sharded protocol engine partitions: every node serves several
/// unrelated groups, and with `shards > 1` each group's work runs on its
/// own shard engine (batching packs the per-destination protocol traffic
/// into shared frames).
#[derive(Clone, Debug)]
pub struct MultiGroupScenario {
    /// Number of independent services.
    pub groups: usize,
    /// Replicas per service (disjoint between services).
    pub servers_per_group: usize,
    /// Number of hub clients, each bound to every service.
    pub hubs: usize,
    /// Shard count configured on every node.
    pub shards: usize,
    /// Whether send-path batching is on.
    pub batching: bool,
    /// Ordering protocol for all groups.
    pub ordering: OrderProtocol,
    /// Reply-collection primitive.
    pub mode: ReplyMode,
    /// Virtual duration of the run.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl MultiGroupScenario {
    /// The BENCH_PR6 configuration: 8 services x 3 replicas, 12 hubs,
    /// 4 shards, batching on.
    #[must_use]
    pub fn bench_default(seed: u64) -> Self {
        MultiGroupScenario {
            groups: 8,
            servers_per_group: 3,
            hubs: 12,
            shards: 4,
            batching: true,
            ordering: OrderProtocol::Asymmetric,
            mode: ReplyMode::All,
            duration: Duration::from_secs(2),
            seed,
        }
    }
}

/// Results of a multi-group run.
#[derive(Clone, Debug, Default)]
pub struct MultiGroupResult {
    /// Aggregate completions per second inside the window, over all
    /// hubs and services.
    pub throughput: f64,
    /// Completions counted in the window.
    pub completed: u64,
    /// Mean response time inside the window.
    pub mean_response: Duration,
    /// Completions that surfaced twice anywhere — must stay zero.
    pub duplicated: u32,
    /// Batch frames sent across all nodes (`gcs.batch_frames`).
    pub batch_frames: u64,
    /// Protocol messages carried inside batch frames (`gcs.batch_msgs`).
    pub batch_msgs: u64,
}

/// Runs a [`MultiGroupScenario`] and returns the aggregate result plus
/// every in-window completion latency.
///
/// # Panics
///
/// Panics if the scenario has zero groups, servers, or hubs.
#[must_use]
pub fn run_multi_group(s: &MultiGroupScenario) -> (MultiGroupResult, Vec<Duration>) {
    assert!(s.groups > 0 && s.servers_per_group > 0 && s.hubs > 0);
    let mut sim = Sim::new(SimConfig::lan(s.seed));
    let opts = NsoOptions::new()
        .with_shards(s.shards)
        .with_batching(s.batching);
    let gs_config = GroupConfig {
        ordering: s.ordering,
        liveness: Liveness::EventDriven,
        // Back-to-back fan-outs so a batching-enabled node can pack
        // same-destination messages into one frame.
        fanout: FanoutMode::Asynchronous,
        ..GroupConfig::default()
    };
    let mut services: Vec<(GroupId, Vec<NodeId>)> = Vec::new();
    for g in 0..s.groups {
        let group = GroupId::new(format!("svc-{g}"));
        let members: Vec<NodeId> = (0..s.servers_per_group)
            .map(|i| NodeId::from_index((g * s.servers_per_group + i) as u32))
            .collect();
        for (i, &id) in members.iter().enumerate() {
            let app = ServerApp {
                group: group.clone(),
                members: members.clone(),
                replication: Replication::Active,
                optimisation: OpenOptimisation::None,
                config: gs_config.clone(),
                seed: s.seed.wrapping_add(i as u64),
                directory: Vec::new(),
            };
            let added = sim.add_node(
                Site::Lan,
                Box::new(NsoNode::with_options(id, opts.clone(), Box::new(app))),
            );
            assert_eq!(added, id);
        }
        services.push((group, members));
    }
    let first_hub = s.groups * s.servers_per_group;
    let hub_ids: Vec<NodeId> = (0..s.hubs)
        .map(|i| NodeId::from_index((first_hub + i) as u32))
        .collect();
    for (i, &id) in hub_ids.iter().enumerate() {
        let app = HubApp::new(
            services.clone(),
            s.mode,
            s.ordering,
            Duration::from_millis(1 + i as u64),
        );
        let added = sim.add_node(
            Site::Lan,
            Box::new(NsoNode::with_options(id, opts.clone(), Box::new(app))),
        );
        assert_eq!(added, id);
    }
    sim.run_until(SimTime::ZERO + s.duration);

    let mut all: Vec<(SimTime, Duration)> = Vec::new();
    let mut duplicated = 0;
    for &id in &hub_ids {
        let node = sim.node_ref::<NsoNode>(id).expect("hub node");
        let app = node.app_ref::<HubApp>().expect("hub app");
        all.extend(app.completions.iter().copied());
        duplicated += app.duplicate_completions;
    }
    let (mut batch_frames, mut batch_msgs) = (0, 0);
    for idx in 0..(first_hub + s.hubs) {
        let node = sim
            .node_ref::<NsoNode>(NodeId::from_index(idx as u32))
            .expect("node");
        let snap = node.nso().metrics();
        batch_frames += snap.counter("gcs.batch_frames");
        batch_msgs += snap.counter("gcs.batch_msgs");
    }
    let summary = summarize(&all, s.duration);
    let (lo, hi) = window(s.duration);
    let latencies = all
        .iter()
        .filter(|(at, _)| *at >= lo && *at < hi)
        .map(|&(_, d)| d)
        .collect();
    (
        MultiGroupResult {
            throughput: summary.throughput,
            completed: summary.completed,
            mean_response: summary.mean_response,
            duplicated,
            batch_frames,
            batch_msgs,
        },
        latencies,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_map_sites() {
        assert_eq!(Placement::AllLan.server_site(0), Site::Lan);
        assert_eq!(Placement::AllLan.client_site(5), Site::Lan);
        assert_eq!(Placement::ServersLanClientsWan.server_site(2), Site::Lan);
        assert_ne!(Placement::ServersLanClientsWan.client_site(0), Site::Lan);
        assert_ne!(Placement::AllWan.server_site(1), Site::Lan);
    }

    #[test]
    fn plain_lan_baseline_shape() {
        let r = run_plain(Site::Lan, &[Site::Lan], Duration::from_secs(1), 3);
        assert!(r.completed > 100);
        let ms = r.mean_response.as_secs_f64() * 1e3;
        assert!(ms > 0.3 && ms < 3.0, "LAN plain call {ms} ms");
    }

    #[test]
    fn request_reply_open_lan_works() {
        let s = RequestReplyScenario {
            clients: 2,
            duration: Duration::from_secs(1),
            ..RequestReplyScenario::paper_default(Placement::AllLan, 2, 5)
        };
        let r = run_request_reply(&s);
        assert!(r.completed > 20, "completed {}", r.completed);
        assert!(r.mean_response > Duration::ZERO);
    }

    #[test]
    fn request_reply_directory_lan_works() {
        let s = RequestReplyScenario {
            binding: BindingPolicy::Directory,
            duration: Duration::from_secs(1),
            ..RequestReplyScenario::paper_default(Placement::AllLan, 2, 7)
        };
        let r = run_request_reply(&s);
        assert!(r.completed > 20, "completed {}", r.completed);
        assert_eq!(r.duplicated, 0);
        // Name-based binding is as deterministic as explicit binding:
        // the same seed reproduces the run exactly.
        let again = run_request_reply(&s);
        assert_eq!(r, again);
    }

    #[test]
    fn request_reply_closed_lan_works() {
        let s = RequestReplyScenario {
            binding: BindingPolicy::Closed,
            duration: Duration::from_secs(1),
            ..RequestReplyScenario::paper_default(Placement::AllLan, 2, 6)
        };
        let r = run_request_reply(&s);
        assert!(r.completed > 20, "completed {}", r.completed);
    }

    #[test]
    fn peer_scenario_measures_throughput() {
        let s = PeerScenario {
            members: 3,
            wan: false,
            ordering: OrderProtocol::Symmetric,
            payload_len: 100,
            pace: Duration::from_millis(1),
            time_silence: Duration::from_millis(25),
            duration: Duration::from_secs(1),
            seed: 9,
        };
        let r = run_peer(&s);
        assert!(r.measured > 10, "measured {}", r.measured);
        assert!(r.group_throughput > 0.0);
    }
}
