//! `--self-test`: proves each rule family still fires.
//!
//! Same detectability discipline as PR 3's `--mutate`: for every rule we
//! inject a known-bad snippet (under virtual protocol-crate paths) and
//! assert the rule catches it, plus a known-good twin that must produce
//! zero findings. A regressed rule therefore fails the `check.sh` gate
//! even if the workspace itself happens to be clean. The graph rewrite
//! added *multi-file* cases: a panic two calls deep across crates, an
//! A→B/B→A lock cycle split between files, a determinism taint
//! laundered through a helper crate, blocking I/O behind a shard-worker
//! handler, and a lock held across a call that only sends transitively
//! — none of which any per-body scan can see.

use crate::items::parse_file;
use crate::lexer::lex;
use crate::rules::{self, Finding};

struct Case {
    name: &'static str,
    /// Rule expected to fire on the bad snippet (`None` for good twins).
    expect: Option<&'static str>,
    /// The snippet's files: (virtual workspace path, source). Multi-file
    /// cases exercise cross-file/cross-crate reachability.
    files: &'static [(&'static str, &'static str)],
}

const CASES: &[Case] = &[
    // rule 1 — determinism
    Case {
        name: "determinism/instant-now",
        expect: Some(rules::RULE_DETERMINISM),
        files: &[(
            "crates/gcs/src/selftest.rs",
            "impl GcsMember { fn on_timer(&mut self) { let deadline = Instant::now(); } }",
        )],
    },
    Case {
        name: "determinism/system-time",
        expect: Some(rules::RULE_DETERMINISM),
        files: &[(
            "crates/invocation/src/selftest.rs",
            "fn stamp() -> u64 { SystemTime::now().elapsed().as_secs() }",
        )],
    },
    Case {
        name: "determinism/thread-rng",
        expect: Some(rules::RULE_DETERMINISM),
        files: &[(
            "crates/check/src/selftest.rs",
            "fn jitter() -> u64 { thread_rng().gen() }",
        )],
    },
    Case {
        name: "determinism/hashmap-iteration",
        expect: Some(rules::RULE_DETERMINISM),
        files: &[(
            "crates/core/src/selftest.rs",
            "fn pick(&self) { for (k, v) in self.routes { } let m: HashMap<u32, u32> = Default::default(); }",
        )],
    },
    Case {
        name: "determinism/good-sim-time",
        expect: None,
        files: &[(
            "crates/gcs/src/selftest.rs",
            "fn on_timer(&mut self, now: SimTime) { let deadline = now + self.timeout; let m: BTreeMap<u32, u32> = BTreeMap::new(); }",
        )],
    },
    // rule 2 — panic-freedom on message paths
    Case {
        name: "panic-free/unwrap-in-decode",
        expect: Some(rules::RULE_PANIC_FREE),
        files: &[(
            "crates/orb/src/selftest.rs",
            "impl CdrDecoder { fn read_u32(&mut self) -> u32 { let b: Option<u32> = None; b.unwrap() } }",
        )],
    },
    Case {
        name: "panic-free/indexing-reachable-from-ingest",
        expect: Some(rules::RULE_PANIC_FREE),
        files: &[(
            "crates/gcs/src/selftest.rs",
            "impl GcsMember { fn on_message(&mut self, b: &[u8]) { helper(b); } }\n\
             fn helper(b: &[u8]) -> u8 { b[0] }",
        )],
    },
    Case {
        name: "panic-free/panic-macro-in-from-cdr",
        expect: Some(rules::RULE_PANIC_FREE),
        files: &[(
            "crates/gcs/src/selftest.rs",
            "impl GcsMessage { fn from_cdr(d: &mut CdrDecoder) -> Self { panic!(\"bad tag\") } }",
        )],
    },
    Case {
        name: "panic-free/good-typed-error",
        expect: None,
        files: &[(
            "crates/orb/src/selftest.rs",
            "impl CdrDecoder { fn read_u32(&mut self) -> Result<u32, CdrError> { self.bytes.get(0).copied().ok_or(CdrError::Truncated) } }",
        )],
    },
    // rule 2, graph-shaped — a panic two calls deep, across crate files
    Case {
        name: "panic-free/transitive-two-calls-deep",
        expect: Some(rules::RULE_PANIC_FREE),
        files: &[
            (
                "crates/orb/src/selftest.rs",
                "impl CdrDecoder { fn read_header(&mut self) -> Header { step_one(self) } }",
            ),
            (
                "crates/orb/src/selftest_mid.rs",
                "fn step_one(d: &mut CdrDecoder) -> Header { step_two(d) }",
            ),
            (
                "crates/orb/src/selftest_leaf.rs",
                "fn step_two(d: &mut CdrDecoder) -> Header { d.bytes.pop().expect(\"truncated\") }",
            ),
        ],
    },
    Case {
        name: "panic-free/good-transitive-typed-error",
        expect: None,
        files: &[
            (
                "crates/orb/src/selftest.rs",
                "impl CdrDecoder { fn read_header(&mut self) -> Result<Header, CdrError> { step_one(self) } }",
            ),
            (
                "crates/orb/src/selftest_mid.rs",
                "fn step_one(d: &mut CdrDecoder) -> Result<Header, CdrError> { step_two(d) }",
            ),
            (
                "crates/orb/src/selftest_leaf.rs",
                "fn step_two(d: &mut CdrDecoder) -> Result<Header, CdrError> { d.bytes.pop().ok_or(CdrError::Truncated) }",
            ),
        ],
    },
    // rule 3 — boundedness
    Case {
        name: "bounded/unbounded-channel",
        expect: Some(rules::RULE_BOUNDED),
        files: &[(
            "crates/net/src/selftest.rs",
            "fn mk() { let (tx, rx) = crossbeam_channel::unbounded(); }",
        )],
    },
    Case {
        name: "bounded/std-mpsc",
        expect: Some(rules::RULE_BOUNDED),
        files: &[(
            "crates/rt/src/selftest.rs",
            "fn mk() { let (tx, rx) = std::sync::mpsc::channel(); }",
        )],
    },
    Case {
        name: "bounded/good-flow-queue",
        expect: None,
        files: &[(
            "crates/net/src/selftest.rs",
            "fn mk() { let (tx, rx) = newtop_flow::queue::bounded(64, Discipline::Backpressure); }",
        )],
    },
    // rule 4 — lock hygiene
    Case {
        name: "lock-hygiene/send-under-guard",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        files: &[(
            "crates/net/src/selftest.rs",
            "fn fwd(&self) { let reg = self.registry.read(); reg.tx.try_send(frame); }",
        )],
    },
    Case {
        name: "lock-hygiene/write-all-under-guard",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        files: &[(
            "crates/net/src/selftest.rs",
            "fn fwd(&self) { let mut conns = self.conns.lock(); conns.stream.write_all(&frame); }",
        )],
    },
    Case {
        name: "lock-hygiene/good-clone-then-send",
        expect: None,
        files: &[(
            "crates/net/src/selftest.rs",
            "fn fwd(&self) { let tx = { let reg = self.registry.read(); reg.tx.clone() }; tx.try_send(frame); }",
        )],
    },
    // rule 4, graph-shaped — the send is one call away
    Case {
        name: "lock-hygiene/transitive-send-under-guard",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        files: &[(
            "crates/net/src/selftest.rs",
            "fn fwd(&self) { let reg = self.registry.read(); forward(reg.frame()); }\n\
             fn forward(frame: Frame) { TX.try_send(frame); }",
        )],
    },
    Case {
        name: "lock-hygiene/good-guard-dropped-before-call",
        expect: None,
        files: &[(
            "crates/net/src/selftest.rs",
            "fn fwd(&self) { let frame = { let reg = self.registry.read(); reg.frame() }; forward(frame); }\n\
             fn forward(frame: Frame) { TX.try_send(frame); }",
        )],
    },
    // rule 4 extension — cross-shard channel ownership
    Case {
        name: "lock-hygiene/cross-shard-channel-outside-rt",
        expect: Some(rules::RULE_LOCK_HYGIENE),
        files: &[(
            "crates/workloads/src/selftest.rs",
            "fn fan_in(n: usize) { let shards = n; let (tx, rx) = bounded::<Frame>(64); }",
        )],
    },
    Case {
        name: "lock-hygiene/good-rt-shard-worker-channel",
        expect: None,
        files: &[(
            "crates/rt/src/selftest.rs",
            "fn spawn_ingress(n: usize) { let shards = n; let (tx, rx) = bounded::<Frame>(64); std::thread::Builder::new().spawn(move || {}); }",
        )],
    },
    // rule 5 — durability (append acknowledged without reachable sync)
    Case {
        name: "durability/append-without-sync",
        expect: Some(rules::RULE_DURABILITY),
        files: &[(
            "crates/dir/src/selftest.rs",
            "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage(ev); } \
             fn stage(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } }",
        )],
    },
    Case {
        name: "durability/good-synced-commit-point",
        expect: None,
        files: &[(
            "crates/dir/src/selftest.rs",
            "impl DurableGcsNode { fn on_event(&mut self, ev: NodeEvent) { self.stage(ev); self.commit(); } \
             fn stage(&mut self, ev: NodeEvent) { self.store.lock().unwrap().append(self.id, &rec); } \
             fn commit(&mut self) { self.store.lock().unwrap().sync(self.id); } }",
        )],
    },
    // rule 6 — lock-order deadlock cycles, split across files
    Case {
        name: "lock-order/ab-ba-cycle-across-files",
        expect: Some(rules::RULE_LOCK_ORDER),
        files: &[
            (
                "crates/gcs/src/selftest.rs",
                "fn grab_ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            ),
            (
                "crates/gcs/src/selftest_peer.rs",
                "fn grab_ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
            ),
        ],
    },
    Case {
        name: "lock-order/good-consistent-order",
        expect: None,
        files: &[
            (
                "crates/gcs/src/selftest.rs",
                "fn grab_ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            ),
            (
                "crates/gcs/src/selftest_peer.rs",
                "fn also_ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            ),
        ],
    },
    // rule 7 — determinism taint laundered through a helper crate
    Case {
        name: "determinism-taint/laundered-through-helper",
        expect: Some(rules::RULE_TAINT),
        files: &[
            (
                "crates/gcs/src/selftest.rs",
                "impl GcsMember { fn on_timer(&mut self, tag: u64) { let j = jitter_ms(); } }",
            ),
            (
                "crates/orb/src/selftest.rs",
                "fn jitter_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }",
            ),
        ],
    },
    Case {
        name: "determinism-taint/good-time-as-parameter",
        expect: None,
        files: &[
            (
                "crates/gcs/src/selftest.rs",
                "impl GcsMember { fn on_timer(&mut self, now: SimTime) { let j = jitter_ms(now); } }",
            ),
            (
                "crates/orb/src/selftest.rs",
                "fn jitter_ms(now: SimTime) -> u64 { now.as_millis() }",
            ),
        ],
    },
    // rule 8 — blocking reachable from a shard-worker handler
    Case {
        name: "blocking-in-worker/file-io-behind-handler",
        expect: Some(rules::RULE_BLOCKING),
        files: &[(
            "crates/core/src/selftest.rs",
            "impl Nso { fn on_packet(&mut self, pkt: &Packet) { self.persist(pkt); } \
             fn persist(&mut self, pkt: &Packet) { let f = File::open(self.path()); std::thread::sleep(RETRY); } }",
        )],
    },
    Case {
        name: "blocking-in-worker/good-outbox-staging",
        expect: None,
        files: &[(
            "crates/core/src/selftest.rs",
            "impl Nso { fn on_packet(&mut self, pkt: &Packet) { self.stage(pkt); } \
             fn stage(&mut self, pkt: &Packet) { self.outbox.push(pkt.frame()); } }",
        )],
    },
];

/// Runs the injected-violation suite. Returns a human-readable report;
/// `Err` lists every case whose outcome differed from its expectation.
pub fn run() -> Result<String, String> {
    let mut report = String::new();
    let mut failures = Vec::new();
    for case in CASES {
        let parsed: Vec<_> = case
            .files
            .iter()
            .map(|(path, src)| parse_file(path, lex(src)))
            .collect();
        let findings: Vec<Finding> = rules::run_all(&parsed);
        let outcome = match case.expect {
            Some(rule) => {
                if findings.iter().any(|f| f.rule == rule) {
                    "caught"
                } else {
                    failures.push(format!(
                        "{}: expected rule `{rule}` to fire, findings: {findings:?}",
                        case.name
                    ));
                    "MISSED"
                }
            }
            None => {
                if findings.is_empty() {
                    "clean"
                } else {
                    failures.push(format!(
                        "{}: expected no findings, got: {findings:?}",
                        case.name
                    ));
                    "FALSE-POSITIVE"
                }
            }
        };
        report.push_str(&format!("self-test {:<48} {outcome}\n", case.name));
    }
    let injected = CASES.iter().filter(|c| c.expect.is_some()).count();
    report.push_str(&format!(
        "self-test: {injected} injected violations, {} good twins, {} failures\n",
        CASES.len() - injected,
        failures.len()
    ));
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\n{}", failures.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        if let Err(e) = super::run() {
            panic!("self-test failed:\n{e}");
        }
    }
}
