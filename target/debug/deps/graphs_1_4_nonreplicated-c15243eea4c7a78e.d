/root/repo/target/debug/deps/graphs_1_4_nonreplicated-c15243eea4c7a78e.d: crates/bench/benches/graphs_1_4_nonreplicated.rs Cargo.toml

/root/repo/target/debug/deps/libgraphs_1_4_nonreplicated-c15243eea4c7a78e.rmeta: crates/bench/benches/graphs_1_4_nonreplicated.rs Cargo.toml

crates/bench/benches/graphs_1_4_nonreplicated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
