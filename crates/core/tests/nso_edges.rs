//! Edge cases of the NSO public API: bind failures and timeouts, unknown
//! bindings, plain (non-group) ORB invocations and the naming service.

use std::time::Duration;

use bytes::Bytes;

use newtop::nso::{BindOptions, NewtopError, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use newtop_orb::naming::{NameServer, NamingClient};
use newtop_orb::servant::Servant;

type StartFn = Box<dyn FnOnce(&mut Nso, SimTime, &mut Outbox) + Send>;

/// A scriptable app: runs closures against the NSO and records outputs.
struct Probe {
    outputs: Vec<NsoOutput>,
    on_start: Option<StartFn>,
}

impl Probe {
    fn new(start: impl FnOnce(&mut Nso, SimTime, &mut Outbox) + Send + 'static) -> Self {
        Probe {
            outputs: Vec::new(),
            on_start: Some(Box::new(start)),
        }
    }
}

impl NsoApp for Probe {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        if let Some(f) = self.on_start.take() {
            f(nso, now, out);
        }
    }
    fn on_output(&mut self, _: &mut Nso, output: NsoOutput, _: SimTime, _: &mut Outbox) {
        self.outputs.push(output);
    }
}

fn probe_outputs(sim: &Sim, node: NodeId) -> Vec<NsoOutput> {
    sim.node_ref::<NsoNode>(node)
        .unwrap()
        .app_ref::<Probe>()
        .unwrap()
        .outputs
        .clone()
}

#[test]
fn binding_to_a_non_server_fails() {
    let mut sim = Sim::new(SimConfig::lan(71));
    // Node 0 exists but serves nothing.
    let bystander = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(0),
            Box::new(Probe::new(|_, _, _| {})),
        )),
    );
    let client = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(1),
            Box::new(Probe::new(move |nso, now, out| {
                nso.bind(
                    GroupId::new("ghost"),
                    BindOptions::open(bystander),
                    now,
                    out,
                )
                .unwrap();
            })),
        )),
    );
    sim.run_until(SimTime::from_secs(5));
    let outs = probe_outputs(&sim, client);
    assert!(
        outs.iter()
            .any(|o| matches!(o, NsoOutput::BindFailed { .. })),
        "refusal from a non-serving node surfaces as BindFailed: {outs:?}"
    );
}

#[test]
fn binding_to_a_dead_node_times_out() {
    let mut sim = Sim::new(SimConfig::lan(72));
    let dead = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(0),
            Box::new(Probe::new(|_, _, _| {})),
        )),
    );
    sim.schedule_crash(SimTime::ZERO, dead);
    let client = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(1),
            Box::new(Probe::new(move |nso, now, out| {
                nso.bind(
                    GroupId::new("svc"),
                    BindOptions::open(dead).with_timeout(Duration::from_millis(300)),
                    now,
                    out,
                )
                .unwrap();
            })),
        )),
    );
    sim.run_until(SimTime::from_secs(2));
    let outs = probe_outputs(&sim, client);
    assert!(outs
        .iter()
        .any(|o| matches!(o, NsoOutput::BindFailed { .. })));
}

/// Call-side errors surface synchronously through the [`GroupHandle`]
/// surface (the group-id-threading methods are gone): a handle is a
/// plain value, so the group underneath it can be missing, pending or
/// torn down, and every operation reports that as an error rather than
/// silently dropping work.
///
/// [`GroupHandle`]: newtop::nso::GroupHandle
#[test]
fn api_errors_are_reported_synchronously() {
    let mut sim = Sim::new(SimConfig::lan(73));
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(0),
            Box::new(Probe::new(|nso, now, out| {
                // A binding handle exists as soon as `bind` is issued,
                // but the binding itself is not established until
                // `BindingReady`: call-side operations in the gap fail.
                let pending = nso
                    .bind(
                        GroupId::new("svc"),
                        BindOptions::open(NodeId::from_index(9)),
                        now,
                        out,
                    )
                    .unwrap();
                let err = pending
                    .invoke(nso, "op", Bytes::new(), ReplyMode::All, now, out)
                    .unwrap_err();
                assert!(matches!(err, NewtopError::Client(_)));
                let err = pending.retry(nso, 0, now, out).unwrap_err();
                assert!(matches!(err, NewtopError::Client(_)));
                let err = pending.unbind(nso, now, out).unwrap_err();
                assert!(matches!(err, NewtopError::Unbound(_)));
                // A client-binding handle refuses peer-group operations.
                let err = pending
                    .send(nso, Bytes::new(), DeliveryOrder::Total, now, out)
                    .unwrap_err();
                assert!(matches!(err, NewtopError::Unbound(_)));
                // Unknown monitor attachment.
                let err = nso
                    .g2g_invoke(
                        &GroupId::new("nope"),
                        "op",
                        Bytes::new(),
                        ReplyMode::All,
                        now,
                        out,
                    )
                    .unwrap_err();
                assert!(matches!(err, NewtopError::Unbound(_)));
                // A peer handle outlives its membership: sending after
                // leaving reports the GCS refusal.
                let peers = nso
                    .create_peer_group(
                        GroupId::new("p"),
                        vec![nso.node()],
                        GroupConfig::peer(),
                        now,
                        out,
                    )
                    .unwrap();
                peers.leave(nso, now, out).unwrap();
                let err = peers
                    .send(nso, Bytes::new(), DeliveryOrder::Total, now, out)
                    .unwrap_err();
                assert!(matches!(err, NewtopError::Gcs(_)));
                // Group id collision for an explicit binding id.
                nso.create_peer_group(
                    GroupId::new("taken"),
                    vec![nso.node()],
                    GroupConfig::peer(),
                    now,
                    out,
                )
                .unwrap();
                let err = nso
                    .bind(
                        GroupId::new("svc"),
                        BindOptions::open(NodeId::from_index(9))
                            .with_group_id(GroupId::new("taken")),
                        now,
                        out,
                    )
                    .unwrap_err();
                assert!(matches!(err, NewtopError::GroupInUse(_)));
                // A bind without a target is rejected up front.
                let err = nso
                    .bind(GroupId::new("svc"), BindOptions::default(), now, out)
                    .unwrap_err();
                assert!(matches!(err, NewtopError::BindTargetMissing(_)));
                // Monitor setup at a non-server manager.
                let err = nso
                    .setup_monitor_group(
                        GroupId::new("gz"),
                        GroupId::new("gx"),
                        nso.node(), // we are the manager but serve nothing
                        GroupId::new("gy"),
                        vec![nso.node()],
                        GroupConfig::request_reply(),
                        now,
                        out,
                    )
                    .unwrap_err();
                assert!(matches!(err, NewtopError::NotAServer(_)));
            })),
        )),
    );
    sim.run_until(SimTime::from_millis(100));
}

#[test]
fn plain_invocations_and_naming_work_through_the_nso() {
    let mut sim = Sim::new(SimConfig::lan(74));
    // Node 0 hosts the name server and a plain servant.
    let server = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(0),
            Box::new(Probe::new(|nso, _, _| {
                nso.register_plain_servant(
                    newtop_orb::naming::NAME_SERVICE_KEY,
                    Box::new(NameServer::new()) as Box<dyn Servant>,
                );
                nso.register_plain_servant(
                    "greeter",
                    Box::new(|_op: &str, args: &[u8]| {
                        Ok(Bytes::from(format!(
                            "hello {}",
                            String::from_utf8_lossy(args)
                        )))
                    }),
                );
            })),
        )),
    );
    // Node 1: bind the greeter in the name service, resolve it back, then
    // invoke it — all plain one-to-one ORB calls.
    let client = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(1),
            Box::new(Probe::new(move |nso, _, out| {
                let ns = NamingClient::server_ref(server);
                let greeter = newtop_orb::ior::ObjectRef::new(server, "greeter");
                nso.plain_invoke(
                    &ns,
                    newtop_orb::naming::ops::BIND,
                    NamingClient::encode_bind("greeter", &greeter),
                    out,
                );
                nso.plain_invoke(
                    &ns,
                    newtop_orb::naming::ops::RESOLVE,
                    NamingClient::encode_resolve("greeter"),
                    out,
                );
                nso.plain_invoke(&greeter, "greet", Bytes::from_static(b"newtop"), out);
            })),
        )),
    );
    sim.run_until(SimTime::from_secs(2));
    let outs = probe_outputs(&sim, client);
    let replies: Vec<&NsoOutput> = outs
        .iter()
        .filter(|o| matches!(o, NsoOutput::PlainReply { .. }))
        .collect();
    assert_eq!(replies.len(), 3, "bind + resolve + greet all replied");
    // The resolve reply decodes to the greeter's reference.
    let resolved = replies.iter().find_map(|o| {
        let NsoOutput::PlainReply {
            result: Ok(body), ..
        } = o
        else {
            return None;
        };
        NamingClient::decode_resolve_reply(body).ok().flatten()
    });
    assert_eq!(
        resolved,
        Some(newtop_orb::ior::ObjectRef::new(server, "greeter"))
    );
    // And the greeting came back.
    assert!(replies.iter().any(|o| {
        matches!(o, NsoOutput::PlainReply { result: Ok(b), .. } if b.as_ref() == b"hello newtop")
    }));
}

#[test]
fn unbind_tears_the_binding_down() {
    let mut sim = Sim::new(SimConfig::lan(75));
    let servers: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
    for &s in &servers {
        let members = servers.clone();
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(Probe::new(move |nso, now, out| {
                    nso.create_server_group(
                        GroupId::new("svc"),
                        members,
                        Replication::Active,
                        OpenOptimisation::None,
                        GroupConfig::request_reply(),
                        now,
                        out,
                    )
                    .unwrap();
                    nso.register_group_servant(
                        GroupId::new("svc"),
                        Box::new(|_: &str, _: &[u8]| Bytes::from_static(b"ok")),
                    );
                })),
            )),
        );
    }
    struct UnbindClient {
        servers: Vec<NodeId>,
        phase: u32,
    }
    impl NsoApp for UnbindClient {
        fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
            nso.bind(
                GroupId::new("svc"),
                BindOptions::open(self.servers[0]),
                now,
                out,
            )
            .unwrap();
        }
        fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
            if let NsoOutput::BindingReady { group } = output {
                self.phase = 1;
                let binding = nso.handle_for(&group).unwrap();
                binding.unbind(nso, now, out).unwrap();
                // Invoking through the now-stale handle fails
                // synchronously.
                let err = binding
                    .invoke(nso, "op", Bytes::new(), ReplyMode::All, now, out)
                    .unwrap_err();
                assert!(matches!(err, NewtopError::Client(_)));
                // And the handle is no longer recoverable.
                assert!(nso.handle_for(&group).is_none());
                self.phase = 2;
            }
        }
    }
    let client = sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            NodeId::from_index(2),
            Box::new(UnbindClient {
                servers: servers.clone(),
                phase: 0,
            }),
        )),
    );
    sim.run_until(SimTime::from_secs(3));
    let app = sim
        .node_ref::<NsoNode>(client)
        .unwrap()
        .app_ref::<UnbindClient>()
        .unwrap();
    assert_eq!(app.phase, 2, "bind, unbind and post-unbind error all ran");
}
