//! A from-scratch mini-ORB: the CORBA-shaped substrate under NewTop.
//!
//! The paper builds NewTop as a CORBA *service*: every NewTop service
//! object (NSO) talks to its peers through ordinary one-to-one ORB
//! invocations (the paper used omniORB2), and the measured ~2.5× overhead
//! of a NewTop call over a plain CORBA call comes precisely from group
//! messages being full ORB invocations (Fig. 9's m1..m6). This crate
//! reproduces that substrate:
//!
//! * [`cdr`] — CDR-style marshalling (aligned primitives, strings,
//!   sequences) with [`cdr::CdrEncode`]/[`cdr::CdrDecode`] traits;
//! * [`ior`] — object references ([`ior::ObjectRef`], the IOR) and object
//!   *group* references ([`ior::GroupObjectRef`], the IOGR of the Fault
//!   Tolerant CORBA specification the paper anticipates), including the
//!   primary-then-failover member selection used for transparent
//!   rebinding;
//! * [`giop`] — GIOP-shaped request/reply framing;
//! * [`servant`] — servants and the object adapter;
//! * [`orb`] — the sans-IO ORB core: synchronous-style request/reply
//!   correlation, oneway invocations and servant dispatch, driven by
//!   whatever runtime owns it (simulator or threads);
//! * [`naming`] — a minimal naming service (bind/resolve), the CORBA
//!   NameService stand-in used by the runnable examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdr;
pub mod giop;
pub mod ior;
pub mod naming;
pub mod orb;
pub mod servant;

pub use cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};
pub use giop::{GiopMessage, ReplyStatus, SystemException};
pub use ior::{GroupObjectRef, ObjectKey, ObjectRef};
pub use orb::{InvokeError, OrbCore, OrbIncoming, RequestId};
pub use servant::{ObjectAdapter, Servant, ServantError};
