/root/repo/target/debug/deps/conference-0929fb21b76c4d24.d: examples/src/bin/conference.rs

/root/repo/target/debug/deps/conference-0929fb21b76c4d24: examples/src/bin/conference.rs

examples/src/bin/conference.rs:
