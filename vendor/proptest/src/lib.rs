//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro over
//! `name in strategy` bindings, integer/float range strategies, `any`,
//! tuple/vec/option combinators and simple `[class]{m,n}` string
//! patterns. Cases are generated from a deterministic per-case seed; no
//! shrinking is performed — a failing case panics with its case number
//! so it can be replayed.

/// Test-runner configuration.
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// The deterministic generator handed to strategies (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one case of one property.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D041_3A11,
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategies: how values are generated.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Simple pattern strategies: `&str` of the form `[class]{m,n}` or
    /// `.{m,n}` generates matching ASCII strings (`.` means printable
    /// ASCII). A bare class or dot generates exactly one character.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let mut chars = pattern.chars().peekable();
        let mut alphabet: Vec<char> = Vec::new();
        match chars.next() {
            Some('[') => {
                let mut class: Vec<char> = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                alphabet.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        alphabet.push(class[i]);
                        i += 1;
                    }
                }
            }
            Some('.') => {
                // Printable ASCII.
                alphabet.extend((0x20u8..0x7F).map(char::from));
            }
            Some(c) => alphabet.push(c),
            None => alphabet.push('a'),
        }
        if alphabet.is_empty() {
            alphabet.push('a');
        }
        let rest: String = chars.collect();
        let (min, max) =
            if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or(0),
                        n.trim()
                            .parse()
                            .unwrap_or_else(|_| m.trim().parse().unwrap_or(0)),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
        (alphabet, min, max.max(min))
    }
}

/// `any::<T>()` support: the full domain of a type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Arbitrary bit patterns, NaNs and infinities included: codecs
            // must round-trip them bit-exactly.
            f64::from_bits(rng.next_u64())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A strategy for `Option<T>`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob import used by test modules.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_patterns(
            x in 3u64..10,
            f in 0.0f64..1.0,
            flag in any::<bool>(),
            s in "[a-z_]{1,8}",
            v in crate::collection::vec((0u32..4, 1u64..9), 0..5),
            o in crate::option::of(any::<u16>()),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = flag;
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
            for (a, b) in &v {
                prop_assert!(*a < 4 && (1..9).contains(b));
            }
            let _ = o;
        }
    }
}
