/root/repo/target/release/deps/newtop_gcs-349d6cc69afee633.d: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

/root/repo/target/release/deps/libnewtop_gcs-349d6cc69afee633.rlib: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

/root/repo/target/release/deps/libnewtop_gcs-349d6cc69afee633.rmeta: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs

crates/gcs/src/lib.rs:
crates/gcs/src/clock.rs:
crates/gcs/src/engine.rs:
crates/gcs/src/group.rs:
crates/gcs/src/member.rs:
crates/gcs/src/messages.rs:
crates/gcs/src/testkit.rs:
crates/gcs/src/view.rs:
