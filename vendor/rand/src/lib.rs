//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: [`rngs::StdRng`] seeded
//! through [`SeedableRng::seed_from_u64`], with [`Rng::gen_range`] over
//! integer ranges and [`Rng::gen_bool`]. The generator is xoshiro256**,
//! seeded via splitmix64 — deterministic across platforms, which is all
//! the simulator needs.

use std::ops::{Range, RangeInclusive};

/// Uniform sampling over a range type, for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw-output interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, as the real crate does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generators provided by the crate.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    // Modulo reduction: the bias is negligible for simulation jitter and
    // the result stays deterministic across platforms.
    if span == 0 {
        return 0;
    }
    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    raw % span
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span == 0 {
                    // Full u128 domain: raw 128 bits.
                    return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t;
                }
                start + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, u128, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let x = a.gen_range(10u64..20);
            assert_eq!(x, b.gen_range(10u64..20));
            assert!((10..20).contains(&x));
            let y = a.gen_range(0u128..=1000);
            assert_eq!(y, b.gen_range(0u128..=1000));
            assert!(y <= 1000);
            assert_eq!(a.gen_bool(0.5), b.gen_bool(0.5));
        }
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }
}
