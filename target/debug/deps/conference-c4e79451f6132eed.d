/root/repo/target/debug/deps/conference-c4e79451f6132eed.d: examples/src/bin/conference.rs Cargo.toml

/root/repo/target/debug/deps/libconference-c4e79451f6132eed.rmeta: examples/src/bin/conference.rs Cargo.toml

examples/src/bin/conference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
