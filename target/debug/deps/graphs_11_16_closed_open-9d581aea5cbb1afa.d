/root/repo/target/debug/deps/graphs_11_16_closed_open-9d581aea5cbb1afa.d: crates/bench/benches/graphs_11_16_closed_open.rs Cargo.toml

/root/repo/target/debug/deps/libgraphs_11_16_closed_open-9d581aea5cbb1afa.rmeta: crates/bench/benches/graphs_11_16_closed_open.rs Cargo.toml

crates/bench/benches/graphs_11_16_closed_open.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
