//! A minimal Rust lexer.
//!
//! The workspace builds offline from vendored stand-ins, so `syn` is not
//! available; the analyzer instead works on a token stream produced by
//! this hand-rolled scanner. It understands exactly as much Rust as the
//! rules need: comments (line, nested block, doc), string/char/byte/raw
//! literals, lifetimes, numbers, attributes (captured whole, with their
//! inner text), identifiers and single-character punctuation. Everything
//! the rules match on — call shapes, indexing, lock/guard bindings — is
//! expressed over this stream.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// A literal (string, char, number, lifetime); `text` is a
    /// placeholder, not the literal's value.
    Lit,
    /// An attribute `#[...]` / `#![...]`; `text` is the inner text.
    Attr,
}

/// One lexed token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Identifier text, punctuation character, literal placeholder, or
    /// attribute interior.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes Rust source into a token stream. Never fails: unrecognized
/// bytes become single-character punctuation tokens, which at worst
/// makes a rule miss — the self-test guards against systematic misses.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => skip_line_comment(&mut cur),
            b'/' if cur.peek_at(1) == Some(b'*') => skip_block_comment(&mut cur),
            b'"' => {
                skip_string(&mut cur);
                out.push(lit(line));
            }
            b'r' | b'b' | b'c' if starts_raw_or_byte_string(&cur) => {
                skip_prefixed_string(&mut cur);
                out.push(lit(line));
            }
            b'\'' => {
                lex_quote(&mut cur);
                out.push(lit(line));
            }
            b'#' if matches!(cur.peek_at(1), Some(b'[')) || is_inner_attr(&cur) => {
                let text = lex_attr(&mut cur);
                out.push(Token {
                    kind: TokKind::Attr,
                    text,
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let text = lex_ident(&mut cur);
                out.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                out.push(lit(line));
            }
            _ => {
                cur.bump();
                out.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    out
}

fn lit(line: u32) -> Token {
    Token {
        kind: TokKind::Lit,
        text: String::new(),
        line,
    }
}

fn skip_line_comment(cur: &mut Cursor<'_>) {
    while let Some(b) = cur.bump() {
        if b == b'\n' {
            break;
        }
    }
}

fn skip_block_comment(cur: &mut Cursor<'_>) {
    cur.bump();
    cur.bump();
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => return,
        }
    }
}

fn skip_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// True at `r`/`b`/`c` when what follows forms a raw or byte or C string
/// (as opposed to an identifier starting with that letter).
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let mut off = 1;
    // Allow `br`, `cr`, `rb` style double prefixes.
    if matches!(cur.peek_at(off), Some(b'r' | b'b')) && cur.peek() != cur.peek_at(off) {
        off += 1;
    }
    let mut hashes = 0;
    while cur.peek_at(off + hashes) == Some(b'#') {
        hashes += 1;
    }
    // `r#ident` (raw identifier) has hashes but no quote.
    cur.peek_at(off + hashes) == Some(b'"') && !(hashes > 0 && off == 1 && cur.peek() != Some(b'r'))
}

fn skip_prefixed_string(cur: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(b) = cur.peek() {
        match b {
            b'r' => {
                raw = true;
                cur.bump();
            }
            b'b' | b'c' => {
                cur.bump();
            }
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if !raw && hashes == 0 {
        skip_string(cur);
        return;
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => return,
            Some(b'"') => {
                let mut seen = 0;
                while seen < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal) and consumes
/// either.
fn lex_quote(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    if let Some(b) = cur.peek() {
        if is_ident_start(b) {
            // Could be a lifetime or a char like 'a'. Scan the ident run;
            // a closing quote right after one char means char literal.
            let mut len = 0;
            while cur.peek_at(len).map(is_ident_continue).unwrap_or(false) {
                len += 1;
            }
            if len == 1 && cur.peek_at(1) == Some(b'\'') {
                cur.bump();
                cur.bump();
                return;
            }
            for _ in 0..len {
                cur.bump();
            }
            return; // lifetime: no closing quote
        }
    }
    // Escaped or punctuation char literal.
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'\'' => return,
            _ => {}
        }
    }
}

fn is_inner_attr(cur: &Cursor<'_>) -> bool {
    cur.peek_at(1) == Some(b'!') && cur.peek_at(2) == Some(b'[')
}

fn lex_attr(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // '#'
    if cur.peek() == Some(b'!') {
        cur.bump();
    }
    cur.bump(); // '['
    let start = cur.pos;
    let mut depth = 1u32;
    while let Some(b) = cur.peek() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                    cur.bump();
                    return text;
                }
            }
            b'"' => {
                skip_string(cur);
                continue;
            }
            _ => {}
        }
        cur.bump();
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

fn lex_ident(cur: &mut Cursor<'_>) -> String {
    let start = cur.pos;
    while cur.peek().map(is_ident_continue).unwrap_or(false) {
        cur.bump();
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

fn lex_number(cur: &mut Cursor<'_>) {
    // Loose: digits, hex/binary prefixes, underscores, suffixes, and a
    // fractional part — but never swallow the second dot of `0..n`.
    while let Some(b) = cur.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            cur.bump();
        } else if b == b'.' && cur.peek_at(1) != Some(b'.') {
            if cur.peek_at(1).map(|n| n.is_ascii_digit()) == Some(true) {
                cur.bump();
            } else {
                // method call on a literal like `1.to_string()`
                break;
            }
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Lit)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("fn foo(x: u32) -> u32 { x }"),
            vec!["fn", "foo", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "}"]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            texts("a // line\nb /* block /* nested */ still */ c"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let toks = lex(r#"let s = "fn bad() { x.unwrap() }"; done"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "done"]);
    }

    #[test]
    fn raw_strings_and_bytes() {
        let toks = lex(r###"let s = r#"has "quotes" and unwrap()"#; let b = b"x"; end"###);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "let", "b", "end"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // Lifetimes are consumed whole (no `a` ident leaks out), and
        // char literals never open a string.
        assert_eq!(
            idents,
            vec!["fn", "f", "x", "str", "let", "c", "let", "esc"]
        );
    }

    #[test]
    fn attributes_are_captured_whole() {
        let toks = lex("#[cfg(test)]\nmod tests {}");
        assert_eq!(toks[0].kind, TokKind::Attr);
        assert_eq!(toks[0].text, "cfg(test)");
        assert!(toks[1].is_ident("mod"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        assert_eq!(
            texts("for i in 0..10 {}"),
            vec!["for", "i", "in", ".", ".", "{", "}"]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type") || t.text == "r"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
