/root/repo/target/debug/deps/replicated_bank-dd788eb0b9609442.d: examples/src/bin/replicated_bank.rs

/root/repo/target/debug/deps/replicated_bank-dd788eb0b9609442: examples/src/bin/replicated_bank.rs

examples/src/bin/replicated_bank.rs:
