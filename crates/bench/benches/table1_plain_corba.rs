//! **Table 1** — performance of plain CORBA (no group service): timed
//! request (ms) and throughput (req/s) for one client and one server at
//! the paper's four placements.

use newtop_bench::bench_seed;
use newtop_net::stats::TextTable;
use newtop_workloads::figures::table1_plain_corba;

fn main() {
    let rows = table1_plain_corba(bench_seed());
    let mut table = TextTable::new(
        "Table 1: Performance of CORBA (plain, no group service)",
        &["placement", "timed request (ms)", "requests/s"],
    );
    for r in &rows {
        table.row(vec![
            r.placement.clone(),
            format!("{:.2}", r.response_ms),
            format!("{:.0}", r.throughput),
        ]);
    }
    println!("{table}");
    println!(
        "paper shape: LAN fastest; Pisa–Newcastle the slowest WAN pair; \
         throughput the reciprocal ordering."
    );
}
