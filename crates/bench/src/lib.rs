//! Benchmark harness for the NewTop reproduction.
//!
//! Every table and figure of the paper's evaluation (§5) has a bench
//! target under `benches/` that regenerates it on the deterministic
//! simulator and prints the rows/series in the paper's format:
//!
//! | Paper exhibit | Bench target |
//! |---|---|
//! | Table 1 (plain CORBA) | `table1_plain_corba` |
//! | Graphs 1–4 (non-replicated via NewTop) | `graphs_1_4_nonreplicated` |
//! | Graphs 5–10 (optimised open vs non-replicated) | `graphs_5_10_optimised` |
//! | Graphs 11–16 (closed vs open) | `graphs_11_16_closed_open` |
//! | Graphs 17–18 (peer participation) | `graphs_17_18_peer` |
//! | §5.1.3 / §4.2 design choices | `ablations` |
//!
//! `micro` contains criterion micro-benchmarks of the substrate (CDR
//! marshalling, wire codecs, the delivery engine's ordering pipelines).
//!
//! Run everything with `cargo bench --workspace`; each figure target also
//! accepts `NEWTOP_BENCH_SEED` to vary the simulation seed.

pub mod scale;

/// The default seed used by the figure benches (override with the
/// `NEWTOP_BENCH_SEED` environment variable).
#[must_use]
pub fn bench_seed() -> u64 {
    std::env::var("NEWTOP_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000)
}

/// The client sweep used by the request-reply figures (the paper swept 1
/// to 20 clients).
pub const CLIENT_SWEEP: &[usize] = &[1, 2, 4, 8, 12, 16, 20];

/// The group sizes used by the peer figures.
pub const PEER_SIZES: &[usize] = &[2, 3, 4, 6, 8, 10];
