//! A bank account actively replicated over a **closed** client/server
//! group (Fig. 3(i) of the paper), on the deterministic simulator.
//!
//! Deposits and withdrawals are totally ordered, so all three replicas
//! stay identical; when one replica is crashed mid-run the failure is
//! masked — the client keeps going without rebinding (§5.1.3).
//!
//! ```text
//! cargo run -p newtop-examples --bin replicated_bank
//! ```

use std::time::Duration;

use newtop::nso::{BindOptions, GroupHandle, Nso, NsoOutput};
use newtop::simnode::{NsoApp, NsoNode};
use newtop::tags;
use newtop_gcs::group::{GroupConfig, GroupId};
use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
use newtop_net::sim::{Outbox, Sim, SimConfig};
use newtop_net::site::{NodeId, Site};
use newtop_net::time::SimTime;
use newtop_orb::cdr::{CdrDecoder, CdrEncoder};

fn service() -> GroupId {
    GroupId::new("bank")
}

/// One bank replica: a single account balance mutated by totally-ordered
/// deposits/withdrawals. Deterministic, so active replication keeps the
/// copies identical.
struct BankReplica {
    members: Vec<NodeId>,
}

impl NsoApp for BankReplica {
    fn on_start(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        nso.create_server_group(
            service(),
            self.members.clone(),
            Replication::Active,
            OpenOptimisation::None,
            GroupConfig::request_reply(),
            now,
            out,
        )
        .expect("server group");
        let mut balance: i64 = 0;
        nso.register_group_servant(
            service(),
            Box::new(move |op: &str, args: &[u8]| {
                let mut dec = CdrDecoder::new(args);
                let amount = dec.read_i64().unwrap_or(0);
                match op {
                    "deposit" => balance += amount,
                    "withdraw" if balance >= amount => {
                        balance -= amount;
                    }
                    _ => {}
                }
                let mut enc = CdrEncoder::new();
                enc.write_i64(balance);
                enc.finish()
            }),
        );
    }

    fn on_output(&mut self, _: &mut Nso, _: NsoOutput, _: SimTime, _: &mut Outbox) {}
}

/// A teller issuing a scripted sequence of operations over a closed
/// binding and checking that all replicas report identical balances.
struct Teller {
    servers: Vec<NodeId>,
    script: Vec<(&'static str, i64)>,
    step: usize,
    binding: Option<GroupHandle>,
    log: Vec<String>,
}

impl Teller {
    fn next_op(&mut self, nso: &mut Nso, now: SimTime, out: &mut Outbox) {
        let Some(binding) = self.binding.clone() else {
            return;
        };
        let Some(&(op, amount)) = self.script.get(self.step) else {
            return;
        };
        let mut enc = CdrEncoder::new();
        enc.write_i64(amount);
        binding
            .invoke(nso, op, enc.finish(), ReplyMode::Majority, now, out)
            .expect("invoke");
    }
}

impl NsoApp for Teller {
    fn on_start(&mut self, _nso: &mut Nso, _now: SimTime, out: &mut Outbox) {
        out.set_timer(Duration::from_millis(5), tags::APP_BASE);
    }

    fn on_timer(&mut self, nso: &mut Nso, _tag: u64, now: SimTime, out: &mut Outbox) {
        nso.bind(
            service(),
            BindOptions::closed(self.servers.clone()),
            now,
            out,
        )
        .expect("bind");
    }

    fn on_output(&mut self, nso: &mut Nso, output: NsoOutput, now: SimTime, out: &mut Outbox) {
        match output {
            NsoOutput::BindingReady { group } => {
                self.binding = nso.handle_for(&group);
                self.next_op(nso, now, out);
            }
            NsoOutput::InvocationComplete { replies, .. } => {
                let (op, amount) = self.script[self.step];
                let balances: Vec<i64> = replies
                    .iter()
                    .map(|(_, body)| CdrDecoder::new(body).read_i64().expect("balance"))
                    .collect();
                assert!(
                    balances.windows(2).all(|w| w[0] == w[1]),
                    "replica balances diverged: {balances:?}"
                );
                self.log.push(format!(
                    "{op:9} {amount:4} -> balance {} (from {} replicas, all equal)",
                    balances[0],
                    balances.len(),
                ));
                self.step += 1;
                self.next_op(nso, now, out);
            }
            _ => {}
        }
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::lan(7));
    let servers: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
    for &s in &servers {
        sim.add_node(
            Site::Lan,
            Box::new(NsoNode::new(
                s,
                Box::new(BankReplica {
                    members: servers.clone(),
                }),
            )),
        );
    }
    let teller_id = NodeId::from_index(3);
    let script = vec![
        ("deposit", 100),
        ("deposit", 250),
        ("withdraw", 30),
        ("deposit", 5),
        ("withdraw", 500), // refused: insufficient funds
        ("withdraw", 25),
        ("deposit", 40),
        ("withdraw", 100),
    ];
    sim.add_node(
        Site::Lan,
        Box::new(NsoNode::new(
            teller_id,
            Box::new(Teller {
                servers: servers.clone(),
                script,
                step: 0,
                binding: None,
                log: Vec::new(),
            }),
        )),
    );

    // Crash one replica mid-run: the closed group masks it (the quorum
    // shrinks automatically; no rebinding).
    sim.schedule_crash(SimTime::from_millis(18), servers[2]);
    sim.run_until(SimTime::from_secs(10));

    let teller = sim
        .node_ref::<NsoNode>(teller_id)
        .unwrap()
        .app_ref::<Teller>()
        .unwrap();
    println!("replicated bank over a closed client/server group");
    println!(
        "(replica {} crashed at t=18ms — masked, no rebind)\n",
        servers[2]
    );
    for line in &teller.log {
        println!("  {line}");
    }
    assert_eq!(teller.step, 8, "every operation completed");
    println!("\nfinal balance 240 confirmed identically by the surviving replicas");
}
