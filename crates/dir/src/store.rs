//! The durable store: per-node framed log + snapshot with an explicit
//! staged/synced boundary.
//!
//! The store models a node's stable storage, so it lives *outside* the
//! simulated node's volatile state — harness nodes hold a
//! [`SharedStore`] handle that survives crash/restart. Writes go
//! through two stages:
//!
//! * [`DurableStore::append`] stages a record (an OS buffer write);
//! * [`DurableStore::sync`] moves everything staged to the synced log
//!   (the fsync). Appends are cheap, so callers batch: one sync per
//!   handled event covers every record the event produced.
//!
//! A crash ([`DurableStore::crash`]) discards staged bytes — exactly
//! what a real machine loses — and recovery reads only the synced
//! prefix. The `newtop-analyze` durability rule enforces the calling
//! convention: no handler may acknowledge an append without a reachable
//! sync.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use newtop_net::site::NodeId;

use crate::log::{append_frame, read_frame, LogError, LogRecord};
use crate::recovery::{replay, RecoveredState};
use crate::snapshot::NodeSnapshot;

/// One node's stable storage.
#[derive(Debug, Default)]
struct NodeDurable {
    /// The latest installed snapshot, framed, if any.
    snapshot: Option<Vec<u8>>,
    /// Synced log frames (records since the snapshot).
    log: Vec<u8>,
    /// Staged-but-unsynced log frames; lost on crash.
    staged: Vec<u8>,
    /// Records in the synced log.
    log_records: u64,
    /// Records staged.
    staged_records: u64,
    /// Syncs performed (one per fsync batch).
    syncs: u64,
}

/// The durable stores of every node in a scenario.
#[derive(Debug, Default)]
pub struct DurableStore {
    nodes: BTreeMap<u32, NodeDurable>,
}

/// A store handle shared between harness nodes and the scenario driver.
pub type SharedStore = Arc<Mutex<DurableStore>>;

/// Creates a fresh shared store.
#[must_use]
pub fn shared_store() -> SharedStore {
    Arc::new(Mutex::new(DurableStore::default()))
}

impl DurableStore {
    fn slot(&mut self, node: NodeId) -> &mut NodeDurable {
        self.nodes.entry(node.index()).or_default()
    }

    /// Stages one record on `node`'s log. Not durable until
    /// [`DurableStore::sync`].
    pub fn append(&mut self, node: NodeId, record: &LogRecord) {
        let slot = self.slot(node);
        append_frame(&mut slot.staged, record);
        slot.staged_records += 1;
    }

    /// Makes everything staged on `node` durable (the fsync point).
    pub fn sync(&mut self, node: NodeId) {
        let slot = self.slot(node);
        if slot.staged.is_empty() {
            return;
        }
        slot.log.append(&mut slot.staged);
        slot.log_records += slot.staged_records;
        slot.staged_records = 0;
        slot.syncs += 1;
    }

    /// Models the crash: staged bytes are lost, synced state survives.
    pub fn crash(&mut self, node: NodeId) {
        let slot = self.slot(node);
        slot.staged.clear();
        slot.staged_records = 0;
    }

    /// Replays `node`'s synced state (snapshot, then the log suffix).
    ///
    /// # Errors
    ///
    /// Any [`LogError`] from the snapshot or a log frame.
    pub fn recover(&self, node: NodeId) -> Result<RecoveredState, LogError> {
        match self.nodes.get(&node.index()) {
            Some(slot) => replay(slot.snapshot.as_deref(), &slot.log),
            None => Ok(RecoveredState::default()),
        }
    }

    /// Compacts `node`'s durable state: materialises the synced log into
    /// a snapshot, installs it and truncates the log. Staged bytes are
    /// untouched (they sync after the snapshot point).
    ///
    /// # Errors
    ///
    /// Any [`LogError`] from reading the state back.
    pub fn compact(&mut self, node: NodeId) -> Result<(), LogError> {
        let state = self.recover(node)?;
        let snap: NodeSnapshot = state.into_snapshot();
        let mut framed = Vec::new();
        append_frame(&mut framed, &snap);
        let slot = self.slot(node);
        slot.snapshot = Some(framed);
        slot.log.clear();
        slot.log_records = 0;
        Ok(())
    }

    /// `(snapshot bytes, synced log bytes, synced log records)` for
    /// `node` — the replay cost a cold restart pays.
    #[must_use]
    pub fn durable_size(&self, node: NodeId) -> (usize, usize, u64) {
        match self.nodes.get(&node.index()) {
            Some(slot) => (
                slot.snapshot.as_ref().map_or(0, Vec::len),
                slot.log.len(),
                slot.log_records,
            ),
            None => (0, 0, 0),
        }
    }

    /// Syncs performed on `node` so far.
    #[must_use]
    pub fn syncs(&self, node: NodeId) -> u64 {
        self.nodes.get(&node.index()).map_or(0, |s| s.syncs)
    }

    /// The installed snapshot, decoded, if any.
    ///
    /// # Errors
    ///
    /// Any [`LogError`] reading the snapshot frame.
    pub fn snapshot_of(&self, node: NodeId) -> Result<Option<NodeSnapshot>, LogError> {
        match self
            .nodes
            .get(&node.index())
            .and_then(|s| s.snapshot.as_deref())
        {
            Some(framed) => Ok(Some(read_frame::<NodeSnapshot>(framed)?.0)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::DeliveredRec;
    use bytes::Bytes;
    use newtop_gcs::group::{DeliveryOrder, GroupConfig, GroupId};

    fn delivered(group: &GroupId, n: u64) -> LogRecord {
        LogRecord::Delivered {
            group: group.clone(),
            rec: DeliveredRec {
                sender: NodeId::from_index(0),
                order: DeliveryOrder::Total,
                lamport: n,
                payload: Bytes::from(format!("m{n}")),
            },
        }
    }

    #[test]
    fn staged_writes_die_with_the_crash_synced_ones_survive() {
        let mut store = DurableStore::default();
        let me = NodeId::from_index(0);
        let ga = GroupId::new("ga");
        store.append(
            me,
            &LogRecord::Created {
                group: ga.clone(),
                config: GroupConfig::peer(),
                members: vec![me],
            },
        );
        store.append(me, &delivered(&ga, 1));
        store.sync(me);
        store.append(me, &delivered(&ga, 2)); // staged, never synced
        store.crash(me);
        let state = store.recover(me).unwrap();
        let g = state.groups.get(&ga).unwrap();
        assert_eq!(g.history.len(), 1);
        assert_eq!(g.history[0].lamport, 1);
    }

    #[test]
    fn compaction_preserves_recovery_and_truncates_the_log() {
        let mut store = DurableStore::default();
        let me = NodeId::from_index(0);
        let ga = GroupId::new("ga");
        store.append(
            me,
            &LogRecord::Created {
                group: ga.clone(),
                config: GroupConfig::peer(),
                members: vec![me],
            },
        );
        for n in 1..=5 {
            store.append(me, &delivered(&ga, n));
        }
        store.sync(me);
        let before = store.recover(me).unwrap();
        store.compact(me).unwrap();
        let (snap_bytes, log_bytes, log_records) = store.durable_size(me);
        assert!(snap_bytes > 0);
        assert_eq!((log_bytes, log_records), (0, 0));
        // Post-compaction appends land in the (now short) log.
        store.append(me, &delivered(&ga, 6));
        store.sync(me);
        let after = store.recover(me).unwrap();
        assert_eq!(after.groups[&ga].history.len(), 6);
        assert_eq!(
            &after.groups[&ga].history[..5],
            &before.groups[&ga].history[..]
        );
    }
}
