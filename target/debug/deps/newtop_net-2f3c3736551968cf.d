/root/repo/target/debug/deps/newtop_net-2f3c3736551968cf.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_net-2f3c3736551968cf.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/latency.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/site.rs crates/net/src/stats.rs crates/net/src/tcp.rs crates/net/src/time.rs crates/net/src/trace.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/latency.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/site.rs:
crates/net/src/stats.rs:
crates/net/src/tcp.rs:
crates/net/src/time.rs:
crates/net/src/trace.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
