/root/repo/target/debug/deps/passive_store-6d25ab590f32464b.d: examples/src/bin/passive_store.rs Cargo.toml

/root/repo/target/debug/deps/libpassive_store-6d25ab590f32464b.rmeta: examples/src/bin/passive_store.rs Cargo.toml

examples/src/bin/passive_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
