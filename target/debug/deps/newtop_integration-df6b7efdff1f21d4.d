/root/repo/target/debug/deps/newtop_integration-df6b7efdff1f21d4.d: tests/src/lib.rs

/root/repo/target/debug/deps/newtop_integration-df6b7efdff1f21d4: tests/src/lib.rs

tests/src/lib.rs:
