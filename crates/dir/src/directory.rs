//! The replicated directory server: a record table kept consistent
//! across directory members by replicating updates through the GCS
//! itself.
//!
//! Registrations arrive at any member as plain ORB requests (see
//! [`newtop::directory`]); the member stages them and a pump multicasts
//! each staged record through the directory's own peer group with total
//! order. Every member applies records in delivery order, so the table
//! converges identically everywhere and any member can answer a resolve
//! locally. Stale registrations (a lower view id for a known name) are
//! ignored on apply, which makes re-registration after a view change
//! safe to send from every server replica at once.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use newtop::directory::{DirReply, DirRequest, GroupRecord};
use newtop_orb::cdr::{CdrDecode, CdrEncode, CdrError};

/// The record table plus staged (not yet replicated) registrations.
#[derive(Debug, Default)]
pub struct DirectoryState {
    records: BTreeMap<String, GroupRecord>,
    staged: Vec<GroupRecord>,
    /// Resolves answered (throughput accounting for benches).
    pub resolves: u64,
    /// Records applied in delivery order.
    pub applied: u64,
}

/// A state handle shared between the servant closure and the pump.
pub type SharedDirectory = Arc<Mutex<DirectoryState>>;

/// Creates a fresh shared directory state.
#[must_use]
pub fn shared_directory() -> SharedDirectory {
    Arc::new(Mutex::new(DirectoryState::default()))
}

impl DirectoryState {
    /// Handles one decoded request at this member.
    pub fn handle(&mut self, request: DirRequest) -> DirReply {
        match request {
            DirRequest::Register { record } => {
                self.staged.push(record);
                DirReply::Ok
            }
            DirRequest::Resolve { name } => {
                self.resolves += 1;
                match self.records.get(&name) {
                    Some(record) => DirReply::Found {
                        record: record.clone(),
                    },
                    None => DirReply::NotFound { name },
                }
            }
        }
    }

    /// Decodes and handles one raw request body, returning the encoded
    /// reply.
    ///
    /// # Errors
    ///
    /// The [`CdrError`] of a malformed request (the caller drops the
    /// request or answers with an empty body; it never panics).
    pub fn handle_raw(&mut self, body: &[u8]) -> Result<Bytes, CdrError> {
        let request = DirRequest::from_cdr(body)?;
        Ok(self.handle(request).to_cdr())
    }

    /// Drains registrations staged since the last pump; the caller
    /// multicasts each through the directory group.
    pub fn take_staged(&mut self) -> Vec<GroupRecord> {
        std::mem::take(&mut self.staged)
    }

    /// Applies one record in the directory group's delivery order.
    /// Returns whether the table changed (stale records are ignored).
    pub fn apply(&mut self, record: GroupRecord) -> bool {
        self.applied += 1;
        match self.records.get(&record.name) {
            Some(existing) if record.view < existing.view => false,
            _ => {
                self.records.insert(record.name.clone(), record);
                true
            }
        }
    }

    /// The current record for `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&GroupRecord> {
        self.records.get(name)
    }

    /// Every record, sorted by name.
    #[must_use]
    pub fn records(&self) -> Vec<GroupRecord> {
        self.records.values().cloned().collect()
    }

    /// Seeds the table from recovered durable state.
    pub fn restore(&mut self, records: Vec<GroupRecord>) {
        for record in records {
            self.records.insert(record.name.clone(), record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newtop_gcs::group::GroupConfig;
    use newtop_gcs::view::ViewId;
    use newtop_net::site::NodeId;

    fn record(name: &str, view: u64, members: &[u32]) -> GroupRecord {
        GroupRecord {
            name: name.to_owned(),
            config: GroupConfig::request_reply(),
            members: members.iter().map(|&i| NodeId::from_index(i)).collect(),
            view: ViewId(view),
        }
    }

    #[test]
    fn register_stages_and_apply_installs() {
        let mut dir = DirectoryState::default();
        assert_eq!(
            dir.handle(DirRequest::Register {
                record: record("svc", 1, &[0, 1, 2]),
            }),
            DirReply::Ok
        );
        // Not visible until replicated + applied.
        assert!(matches!(
            dir.handle(DirRequest::Resolve { name: "svc".into() }),
            DirReply::NotFound { .. }
        ));
        let staged = dir.take_staged();
        assert_eq!(staged.len(), 1);
        assert!(dir.apply(staged[0].clone()));
        match dir.handle(DirRequest::Resolve { name: "svc".into() }) {
            DirReply::Found { record } => assert_eq!(record.view, ViewId(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_records_lose_to_newer_views() {
        let mut dir = DirectoryState::default();
        assert!(dir.apply(record("svc", 5, &[0, 1])));
        assert!(!dir.apply(record("svc", 3, &[0, 1, 2])));
        assert_eq!(dir.get("svc").unwrap().view, ViewId(5));
        assert!(dir.apply(record("svc", 6, &[1, 2])));
        assert_eq!(dir.get("svc").unwrap().members.len(), 2);
    }

    #[test]
    fn malformed_requests_error_without_panicking() {
        let mut dir = DirectoryState::default();
        assert!(dir.handle_raw(&[0xFF, 0x00]).is_err());
        assert!(dir.handle_raw(&[]).is_err());
    }
}
