/root/repo/target/debug/deps/membership-b4b8afd8d0ee66bf.d: tests/tests/membership.rs Cargo.toml

/root/repo/target/debug/deps/libmembership-b4b8afd8d0ee66bf.rmeta: tests/tests/membership.rs Cargo.toml

tests/tests/membership.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
