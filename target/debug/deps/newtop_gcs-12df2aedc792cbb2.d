/root/repo/target/debug/deps/newtop_gcs-12df2aedc792cbb2.d: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libnewtop_gcs-12df2aedc792cbb2.rmeta: crates/gcs/src/lib.rs crates/gcs/src/clock.rs crates/gcs/src/engine.rs crates/gcs/src/group.rs crates/gcs/src/member.rs crates/gcs/src/messages.rs crates/gcs/src/testkit.rs crates/gcs/src/view.rs Cargo.toml

crates/gcs/src/lib.rs:
crates/gcs/src/clock.rs:
crates/gcs/src/engine.rs:
crates/gcs/src/group.rs:
crates/gcs/src/member.rs:
crates/gcs/src/messages.rs:
crates/gcs/src/testkit.rs:
crates/gcs/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
