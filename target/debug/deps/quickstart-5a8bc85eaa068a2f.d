/root/repo/target/debug/deps/quickstart-5a8bc85eaa068a2f.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-5a8bc85eaa068a2f.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
