/root/repo/target/debug/deps/proxy-45ff5e47ccf36235.d: crates/core/tests/proxy.rs Cargo.toml

/root/repo/target/debug/deps/libproxy-45ff5e47ccf36235.rmeta: crates/core/tests/proxy.rs Cargo.toml

crates/core/tests/proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
