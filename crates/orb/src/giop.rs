//! GIOP-shaped request/reply framing.
//!
//! Every packet the mini-ORB puts on the wire is one [`GiopMessage`]: a
//! magic header, a message type, and a CDR body. This mirrors CORBA's
//! General Inter-ORB Protocol closely enough that the per-message
//! marshalling cost the paper measures is honestly reproduced.

use std::error::Error;
use std::fmt;

use bytes::Bytes;

use crate::cdr::{CdrDecode, CdrDecoder, CdrEncode, CdrEncoder, CdrError};
use crate::ior::ObjectKey;

const MAGIC: &[u8; 4] = b"GIOP";
const VERSION: u8 = 1;

const TYPE_REQUEST: u8 = 0;
const TYPE_REPLY: u8 = 1;

/// System exceptions raised by the ORB itself (as opposed to user
/// exceptions raised by servants).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SystemException {
    /// No servant with the requested key exists at the target.
    ObjectNotExist,
    /// The servant exists but does not implement the operation.
    BadOperation,
    /// A communication failure was detected (e.g. the target crashed).
    CommFailure,
    /// The request could not be processed now; retrying may succeed.
    Transient,
}

impl SystemException {
    fn code(self) -> u32 {
        match self {
            SystemException::ObjectNotExist => 0,
            SystemException::BadOperation => 1,
            SystemException::CommFailure => 2,
            SystemException::Transient => 3,
        }
    }

    fn from_code(code: u32) -> Result<Self, CdrError> {
        Ok(match code {
            0 => SystemException::ObjectNotExist,
            1 => SystemException::BadOperation,
            2 => SystemException::CommFailure,
            3 => SystemException::Transient,
            other => return Err(CdrError::BadDiscriminant(other)),
        })
    }
}

impl fmt::Display for SystemException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SystemException::ObjectNotExist => "object does not exist",
            SystemException::BadOperation => "bad operation",
            SystemException::CommFailure => "communication failure",
            SystemException::Transient => "transient failure",
        };
        f.write_str(s)
    }
}

impl Error for SystemException {}

/// The outcome carried by a reply message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The operation completed; the body is its marshalled result.
    NoException,
    /// The servant raised an application-level exception; the body is its
    /// marshalled payload.
    UserException,
    /// The ORB raised a system exception; the body is empty.
    SystemException(SystemException),
}

/// A framed ORB message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GiopMessage {
    /// An invocation of `operation` on the servant at `object_key`.
    Request {
        /// Correlates the reply; unique per sending ORB.
        request_id: u64,
        /// Target servant.
        object_key: ObjectKey,
        /// Operation name.
        operation: String,
        /// False for oneway invocations (no reply will be sent).
        response_expected: bool,
        /// Marshalled in-arguments.
        body: Bytes,
    },
    /// The response to an earlier request.
    Reply {
        /// The id of the request being answered.
        request_id: u64,
        /// Outcome.
        status: ReplyStatus,
        /// Marshalled result or user exception payload.
        body: Bytes,
    },
}

/// Errors raised while parsing a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The magic bytes or version did not match.
    BadHeader,
    /// The header was fine but the body was malformed.
    BadBody(CdrError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadHeader => f.write_str("not a GIOP frame"),
            FrameError::BadBody(e) => write!(f, "malformed GIOP body: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::BadBody(e) => Some(e),
            FrameError::BadHeader => None,
        }
    }
}

impl From<CdrError> for FrameError {
    fn from(e: CdrError) -> Self {
        FrameError::BadBody(e)
    }
}

impl GiopMessage {
    /// Marshals the message into a wire frame.
    #[must_use]
    pub fn to_frame(&self) -> Bytes {
        let mut enc = CdrEncoder::with_capacity(64);
        for b in MAGIC {
            enc.write_u8(*b);
        }
        enc.write_u8(VERSION);
        match self {
            GiopMessage::Request {
                request_id,
                object_key,
                operation,
                response_expected,
                body,
            } => {
                enc.write_u8(TYPE_REQUEST);
                enc.write_u64(*request_id);
                object_key.encode(&mut enc);
                enc.write_string(operation);
                enc.write_bool(*response_expected);
                enc.write_bytes(body);
            }
            GiopMessage::Reply {
                request_id,
                status,
                body,
            } => {
                enc.write_u8(TYPE_REPLY);
                enc.write_u64(*request_id);
                match status {
                    ReplyStatus::NoException => enc.write_u32(0),
                    ReplyStatus::UserException => enc.write_u32(1),
                    ReplyStatus::SystemException(se) => {
                        enc.write_u32(2);
                        enc.write_u32(se.code());
                    }
                }
                enc.write_bytes(body);
            }
        }
        enc.finish()
    }

    /// Marshals a request frame from borrowed parts through a reusable
    /// scratch encoder, avoiding both the `GiopMessage` construction
    /// (which would clone the key, operation, and body) and a fresh
    /// buffer allocation per frame.
    ///
    /// The output is byte-identical to
    /// `GiopMessage::Request { .. }.to_frame()`; the scratch encoder is
    /// left empty with its capacity retained.
    #[must_use]
    pub fn encode_request_frame(
        enc: &mut CdrEncoder,
        request_id: u64,
        object_key: &ObjectKey,
        operation: &str,
        response_expected: bool,
        body: &[u8],
    ) -> Bytes {
        enc.clear();
        for b in MAGIC {
            enc.write_u8(*b);
        }
        enc.write_u8(VERSION);
        enc.write_u8(TYPE_REQUEST);
        enc.write_u64(request_id);
        object_key.encode(enc);
        enc.write_string(operation);
        enc.write_bool(response_expected);
        enc.write_bytes(body);
        enc.take_frame()
    }

    /// Parses a wire frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadHeader`] if the frame is not GIOP;
    /// [`FrameError::BadBody`] if the body is malformed.
    pub fn from_frame(frame: &[u8]) -> Result<Self, FrameError> {
        let mut dec = CdrDecoder::new(frame);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = dec.read_u8().map_err(|_| FrameError::BadHeader)?;
        }
        if &magic != MAGIC {
            return Err(FrameError::BadHeader);
        }
        let version = dec.read_u8().map_err(|_| FrameError::BadHeader)?;
        if version != VERSION {
            return Err(FrameError::BadHeader);
        }
        let msg_type = dec.read_u8().map_err(|_| FrameError::BadHeader)?;
        match msg_type {
            TYPE_REQUEST => {
                let request_id = dec.read_u64()?;
                let object_key = ObjectKey::decode(&mut dec)?;
                let operation = dec.read_string()?;
                let response_expected = dec.read_bool()?;
                let body = Bytes::from(dec.read_bytes()?);
                Ok(GiopMessage::Request {
                    request_id,
                    object_key,
                    operation,
                    response_expected,
                    body,
                })
            }
            TYPE_REPLY => {
                let request_id = dec.read_u64()?;
                let status = match dec.read_u32()? {
                    0 => ReplyStatus::NoException,
                    1 => ReplyStatus::UserException,
                    2 => ReplyStatus::SystemException(SystemException::from_code(dec.read_u32()?)?),
                    other => return Err(CdrError::BadDiscriminant(other).into()),
                };
                let body = Bytes::from(dec.read_bytes()?);
                Ok(GiopMessage::Reply {
                    request_id,
                    status,
                    body,
                })
            }
            _ => Err(FrameError::BadHeader),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_round_trip() {
        let msg = GiopMessage::Request {
            request_id: 42,
            object_key: ObjectKey::new("nso"),
            operation: "multicast".to_owned(),
            response_expected: true,
            body: Bytes::from_static(b"payload"),
        };
        let frame = msg.to_frame();
        assert_eq!(GiopMessage::from_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn reply_round_trip_all_statuses() {
        for status in [
            ReplyStatus::NoException,
            ReplyStatus::UserException,
            ReplyStatus::SystemException(SystemException::CommFailure),
            ReplyStatus::SystemException(SystemException::ObjectNotExist),
        ] {
            let msg = GiopMessage::Reply {
                request_id: 7,
                status: status.clone(),
                body: Bytes::from_static(b"r"),
            };
            assert_eq!(GiopMessage::from_frame(&msg.to_frame()).unwrap(), msg);
        }
    }

    #[test]
    fn scratch_request_frame_is_byte_identical_to_to_frame() {
        let mut scratch = CdrEncoder::new();
        for (id, key, op, expected, body) in [
            (0u64, "nso", "gcs", false, &b"abc"[..]),
            (u64::MAX, "a-much-longer-object-key", "op_x", true, &[][..]),
            (7, "k", "multicast", false, &b"payload bytes here"[..]),
        ] {
            let via_scratch = GiopMessage::encode_request_frame(
                &mut scratch,
                id,
                &ObjectKey::new(key),
                op,
                expected,
                body,
            );
            let via_value = GiopMessage::Request {
                request_id: id,
                object_key: ObjectKey::new(key),
                operation: op.to_owned(),
                response_expected: expected,
                body: Bytes::copy_from_slice(body),
            }
            .to_frame();
            assert_eq!(via_scratch, via_value);
            assert!(scratch.is_empty(), "scratch is drained after each frame");
        }
    }

    #[test]
    fn non_giop_frames_are_rejected() {
        assert_eq!(
            GiopMessage::from_frame(b"HTTP/1.1 200 OK"),
            Err(FrameError::BadHeader)
        );
        assert_eq!(GiopMessage::from_frame(b""), Err(FrameError::BadHeader));
        assert_eq!(GiopMessage::from_frame(b"GIO"), Err(FrameError::BadHeader));
    }

    #[test]
    fn truncated_body_is_bad_body() {
        let msg = GiopMessage::Request {
            request_id: 1,
            object_key: ObjectKey::new("k"),
            operation: "op".to_owned(),
            response_expected: false,
            body: Bytes::from_static(b"xyz"),
        };
        let frame = msg.to_frame();
        let truncated = &frame[..frame.len() - 2];
        assert!(matches!(
            GiopMessage::from_frame(truncated),
            Err(FrameError::BadBody(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_frames_round_trip(
            id in any::<u64>(),
            key in "[a-z]{1,16}",
            op in "[a-z_]{1,24}",
            expected in any::<bool>(),
            body in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let msg = GiopMessage::Request {
                request_id: id,
                object_key: ObjectKey::new(key),
                operation: op,
                response_expected: expected,
                body: Bytes::from(body),
            };
            prop_assert_eq!(GiopMessage::from_frame(&msg.to_frame()).unwrap(), msg);
        }

        #[test]
        fn prop_parser_never_panics(frame in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = GiopMessage::from_frame(&frame);
        }
    }
}
