/root/repo/target/debug/deps/failover-b3b09cd407f4255f.d: tests/tests/failover.rs

/root/repo/target/debug/deps/failover-b3b09cd407f4255f: tests/tests/failover.rs

tests/tests/failover.rs:
