/root/repo/target/debug/deps/group_to_group-875a4ac3070331ba.d: examples/src/bin/group_to_group.rs Cargo.toml

/root/repo/target/debug/deps/libgroup_to_group-875a4ac3070331ba.rmeta: examples/src/bin/group_to_group.rs Cargo.toml

examples/src/bin/group_to_group.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
