//! Threaded runtime for the NewTop service object.
//!
//! The [`Nso`] is a sans-IO state machine; this crate hosts one per
//! thread with wall-clock timers and a real transport (the in-process
//! [`newtop_net::channel::ChannelNetwork`] or framed TCP via
//! [`newtop_net::tcp::TcpEndpoint`]), so the runnable examples are
//! genuinely concurrent programs rather than simulations.
//!
//! Each node runs an event loop selecting over incoming packets,
//! application commands and its timer wheel. Applications drive the node
//! through a [`NodeHandle`]: [`NodeHandle::with_nso`] runs a closure
//! against the NSO inside the loop (so no locking is ever needed), and
//! [`NodeHandle::outputs`] / [`NodeHandle::wait_for_output`] receive the
//! NSO's outputs.
//!
//! ```
//! use newtop_rt::NodeRuntime;
//! use newtop_net::channel::ChannelNetwork;
//! use newtop_net::site::NodeId;
//!
//! let net = ChannelNetwork::new();
//! let a = NodeId::from_index(0);
//! let (transport, incoming) = net.endpoint(a);
//! let node = NodeRuntime::spawn(a, transport, incoming);
//! let id = node.with_nso(|nso, _now, _out| nso.node());
//! assert_eq!(id, a);
//! node.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use newtop_flow::queue::{bounded, QueueStats, Receiver, Sender};
use newtop_flow::FlowConfig;

use newtop::nso::{Nso, NsoOutput};
use newtop_net::sim::{Outbox, Packet, TimerId};
use newtop_net::site::NodeId;
use newtop_net::time::SimTime;
use newtop_net::transport::WireTransport;

type Command = Box<dyn FnOnce(&mut Nso, SimTime, &mut Outbox) + Send>;

/// A handle to a node hosted by [`NodeRuntime::spawn`].
pub struct NodeHandle {
    node: NodeId,
    commands: Sender<Command>,
    outputs: Receiver<NsoOutput>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeHandle({})", self.node)
    }
}

impl NodeHandle {
    /// The hosted node's id.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Runs a closure against the NSO inside its event loop and returns
    /// the result. Blocks until the loop has executed it.
    ///
    /// # Panics
    ///
    /// Panics if the node's event loop has stopped.
    pub fn with_nso<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Nso, SimTime, &mut Outbox) -> R + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        self.commands
            .send(Box::new(move |nso, now, out| {
                let _ = tx.send(f(nso, now, out));
            }))
            .expect("node event loop stopped");
        rx.recv().expect("node event loop stopped")
    }

    /// The stream of NSO outputs. The queue is bounded: if the
    /// application stops draining it, the event loop sheds the oldest
    /// unread outputs' successors rather than buffering without limit
    /// (count via [`NodeHandle::output_stats`]).
    #[must_use]
    pub fn outputs(&self) -> &Receiver<NsoOutput> {
        &self.outputs
    }

    /// Flow statistics of the output queue: sheds, peak depth, capacity.
    #[must_use]
    pub fn output_stats(&self) -> QueueStats {
        self.outputs.stats()
    }

    /// Waits until an output matching `pred` arrives (discarding
    /// non-matching outputs), or the timeout elapses.
    pub fn wait_for_output(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&NsoOutput) -> bool,
    ) -> Option<NsoOutput> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            match self.outputs.recv_timeout(remaining) {
                Ok(o) if pred(&o) => return Some(o),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
    }

    /// Stops the event loop and joins the thread. Idempotent; also done
    /// on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Closing the command channel stops the loop.
        let (dead_tx, _) = bounded(1);
        let _ = std::mem::replace(&mut self.commands, dead_tx);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns NSO event loops on threads.
pub struct NodeRuntime;

impl NodeRuntime {
    /// Spawns a node: an NSO event loop over `transport`, receiving
    /// packets from `incoming`, with the default [`FlowConfig`] queue
    /// bounds.
    pub fn spawn<T: WireTransport>(
        node: NodeId,
        transport: T,
        incoming: Receiver<Packet>,
    ) -> NodeHandle {
        NodeRuntime::spawn_with_flow(node, transport, incoming, &FlowConfig::default())
    }

    /// Spawns a node with explicit queue bounds: the command queue
    /// backpressures callers of [`NodeHandle::with_nso`] when full, and
    /// the output queue sheds (never blocking the event loop).
    pub fn spawn_with_flow<T: WireTransport>(
        node: NodeId,
        transport: T,
        incoming: Receiver<Packet>,
        flow: &FlowConfig,
    ) -> NodeHandle {
        let (cmd_tx, cmd_rx) = bounded::<Command>(flow.queue_capacity);
        let (out_tx, out_rx) = bounded::<NsoOutput>(flow.queue_capacity);
        let join = std::thread::Builder::new()
            .name(format!("nso-{node}"))
            .spawn(move || event_loop(node, &transport, &incoming, &cmd_rx, &out_tx))
            .expect("failed to spawn node thread");
        NodeHandle {
            node,
            commands: cmd_tx,
            outputs: out_rx,
            join: Some(join),
        }
    }
}

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    id: TimerId,
    tag: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

fn event_loop(
    node: NodeId,
    transport: &dyn WireTransport,
    incoming: &Receiver<Packet>,
    commands: &Receiver<Command>,
    outputs: &Sender<NsoOutput>,
) {
    let start = Instant::now();
    let mut nso = Nso::new(node);
    let mut timers: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();
    let mut next_outbox_timer: u64 = 0;
    let mut timer_seq: u64 = 0;

    let now = |start: Instant| SimTime::from_nanos(start.elapsed().as_nanos() as u64);

    loop {
        // Fire due timers.
        let mut due: Vec<(TimerId, u64)> = Vec::new();
        let instant_now = Instant::now();
        while let Some(Reverse(head)) = timers.peek() {
            if head.deadline > instant_now {
                break;
            }
            let Reverse(entry) = timers.pop().expect("peeked");
            if !cancelled.remove(&entry.id) {
                due.push((entry.id, entry.tag));
            }
        }
        for (_, tag) in due {
            let mut out = Outbox::detached(next_outbox_timer);
            nso.on_timer(tag, now(start), &mut out);
            next_outbox_timer =
                apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
            drain_outputs(&mut nso, outputs);
        }

        // Wait for the next packet/command, bounded by the next timer.
        let timeout = timers
            .peek()
            .map_or(Duration::from_millis(50), |Reverse(t)| {
                t.deadline.saturating_duration_since(Instant::now())
            });

        crossbeam::channel::select! {
            recv(incoming) -> pkt => {
                let Ok(pkt) = pkt else { return };
                let mut out = Outbox::detached(next_outbox_timer);
                nso.on_packet(&pkt, now(start), &mut out);
                next_outbox_timer = apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
                drain_outputs(&mut nso, outputs);
            }
            recv(commands) -> cmd => {
                let Ok(cmd) = cmd else { return };
                let mut out = Outbox::detached(next_outbox_timer);
                cmd(&mut nso, now(start), &mut out);
                next_outbox_timer = apply_outbox(transport, &mut timers, &mut cancelled, &mut timer_seq, out);
                drain_outputs(&mut nso, outputs);
            }
            default(timeout) => {}
        }
    }
}

fn apply_outbox(
    transport: &dyn WireTransport,
    timers: &mut BinaryHeap<Reverse<TimerEntry>>,
    cancelled: &mut HashSet<TimerId>,
    timer_seq: &mut u64,
    out: Outbox,
) -> u64 {
    let parts = out.into_parts();
    for id in parts.timer_cancels {
        cancelled.insert(id);
    }
    let now = Instant::now();
    for (id, delay, tag) in parts.timer_sets {
        if cancelled.remove(&id) {
            continue;
        }
        *timer_seq += 1;
        timers.push(Reverse(TimerEntry {
            deadline: now + delay,
            seq: *timer_seq,
            id,
            tag,
        }));
    }
    for (dst, payload) in parts.sends {
        // Best effort: the protocol layers handle loss via NACKs and
        // suspicion.
        let _ = transport.send(dst, payload);
    }
    parts.next_timer
}

fn drain_outputs(nso: &mut Nso, outputs: &Sender<NsoOutput>) {
    for o in nso.take_outputs() {
        // Never block the event loop on a slow consumer: shed instead
        // (counted in the queue's stats).
        let _ = outputs.try_send(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use newtop::nso::BindOptions;
    use newtop_gcs::group::{GroupConfig, GroupId};
    use newtop_invocation::api::{OpenOptimisation, Replication, ReplyMode};
    use newtop_net::channel::ChannelNetwork;

    fn spawn_cluster(n: usize) -> Vec<NodeHandle> {
        let net = ChannelNetwork::new();
        (0..n)
            .map(|i| {
                let id = NodeId::from_index(i as u32);
                let (transport, rx) = net.endpoint(id);
                NodeRuntime::spawn(id, transport, rx)
            })
            .collect()
    }

    #[test]
    fn with_nso_runs_in_the_loop() {
        let nodes = spawn_cluster(1);
        let id = nodes[0].with_nso(|nso, _, _| nso.node());
        assert_eq!(id, NodeId::from_index(0));
    }

    #[test]
    fn request_reply_over_threads() {
        let nodes = spawn_cluster(3);
        let servers: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
        let group = GroupId::new("svc");

        for handle in &nodes[..2] {
            let group = group.clone();
            let members = servers.clone();
            handle.with_nso(move |nso, now, out| {
                nso.create_server_group(
                    group.clone(),
                    members,
                    Replication::Active,
                    OpenOptimisation::None,
                    GroupConfig::request_reply(),
                    now,
                    out,
                )
                .unwrap();
                let me = nso.node().index();
                nso.register_group_servant(
                    group,
                    Box::new(move |op: &str, _: &[u8]| Bytes::from(format!("{op}@{me}"))),
                );
            });
        }

        let client = &nodes[2];
        let g = group.clone();
        let svrs = servers.clone();
        client.with_nso(move |nso, now, out| {
            nso.bind(g, BindOptions::closed(svrs), now, out).unwrap();
        });
        let ready = client
            .wait_for_output(Duration::from_secs(10), |o| {
                matches!(o, NsoOutput::BindingReady { .. })
            })
            .expect("binding established");
        let NsoOutput::BindingReady { group: binding } = ready else {
            unreachable!()
        };
        let b = binding.clone();
        client.with_nso(move |nso, now, out| {
            nso.invoke(&b, "ping", Bytes::new(), ReplyMode::All, now, out)
                .unwrap();
        });
        let done = client
            .wait_for_output(Duration::from_secs(10), |o| {
                matches!(o, NsoOutput::InvocationComplete { .. })
            })
            .expect("invocation completed");
        let NsoOutput::InvocationComplete { replies, .. } = done else {
            unreachable!()
        };
        assert_eq!(replies.len(), 2);
        for h in nodes {
            h.shutdown();
        }
    }
}
